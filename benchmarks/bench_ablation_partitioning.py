"""Ablation — stable-column partitioning vs naive round-robin splitting.

DESIGN.md calls out the stable-column partitioning as a design choice worth
ablating: both splits are correct (Proposition 3), but only the
stable-column split guarantees disjoint local results, letting the final
duplicate-eliminating shuffle be skipped.  The ablation measures the time
and the duplicate/shuffle counters of both variants on the same fixpoint.
"""

from __future__ import annotations

import time

import pytest

from repro.algebra import RelVar, closure
from repro.bench import MeasuredRun
from repro.distributed import (PPLW_SPARK, PartitioningDecision, SparkCluster,
                               make_plan)
from repro.distributed.plans import ParallelLocalLoopsSpark

FIGURE_TITLE = "Ablation - stable-column partitioning vs round-robin splitting"

VARIANTS = ("stable-column", "round-robin")


def _run(graph, variant: str) -> MeasuredRun:
    database = graph.relations()
    term = closure(RelVar("edge"))
    cluster = SparkCluster(num_workers=4)
    override = PartitioningDecision.round_robin() if variant == "round-robin" \
        else None
    plan = ParallelLocalLoopsSpark(cluster, database,
                                   partitioning_override=override)
    started = time.perf_counter()
    result = plan.execute(term)
    elapsed = time.perf_counter() - started
    return MeasuredRun(system=variant, query_id="edge+", dataset=graph.name,
                       seconds=elapsed, rows=len(result),
                       metrics=cluster.metrics.summary())


@pytest.mark.parametrize("variant", VARIANTS)
def test_partitioning_variant(benchmark, figure_report, transitive_closure_graph,
                              variant):
    run = benchmark.pedantic(lambda: _run(transitive_closure_graph, variant),
                             rounds=1, iterations=1)
    figure_report.add(run)
    assert run.succeeded
    if variant == "stable-column":
        assert run.metrics["final_union_skipped"]
        assert run.metrics["shuffles"] == 0
    else:
        assert not run.metrics["final_union_skipped"]


def test_both_variants_agree(benchmark, figure_report, transitive_closure_graph):
    def compare():
        database = transitive_closure_graph.relations()
        term = closure(RelVar("edge"))
        stable = make_plan(PPLW_SPARK, SparkCluster(4), database).execute(term)
        round_robin = ParallelLocalLoopsSpark(
            SparkCluster(4), database,
            partitioning_override=PartitioningDecision.round_robin()).execute(term)
        return stable == round_robin

    assert benchmark.pedantic(compare, rounds=1, iterations=1)
