"""Speedup of the columnar execution kernels over the indexed row engine.

The columnar layer (``repro.data.columnar`` + ``repro.algebra.kernels``)
compiles the variable part of a fixpoint once into a chain of
operator-at-a-time kernels and runs the semi-naive loop on
dictionary-encoded integer columns: joins probe code indexes and gather
with C-speed ``map``, renames and projections are column permutations,
and dedup happens in one packed-key set per iteration.

This benchmark runs the same transitive-closure workload as
``bench_storage_speedup`` — a long chain with shortcut edges — in both
modes: the default columnar kernels and the indexed row engine
(``repro.data.columnar.row_mode``, which is *today's* optimized row path,
not the seed's compatibility mode — a deliberately strong baseline).  The
headline assertion is a >= 2x speedup with bit-identical results.  A
second pair of runs compares the two modes on one Uniprot workload query
through the full Session pipeline, and the observed numbers are written
to ``benchmarks/results/BENCH_columnar.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.algebra import RelVar, closure, evaluate
from repro.bench import MeasuredRun, run_distmura
from repro.data import Relation, row_mode
from repro.obs.metrics import get_registry
from repro.workloads import uniprot_queries

RESULTS_DIR = Path(__file__).parent / "results"

FIGURE_TITLE = "Columnar kernel speedup - kernels vs indexed row engine"

#: Chain length: recursion depth of the closure (and the number of
#: semi-naive iterations).  Matches bench_storage_speedup so the two
#: speedup reports compose: storage measures indexed-row over the seed,
#: this module measures columnar over indexed-row.
CHAIN_LENGTH = 320
#: Extra forward edges to thicken the deltas a little.
EXTRA_EDGES = 80
#: Required speedup of the columnar kernels (acceptance bar of the
#: columnar-execution work; the stretch goal is 5x).
SPEEDUP_FLOOR = 2.0
#: Uniprot query compared through the full Session pipeline.  Q47 is the
#: unselective query of the quick subset: its fixpoint produces tens of
#: thousands of rows, so the semi-naive loop (not parse/optimize
#: overhead) dominates its runtime.
UNIPROT_QID = "Q47"

COLUMNAR = "columnar-kernels"
ROW = "indexed-row"

#: (workload, mode) -> MeasuredRun, filled by the matrix tests, read by
#: the assertion/report tests.
_RESULTS: dict[tuple[str, str], MeasuredRun] = {}


@pytest.fixture(scope="module")
def chain_database():
    """A chain with shortcut edges: deep recursion, quadratic closure."""
    pairs = [(i, i + 1) for i in range(CHAIN_LENGTH)]
    step = max(2, CHAIN_LENGTH // EXTRA_EDGES)
    pairs += [(i, i + 2) for i in range(0, CHAIN_LENGTH - 2, step)]
    return {"E": Relation.from_pairs(pairs, columns=("src", "trg"))}


@pytest.fixture(scope="module")
def closure_term():
    return closure(RelVar("E"), var="X")


def _measure(mode: str, database, term) -> MeasuredRun:
    started = time.perf_counter()
    if mode == ROW:
        with row_mode():
            relation = evaluate(term, database)
    else:
        relation = evaluate(term, database)
    elapsed = time.perf_counter() - started
    return MeasuredRun(system=mode, query_id="TC",
                       dataset=f"chain-{CHAIN_LENGTH}",
                       seconds=elapsed, rows=len(relation))


@pytest.mark.parametrize("mode", (COLUMNAR, ROW))
def test_transitive_closure_both_modes(benchmark, figure_report,
                                       chain_database, closure_term, mode):
    compiles = get_registry().counter("repro_kernel_compiles_total")
    before = compiles.value
    measured = benchmark.pedantic(
        lambda: _measure(mode, chain_database, closure_term),
        rounds=1, iterations=1)
    figure_report.add(measured)
    _RESULTS[("TC", mode)] = measured
    assert measured.rows > CHAIN_LENGTH  # the closure is much bigger than E
    if mode == COLUMNAR:
        # Prove the kernels actually ran (no silent row-engine fallback).
        assert compiles.value > before


def test_modes_agree_and_speedup_exceeds_floor(figure_report, chain_database,
                                               closure_term):
    columnar = _RESULTS.get(("TC", COLUMNAR))
    row = _RESULTS.get(("TC", ROW))
    if columnar is None or row is None:
        pytest.skip("mode runs were deselected")
    assert columnar.rows == row.rows
    speedup = row.seconds / columnar.seconds
    figure_report.add_section(
        f"TC speedup (indexed-row / columnar-kernels): {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar kernels are only {speedup:.2f}x faster than the "
        f"indexed row engine (floor {SPEEDUP_FLOOR}x)")


@pytest.mark.parametrize("mode", (COLUMNAR, ROW))
def test_uniprot_query_both_modes(benchmark, figure_report, uniprot_small,
                                  mode):
    """One workload query through the full Session pipeline, both modes."""
    query = {q.qid: q for q in
             uniprot_queries(uniprot_small, subset=(UNIPROT_QID,))}[UNIPROT_QID]

    def run() -> MeasuredRun:
        if mode == ROW:
            with row_mode():
                measured = run_distmura(uniprot_small, query)
        else:
            measured = run_distmura(uniprot_small, query)
        return MeasuredRun(system=mode, query_id=UNIPROT_QID,
                           dataset=uniprot_small.name,
                           seconds=measured.seconds, rows=measured.rows,
                           status=measured.status)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    _RESULTS[(UNIPROT_QID, mode)] = measured
    assert measured.succeeded


def test_uniprot_modes_agree_and_json_report(figure_report):
    """Both modes agree on Uniprot; dump every observed number to JSON."""
    columnar = _RESULTS.get((UNIPROT_QID, COLUMNAR))
    row = _RESULTS.get((UNIPROT_QID, ROW))
    if columnar is not None and row is not None:
        assert columnar.rows == row.rows
        speedup = row.seconds / columnar.seconds
        figure_report.add_section(
            f"{UNIPROT_QID} speedup (indexed-row / columnar-kernels): "
            f"{speedup:.2f}x (report-only, full-pipeline time)")

    payload = {
        "title": FIGURE_TITLE,
        "chain_length": CHAIN_LENGTH,
        "speedup_floor": SPEEDUP_FLOOR,
        "runs": [
            {"workload": workload, "mode": mode, "seconds": run.seconds,
             "rows": run.rows}
            for (workload, mode), run in sorted(_RESULTS.items())
        ],
        "speedups": {
            workload: (_RESULTS[(workload, ROW)].seconds
                       / _RESULTS[(workload, COLUMNAR)].seconds)
            for workload in {w for w, _ in _RESULTS}
            if (workload, ROW) in _RESULTS and (workload, COLUMNAR) in _RESULTS
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_columnar.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
