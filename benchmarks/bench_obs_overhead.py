"""Observability overhead on the transitive-closure hot path.

The tracing instrumentation threads through every pipeline stage
(:meth:`Session.resolve_plan`, :meth:`Session.execute_plan`, the
per-iteration fixpoint loops), so its *disabled* cost is paid by every
query of every session.  This benchmark pins that cost down:

1. **Disabled overhead ceiling** — executing a recursive query with the
   default (disabled) tracer must cost at most
   :data:`DISABLED_OVERHEAD_CEILING` (5%) more than the same execution
   under :func:`repro.obs.tracing.suspended`, which short-circuits even
   the ContextVar reads and is therefore the instrumentation-free floor.
2. **Enabled cost, reported** — the same path under an enabled tracer
   (what ``explain_analyze()`` pays) is measured and reported, not
   asserted: recording spans is allowed to cost real time, it just has
   to be *opt-in*.

Methodology: the three modes are interleaved round by round, and each
mode's cost is the **minimum** of its per-round batch times — the
standard timeit discipline; the minimum is the sample least polluted by
scheduler noise, GC pauses and cache effects, which matters when
asserting a 5% margin.

Results are written to ``benchmarks/results/bench_obs_overhead.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro import Session
from repro.data import LabeledGraph
from repro.obs import tracing

FIGURE_TITLE = "Observability overhead on the transitive-closure hot path"

#: Allowed cost of the disabled tracing path over the suspended floor.
DISABLED_OVERHEAD_CEILING = 1.05
#: The recursive hot-path query (plan cached, result cache bypassed, so
#: every run re-executes the full semi-naive fixpoint on the cluster).
TC_QUERY = "?x,?y <- ?x knows+ ?y"
#: Interleaved measurement rounds per mode.
ROUNDS = 7
#: Hot-path executions per (mode, round) batch.
BATCH = 3


def _hot_path_graph(length: int = 120, shortcuts: int = 30) -> LabeledGraph:
    """A knows-chain with shortcut edges: a few ms of fixpoint per run."""
    graph = LabeledGraph(name="obs-bench")
    triples = [(f"n{i}", "knows", f"n{i + 1}") for i in range(length)]
    triples += [(f"n{i}", "knows", f"n{i + 4}")
                for i in range(0, shortcuts * 3, 3)]
    graph.add_edges(triples)
    return graph


def _run_batch(session: Session) -> float:
    """Time ``BATCH`` un-memoized executions of the recursive query."""
    started = time.perf_counter()
    for _ in range(BATCH):
        session.ucrpq(TC_QUERY).run_once(use_result_cache=False)
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def hot_session():
    with Session(_hot_path_graph(), num_workers=2) as session:
        session.ucrpq(TC_QUERY).collect()  # warm the plan cache
        yield session


def _measure_modes(session: Session) -> dict[str, float]:
    """Min-of-rounds batch seconds per mode, modes interleaved."""
    samples: dict[str, list[float]] = {
        "suspended": [], "disabled": [], "enabled": []}
    tracer = tracing.Tracer(enabled=True)
    for _ in range(ROUNDS):
        with tracing.suspended():
            samples["suspended"].append(_run_batch(session))
        samples["disabled"].append(_run_batch(session))
        with tracing.activate(tracer):
            samples["enabled"].append(_run_batch(session))
        tracer.clear()  # spans from this round are not the benchmark's output
    return {mode: min(times) for mode, times in samples.items()}


def test_disabled_tracing_overhead_within_ceiling(figure_report, hot_session):
    best = _measure_modes(hot_session)
    floor = best["suspended"]
    disabled_ratio = best["disabled"] / floor
    enabled_ratio = best["enabled"] / floor
    per_query = {mode: seconds / BATCH * 1e3
                 for mode, seconds in best.items()}
    figure_report.add_section(
        f"transitive closure ({TC_QUERY!r}), min of {ROUNDS} interleaved "
        f"rounds x {BATCH} executions:\n"
        f"  suspended (floor)  {per_query['suspended']:8.3f} ms/query\n"
        f"  disabled (default) {per_query['disabled']:8.3f} ms/query "
        f"-> {disabled_ratio:.4f}x "
        f"(ceiling {DISABLED_OVERHEAD_CEILING}x)\n"
        f"  enabled (traced)   {per_query['enabled']:8.3f} ms/query "
        f"-> {enabled_ratio:.4f}x (reported, not asserted)")
    assert disabled_ratio <= DISABLED_OVERHEAD_CEILING, (
        f"disabled tracing costs {disabled_ratio:.3f}x the suspended floor "
        f"(ceiling {DISABLED_OVERHEAD_CEILING}x)")


def test_enabled_tracing_actually_traces(hot_session):
    """The enabled mode being measured must really produce the spans."""
    tracer = tracing.Tracer(enabled=True)
    with tracing.activate(tracer):
        hot_session.ucrpq(TC_QUERY).run_once(use_result_cache=False)
    names = {record.name for record in tracer.records()}
    assert "session.execute_plan" in names
    assert "fixpoint.iteration" in names
