"""Fig. 10 — Dist-mu-RA vs BigDatalog vs GraphX on the Yago workload.

Shapes to reproduce: Dist-mu-RA is much faster than GraphX overall; it beats
BigDatalog on classes C2-C6 (queries needing reversal, join pushing or
fixpoint merging) and is comparable on plain transitive closures (C1).
"""

from __future__ import annotations

import pytest

from repro.bench import run_bigdatalog, run_distmura, run_graphx
from repro.workloads import yago_queries

FIGURE_TITLE = "Fig. 10 - running times on Yago (Dist-mu-RA / BigDatalog / GraphX)"

#: One query per interesting class combination, keeping GraphX runtimes sane.
SUBSET = ("Q1", "Q3", "Q5", "Q8", "Q12", "Q16", "Q17", "Q22", "Q24")
QUERIES = {query.qid: query for query in yago_queries(subset=SUBSET)}

RUNNERS = {
    "Dist-mu-RA": run_distmura,
    "BigDatalog": run_bigdatalog,
    "GraphX": run_graphx,
}


@pytest.mark.parametrize("qid", sorted(QUERIES))
@pytest.mark.parametrize("system", sorted(RUNNERS))
def test_yago_query_system(benchmark, figure_report, yago_graph, qid, system):
    query = QUERIES[qid]
    runner = RUNNERS[system]
    run = benchmark.pedantic(lambda: runner(yago_graph, query),
                             rounds=1, iterations=1)
    figure_report.add(run)
    # Dist-mu-RA must answer every query; baselines are allowed to fail
    # (that is part of the reproduced result).
    if system == "Dist-mu-RA":
        assert run.succeeded
