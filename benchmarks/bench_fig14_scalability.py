"""Fig. 14 — scalability: Dist-mu-RA vs BigDatalog on growing Uniprot graphs.

The paper evaluates uniprot_1M/5M/10M; the reproduction uses three graphs of
growing size (documented in EXPERIMENTS.md).  Shape to reproduce:
Dist-mu-RA answers every (query, size) combination and its time grows
moderately with the graph size, while BigDatalog accumulates failures as the
size grows.
"""

from __future__ import annotations

import pytest

from repro.bench import run_bigdatalog, run_distmura
from repro.workloads import uniprot_queries

FIGURE_TITLE = "Fig. 14 - scalability on Uniprot graphs of growing size"

QUERY_SUBSET = ("Q28", "Q33", "Q41", "Q45", "Q47")
SIZES = ("uniprot_1", "uniprot_3", "uniprot_6")
BIGDATALOG_FACT_BUDGET = 600_000


@pytest.mark.parametrize("size_name", SIZES)
@pytest.mark.parametrize("qid", QUERY_SUBSET)
@pytest.mark.parametrize("system", ("Dist-mu-RA", "BigDatalog"))
def test_scalability(benchmark, figure_report, uniprot_sizes, size_name, qid,
                     system):
    graph = uniprot_sizes[size_name]
    query = {q.qid: q for q in uniprot_queries(graph, subset=(qid,))}[qid]
    query_id = f"{qid}@{size_name}"

    def run():
        if system == "Dist-mu-RA":
            measured = run_distmura(graph, query)
        else:
            measured = run_bigdatalog(graph, query,
                                      max_facts=BIGDATALOG_FACT_BUDGET)
        measured.query_id = query_id
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    if system == "Dist-mu-RA":
        assert measured.succeeded
