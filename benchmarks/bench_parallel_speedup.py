"""Parallel speedup of the Pplw local loops under the executor backends.

The paper's central claim is that ``Pplw`` runs one complete fixpoint per
worker *without coordination*; this benchmark verifies that the claim buys
actual parallelism once the per-partition tasks are submitted to a
concurrent executor backend.  The workload is fig14-style: the transitive
closure of the ``int`` (protein interaction) relation on a generated
Uniprot graph, the recursion that dominates the paper's scalability sweep.

For every executor backend (``serial``, ``threads``, ``processes``) the
same plan is executed on the same 4-worker cluster; reported times follow
the harness convention (wall clock + simulated communication delay + the
simulated task-schedule adjustment), so the speedup reflects the cluster's
parallel makespan regardless of the host's physical core count.  The
headline assertion: Pplw^s with 4 thread workers must beat the serial
backend by more than 1.5x.
"""

from __future__ import annotations

import pytest

from repro.algebra import RelVar, closure
from repro.bench import MeasuredRun, run_distmura
from repro.datasets import uniprot_graph
from repro.distributed import PPLW_POSTGRES, PPLW_SPARK
from repro.workloads.common import mu_ra_query

FIGURE_TITLE = "Parallel speedup - Pplw local loops per executor backend"

EXECUTORS = ("serial", "threads", "processes")
STRATEGIES = (PPLW_SPARK, PPLW_POSTGRES)
NUM_WORKERS = 4
#: Minimum acceptable threads-vs-serial speedup for Pplw^s (the acceptance
#: bar of the concurrent-executor work).
SPEEDUP_FLOOR = 1.5

#: (strategy, executor) -> MeasuredRun, filled by the matrix test below and
#: consumed by the speedup assertions.
_RESULTS: dict[tuple[str, str], MeasuredRun] = {}


@pytest.fixture(scope="module")
def speedup_graph():
    """Fig. 14-style Uniprot stand-in (the paper's uniprot_1M, scaled)."""
    return uniprot_graph(num_edges=6_000, seed=11)


@pytest.fixture(scope="module")
def closure_query():
    """Transitive closure of the protein-interaction relation."""
    return mu_ra_query("TCint", closure(RelVar("int"), var="X"),
                       description="transitive closure of int")


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("executor", EXECUTORS)
def test_executor_matrix(benchmark, figure_report, speedup_graph,
                         closure_query, executor, strategy):
    def run():
        measured = run_distmura(speedup_graph, closure_query,
                                strategy=strategy, num_workers=NUM_WORKERS,
                                optimize=False, executor=executor)
        measured.query_id = f"{closure_query.qid}[{strategy}/{executor}]"
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    _RESULTS[(strategy, executor)] = measured
    assert measured.succeeded


def test_threads_speedup_exceeds_floor(figure_report):
    """Pplw^s with 4 thread workers must be >1.5x faster than serial."""
    serial = _RESULTS.get((PPLW_SPARK, "serial"))
    threads = _RESULTS.get((PPLW_SPARK, "threads"))
    if serial is None or threads is None:
        pytest.skip("matrix runs were deselected")
    lines = [f"speedup vs serial backend ({NUM_WORKERS} workers):"]
    for strategy in STRATEGIES:
        base = _RESULTS.get((strategy, "serial"))
        for executor in EXECUTORS[1:]:
            run = _RESULTS.get((strategy, executor))
            if base is None or run is None:
                continue
            lines.append(f"  {strategy:12s} {executor:10s} "
                         f"{base.seconds / run.seconds:5.2f}x")
    figure_report.add_section("\n".join(lines))
    speedup = serial.seconds / threads.seconds
    assert speedup > SPEEDUP_FLOOR, (
        f"Pplw^s threads speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor")


def test_all_backends_agree(figure_report):
    """Every (strategy, executor) combination returns the same row count."""
    row_counts = {key: run.rows for key, run in _RESULTS.items()
                  if run.succeeded}
    if len(row_counts) < 2:
        pytest.skip("matrix runs were deselected")
    assert len(set(row_counts.values())) == 1, row_counts
