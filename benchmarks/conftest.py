"""Shared fixtures for the benchmark suite.

Datasets are deliberately much smaller than the paper's (which used a
62M-triple Yago dump and 1M-10M-edge Uniprot graphs on a 4-machine
cluster): the goal is to reproduce the *shape* of every figure — who wins,
by roughly what factor, where failures appear — not the absolute numbers.
The scale of every dataset is recorded in EXPERIMENTS.md.

Each benchmark module collects its :class:`MeasuredRun` records through the
``figure_report`` fixture; at teardown the corresponding figure table is
written to ``benchmarks/results/<module>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import MeasuredRun, comparison_table, speedup_summary
from repro.datasets import (erdos_renyi_graph, social_graph_suite,
                            uniprot_graph, yago_like_graph)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def yago_graph():
    """Yago stand-in used by Figs. 9, 10 and 15 (scale greatly reduced)."""
    return yago_like_graph(scale=120, seed=7)


@pytest.fixture(scope="session")
def uniprot_small():
    """Uniprot stand-in for Fig. 13 (the paper's uniprot_1M, scaled down)."""
    return uniprot_graph(num_edges=2_000, seed=11)


@pytest.fixture(scope="session")
def uniprot_sizes():
    """Three Uniprot sizes for the Fig. 14 scalability sweep (1M/5M/10M scaled)."""
    return {
        "uniprot_1": uniprot_graph(num_edges=1_000, seed=11),
        "uniprot_3": uniprot_graph(num_edges=3_000, seed=11),
        "uniprot_6": uniprot_graph(num_edges=6_000, seed=11),
    }


@pytest.fixture(scope="session")
def labeled_random_graph():
    """10-label random graph for the concatenated closures of Fig. 12.

    Denser than the other fixtures so the per-label closures (and therefore
    the intermediate results a Datalog engine must materialise) are sizeable.
    """
    return erdos_renyi_graph(350, num_edges=3_500, seed=3,
                             labels=tuple(f"a{i}" for i in range(1, 11)),
                             name="rnd_labeled")


@pytest.fixture(scope="session")
def transitive_closure_graph():
    """Erdos-Renyi graph for the Fig. 5 constant-part sweep."""
    return erdos_renyi_graph(1_500, num_edges=6_000, seed=5, name="rnd_tc")


@pytest.fixture(scope="session")
def social_suite():
    """Scaled-down versions of the Fig. 11 graph suite."""
    return social_graph_suite(scale=0.3, seed=13)


class FigureReport:
    """Collects measured runs for one benchmark module and writes its table."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self.runs: list[MeasuredRun] = []
        self.extra_sections: list[str] = []

    def add(self, run: MeasuredRun) -> MeasuredRun:
        self.runs.append(run)
        return run

    def add_section(self, text: str) -> None:
        self.extra_sections.append(text)

    def write(self) -> None:
        if not self.runs and not self.extra_sections:
            return
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        sections = []
        if self.runs:
            sections.append(comparison_table(self.runs, self.title))
            systems = []
            for run in self.runs:
                if run.system not in systems:
                    systems.append(run.system)
            if len(systems) >= 2:
                for other in systems[1:]:
                    sections.append(speedup_summary(self.runs, other, systems[0]))
        sections.extend(self.extra_sections)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n\n".join(sections) + "\n")


@pytest.fixture(scope="module")
def figure_report(request):
    """Per-module run collector; writes benchmarks/results/<module>.txt."""
    module_name = request.module.__name__.split(".")[-1]
    title = getattr(request.module, "FIGURE_TITLE", module_name)
    report = FigureReport(module_name, title)
    yield report
    report.write()
