"""Fig. 9 — Dist-mu-RA's own plans: global loop (Pgld) vs local loops (Pplw).

The paper observes that the Pplw plans are consistently faster than Pgld on
the Yago queries because they avoid the per-iteration shuffle.  The shape to
reproduce: Pplw at least as fast as Pgld on (nearly) every query, and far
fewer shuffled tuples.
"""

from __future__ import annotations

import pytest

from repro.bench import run_distmura
from repro.distributed import PGLD, PPLW_SPARK
from repro.workloads import YAGO_QUICK_SUBSET, yago_queries

FIGURE_TITLE = "Fig. 9 - Pgld vs Pplw on Yago queries"

QUERIES = {query.qid: query for query in yago_queries(subset=YAGO_QUICK_SUBSET)}
STRATEGIES = {"Pplw": PPLW_SPARK, "Pgld": PGLD}


@pytest.mark.parametrize("qid", sorted(QUERIES))
@pytest.mark.parametrize("plan_name", sorted(STRATEGIES))
def test_yago_query_plan(benchmark, figure_report, yago_graph, qid, plan_name):
    query = QUERIES[qid]
    run = benchmark.pedantic(
        lambda: run_distmura(yago_graph, query, strategy=STRATEGIES[plan_name]),
        rounds=1, iterations=1)
    run.system = plan_name
    figure_report.add(run)
    assert run.succeeded
