"""Fig. 11 — non-regular (class C7) queries: anbn, SG, Filtered SG, Joined SG.

These queries are only expressible in mu-RA (or Datalog), not as UCRPQs, so
GraphX is reported as unsupported.  Shapes to reproduce: comparable times
between Dist-mu-RA and BigDatalog on plain SG / anbn, Dist-mu-RA ahead on
Filtered SG and Joined SG (where its algebraic filters/joins pay off).
"""

from __future__ import annotations

import pytest

from repro.bench import MeasuredRun, run_bigdatalog, run_distmura
from repro.datasets import relabel_for_anbn
from repro.workloads import (anbn_datalog, anbn_term, mu_ra_query,
                             same_generation_datalog,
                             same_generation_facts_datalog, same_generation_term,
                             filtered_same_generation_term)
from repro.workloads.nonregular import joined_same_generation_term

FIGURE_TITLE = "Fig. 11 - non-regular queries (anbn / SG / Filtered SG / Joined SG)"

GRAPH_NAMES = ("AcTree", "Facebook", "Ragusan", "Wikitree")


def _relabelled(suite, name):
    return relabel_for_anbn(suite[name], seed=1)


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
@pytest.mark.parametrize("system", ("Dist-mu-RA", "BigDatalog"))
def test_anbn(benchmark, figure_report, social_suite, graph_name, system):
    graph = _relabelled(social_suite, graph_name)
    query = mu_ra_query(f"anbn/{graph_name}", anbn_term("a", "b"))

    def run():
        if system == "Dist-mu-RA":
            return run_distmura(graph, query)
        return run_bigdatalog(graph, query, datalog_program=anbn_datalog("a", "b"),
                              goal_columns=("src", "trg"))

    measured: MeasuredRun = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    if system == "Dist-mu-RA":
        assert measured.succeeded


@pytest.mark.parametrize("graph_name", GRAPH_NAMES)
@pytest.mark.parametrize("system", ("Dist-mu-RA", "BigDatalog"))
def test_same_generation(benchmark, figure_report, social_suite, graph_name, system):
    graph = social_suite[graph_name]
    label = graph.labels[0]
    query = mu_ra_query(f"SG/{graph_name}", same_generation_term(label))

    def run():
        if system == "Dist-mu-RA":
            return run_distmura(graph, query)
        return run_bigdatalog(graph, query,
                              datalog_program=same_generation_datalog(label),
                              goal_columns=("src", "trg"))

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    if system == "Dist-mu-RA":
        assert measured.succeeded


@pytest.mark.parametrize("graph_name", ("AcTree", "Wikitree"))
@pytest.mark.parametrize("system", ("Dist-mu-RA", "BigDatalog"))
def test_filtered_same_generation(benchmark, figure_report, social_suite,
                                  graph_name, system):
    graph = _relabelled(social_suite, graph_name)
    query = mu_ra_query(f"FilteredSG/{graph_name}",
                        filtered_same_generation_term("a"))

    def run():
        if system == "Dist-mu-RA":
            return run_distmura(graph, query)
        program = same_generation_facts_datalog("facts", predicate="a")
        return run_bigdatalog(graph, query, datalog_program=program,
                              goal_columns=("src", "trg"))

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    if system == "Dist-mu-RA":
        assert measured.succeeded


@pytest.mark.parametrize("graph_name", ("AcTree", "Wikitree"))
@pytest.mark.parametrize("system", ("Dist-mu-RA", "BigDatalog"))
def test_joined_same_generation(benchmark, figure_report, social_suite,
                                graph_name, system):
    graph = _relabelled(social_suite, graph_name)
    query = mu_ra_query(f"JoinedSG/{graph_name}",
                        joined_same_generation_term(["a", "b"]))

    def run():
        if system == "Dist-mu-RA":
            return run_distmura(graph, query)
        program = same_generation_facts_datalog("facts", predicate=None)
        return run_bigdatalog(graph, query, datalog_program=program,
                              goal_columns=("src", "trg", "pred"))

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    if system == "Dist-mu-RA":
        assert measured.succeeded
