"""Speedup of the indexed, delta-aware storage engine over the seed path.

The storage engine (``repro.data.storage``) changes three things on the
hot path of every semi-naive fixpoint: operator results are built through
the trusted zero-copy constructor, joins against loop-invariant relations
probe per-relation memoized hash indexes, and the accumulated result grows
in a :class:`~repro.data.storage.DeltaAccumulator` instead of being
re-unioned into a fresh frozenset per iteration.

This benchmark runs the same transitive-closure workload — a long chain
(deep recursion, the delta-accumulation worst case) with extra random
edges — in both modes: the normal indexed/delta mode and the
compatibility mode (``repro.data.storage.compatibility_mode``), which
restores the seed's rebuild-everything behaviour.  The headline assertion
is a >= 2x speedup; results must be bit-identical.  A second test checks
that distributed executions surface the index build/reuse counters in
their metrics, proving the reuse is real rather than assumed.
"""

from __future__ import annotations

import time

import pytest

from repro.algebra import RelVar, closure, evaluate
from repro.bench import MeasuredRun
from repro.data import Relation, compatibility_mode
from repro.distributed import (PPLW_POSTGRES, SparkCluster,
                               LocalSQLEngine, make_plan)

FIGURE_TITLE = "Storage engine speedup - indexed/delta vs compatibility mode"

#: Chain length: recursion depth of the closure (and the number of
#: semi-naive iterations).  Sized so the compatibility mode's per-iteration
#: O(|result|) union cost dominates clearly while the whole module stays a
#: CI-friendly smoke run.
CHAIN_LENGTH = 320
#: Extra forward edges to thicken the deltas a little.
EXTRA_EDGES = 80
#: Required speedup of the indexed/delta path (acceptance bar of the
#: storage-engine work).
SPEEDUP_FLOOR = 2.0

INDEXED = "indexed-delta"
COMPAT = "compatibility"

#: mode -> MeasuredRun, filled by the matrix test, read by the assertions.
_RESULTS: dict[str, MeasuredRun] = {}


@pytest.fixture(scope="module")
def chain_database():
    """A chain with shortcut edges: deep recursion, quadratic closure."""
    pairs = [(i, i + 1) for i in range(CHAIN_LENGTH)]
    step = max(2, CHAIN_LENGTH // EXTRA_EDGES)
    pairs += [(i, i + 2) for i in range(0, CHAIN_LENGTH - 2, step)]
    return {"E": Relation.from_pairs(pairs, columns=("src", "trg"))}


@pytest.fixture(scope="module")
def closure_term():
    return closure(RelVar("E"), var="X")


def _measure(mode: str, database, term) -> MeasuredRun:
    started = time.perf_counter()
    if mode == COMPAT:
        with compatibility_mode():
            relation = evaluate(term, database)
    else:
        relation = evaluate(term, database)
    elapsed = time.perf_counter() - started
    return MeasuredRun(system=mode, query_id="TC", dataset=f"chain-{CHAIN_LENGTH}",
                       seconds=elapsed, rows=len(relation))


@pytest.mark.parametrize("mode", (INDEXED, COMPAT))
def test_transitive_closure_both_modes(benchmark, figure_report,
                                       chain_database, closure_term, mode):
    measured = benchmark.pedantic(
        lambda: _measure(mode, chain_database, closure_term),
        rounds=1, iterations=1)
    figure_report.add(measured)
    _RESULTS[mode] = measured
    assert measured.rows > CHAIN_LENGTH  # the closure is much bigger than E


def test_modes_agree_and_speedup_exceeds_floor(figure_report, chain_database,
                                               closure_term):
    indexed = _RESULTS.get(INDEXED)
    compat = _RESULTS.get(COMPAT)
    if indexed is None or compat is None:
        pytest.skip("mode runs were deselected")
    assert indexed.rows == compat.rows
    speedup = compat.seconds / indexed.seconds
    figure_report.add_section(
        f"speedup (compatibility / indexed-delta): {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR}x)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"indexed/delta path is only {speedup:.2f}x faster than the "
        f"compatibility mode (floor {SPEEDUP_FLOOR}x)")


def test_local_engine_speedup(figure_report, chain_database, closure_term):
    """The per-worker engine rides the same storage layer."""
    def run(mode: str) -> MeasuredRun:
        engine = LocalSQLEngine(chain_database)
        started = time.perf_counter()
        if mode == COMPAT:
            with compatibility_mode():
                relation = engine.evaluate_fixpoint(closure_term)
        else:
            relation = engine.evaluate_fixpoint(closure_term)
        elapsed = time.perf_counter() - started
        return MeasuredRun(system=f"local-engine/{mode}", query_id="TC",
                           dataset=f"chain-{CHAIN_LENGTH}", seconds=elapsed,
                           rows=len(relation))

    indexed = figure_report.add(run(INDEXED))
    compat = figure_report.add(run(COMPAT))
    assert indexed.rows == compat.rows
    assert compat.seconds / indexed.seconds >= SPEEDUP_FLOOR


def test_distributed_metrics_expose_index_reuse(chain_database, closure_term):
    """Pplw^pg on the refactored storage reports real index reuse."""
    cluster = SparkCluster(num_workers=4)
    plan = make_plan(PPLW_POSTGRES, cluster, chain_database)
    result = plan.execute(closure_term)
    summary = cluster.metrics.summary()
    assert summary["index_builds"] > 0
    assert summary["index_reuses"] > summary["index_builds"], summary
    if INDEXED in _RESULTS:
        assert len(result) == _RESULTS[INDEXED].rows
