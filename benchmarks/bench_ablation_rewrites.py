"""Ablation — the logical rewriter on vs off.

DESIGN.md calls out the fixpoint rewritings (filter/join pushing, merging,
reversal) as the core logical contribution inherited from mu-RA.  This
ablation runs representative queries of classes C2, C3, C5 and C6 with the
optimizer enabled and disabled, on the same distributed runtime, to isolate
how much of Dist-mu-RA's advantage comes from the rewrites themselves.
"""

from __future__ import annotations

import pytest

from repro.bench import run_distmura
from repro.workloads import ucrpq_query

FIGURE_TITLE = "Ablation - logical rewriter enabled vs disabled"

QUERIES = {
    "C2": ucrpq_query("C2", "?x <- ?x (actedIn/-actedIn)+ Kevin_Bacon"),
    "C3": ucrpq_query("C3", "?x <- Jay_Kappraff (livesIn/isLocatedIn/-livesIn)+ ?x"),
    "C5": ucrpq_query("C5", "?x,?y <- ?x livesIn/isLocatedIn+ ?y"),
    "C6": ucrpq_query("C6", "?x,?y <- ?x isLocatedIn+/dealsWith+ ?y"),
}


@pytest.mark.parametrize("label", sorted(QUERIES))
@pytest.mark.parametrize("optimizer", ("rewrites-on", "rewrites-off"))
def test_rewriter_ablation(benchmark, figure_report, yago_graph, label, optimizer):
    query = QUERIES[label]
    run = benchmark.pedantic(
        lambda: run_distmura(yago_graph, query,
                             optimize=(optimizer == "rewrites-on")),
        rounds=1, iterations=1)
    run.system = optimizer
    figure_report.add(run)
    assert run.succeeded
