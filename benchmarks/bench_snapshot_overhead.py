"""Cost of copy-on-write snapshot commits and the concurrency they buy.

Three acceptance properties of the snapshot-isolated Session API:

1. **Commit overhead** — a single-label mutation through
   ``Session.add_edges`` (which builds a full successor
   :class:`~repro.data.snapshot.DatabaseSnapshot`: COW relation map,
   per-relation versions, schemas and statistics) must cost at most 10%
   more than the seed's in-place edit (mutate the dict, refresh the
   catalog, recompute the schema map, bump versions).
2. **O(touched relations)** — commit cost must track the relations a
   mutation touches, not the size of the database: growing the number of
   *untouched* relations 8x must not meaningfully change the commit time
   (only a few dictionary copies scale with the name count).
3. **Reads under a writer** — because result-cache hits are served from
   version-keyed snapshots without the execution lock, reader throughput
   while a writer commits must beat the seed discipline, where both the
   cached lookup and the mutation serialized on the execution lock.
4. **Maintained views under a write workload** — a mixed read/write
   replay over a transitive closure: with incremental view maintenance
   every post-commit read is a cache hit served from the promoted entry,
   which must beat the recompute-on-every-read baseline
   (``view_maintenance="off"``) by at least
   :data:`REPLAY_SPEEDUP_FLOOR`.  The deletion path is exercised too:
   a single-edge removal must re-derive (DRed) and a bulk removal must
   trip the cost-model fallback; both decisions land in the report.

Results are written to ``benchmarks/results/bench_snapshot_overhead.txt``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Session
from repro.algebra.schema import schemas_of_database
from repro.data import LabeledGraph, Relation, StatisticsCatalog
from repro.datasets import erdos_renyi_graph
from repro.service.view_maintenance import FALLBACK, REDERIVED

FIGURE_TITLE = "Snapshot commit overhead and lock-free read throughput"

#: Edges in the mutated label: sized so the shared per-edit work (delta
#: union + statistics refresh over the touched relations) dominates and
#: the whole module stays a CI-friendly smoke run.
GRAPH_EDGES = 8_000
#: Commits measured per mode (medians over these samples).
COMMITS = 60
#: Allowed overhead of a snapshot commit over the seed in-place edit.
OVERHEAD_CEILING = 1.10
#: Required throughput advantage of lock-free reads under a writer.
READ_SPEEDUP_FLOOR = 1.3
#: Required advantage of a maintained-view hit over a full recompute of
#: the transitive closure in the read/write replay.
REPLAY_SPEEDUP_FLOOR = 3.0
#: Alternating write/read rounds in the replay.
REPLAY_ROUNDS = 6


def _median(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


@pytest.fixture(scope="module")
def mutation_graph() -> LabeledGraph:
    return erdos_renyi_graph(2_000, num_edges=GRAPH_EDGES, seed=23,
                             labels=("knows", "cites"), name="commit-bench")


def _seed_inplace_edit(database: dict, catalog: StatisticsCatalog,
                       versions: dict, version: int,
                       label: str, pair: tuple) -> int:
    """Replay the seed mutation path: edit the dict under one lock hold.

    Mirrors the pre-snapshot ``Session._mutate_locked``: plan the three
    deltas (label, inverse, facts), union them in, refresh the touched
    statistics, recompute the schema map and bump the version counters.
    (The eager cache purge is *omitted*, which only makes the baseline
    faster and this benchmark's ceiling harder to meet.)
    """
    src, trg = pair
    deltas = {
        label: Relation.from_pairs([pair], columns=("src", "trg")),
        f"-{label}": Relation.from_pairs([(trg, src)], columns=("src", "trg")),
        "facts": Relation(("pred", "src", "trg"), [(label, src, trg)]),
    }
    for name, delta in deltas.items():
        database[name] = database[name].union(delta)
        catalog.refresh(name, database[name])
    schemas_of_database(database)
    version += 1
    for name in deltas:
        versions[name] = version
    return version


def test_commit_overhead_within_ceiling(figure_report, mutation_graph):
    """COW snapshot commit vs seed in-place edit, single-label mutation.

    The two variants are *interleaved* sample by sample, so slow system
    drift (GC pressure, thermal throttling, a noisy CI neighbour) hits
    both medians equally instead of biasing whichever ran second.
    """
    seed_db = dict(mutation_graph.relations())
    seed_catalog = StatisticsCatalog(seed_db)
    seed_versions = dict.fromkeys(seed_db, 0)
    seed_samples: list[float] = []
    snapshot_samples: list[float] = []
    version = 0
    with Session(mutation_graph, num_workers=2) as session:
        for index in range(COMMITS):
            pair = (f"seed{index}", f"seed{index + 1}")
            started = time.perf_counter()
            version = _seed_inplace_edit(seed_db, seed_catalog, seed_versions,
                                         version, "knows", pair)
            seed_samples.append(time.perf_counter() - started)

            pair = (f"snap{index}", f"snap{index + 1}")
            started = time.perf_counter()
            touched = session.add_edges("knows", [pair])
            snapshot_samples.append(time.perf_counter() - started)
            assert touched  # never the no-op fast path
        assert session.database_version == COMMITS

    seed_median = _median(seed_samples)
    snapshot_median = _median(snapshot_samples)
    ratio = snapshot_median / seed_median
    figure_report.add_section(
        f"single-label commit: seed in-place {seed_median * 1e3:.3f} ms, "
        f"snapshot COW {snapshot_median * 1e3:.3f} ms "
        f"-> overhead {ratio:.3f}x (ceiling {OVERHEAD_CEILING}x)")
    assert ratio <= OVERHEAD_CEILING, (
        f"snapshot commit costs {ratio:.2f}x the seed in-place edit "
        f"(ceiling {OVERHEAD_CEILING}x)")


@pytest.mark.parametrize("relations", (8, 64))
def test_commit_cost_is_o_touched(figure_report, relations):
    """8x more *untouched* relations must not inflate the commit."""
    rows = [(f"n{i}", f"n{i + 1}") for i in range(2_000)]
    database = {
        f"l{index}": Relation.from_pairs(rows, columns=("src", "trg"))
        for index in range(relations)
    }
    with Session(database, num_workers=2) as session:
        samples: list[float] = []
        for index in range(COMMITS):
            pair = (f"c{index}", f"c{index + 1}")
            started = time.perf_counter()
            session.add_edges("l0", [pair])
            samples.append(time.perf_counter() - started)
    _SCALING[relations] = _median(samples)
    figure_report.add_section(
        f"commit with {relations} relations (1 touched): "
        f"{_SCALING[relations] * 1e3:.3f} ms")
    if len(_SCALING) == 2:
        small, large = _SCALING[8], _SCALING[64]
        ratio = large / small
        figure_report.add_section(
            f"scaling 8 -> 64 relations: {ratio:.2f}x "
            f"(O(touched): must stay well below the 8x name growth)")
        assert ratio < 2.5, (
            f"commit cost grew {ratio:.2f}x when only untouched relations "
            f"were added; expected O(touched relations)")


_SCALING: dict[int, float] = {}


def _concurrent_database() -> dict[str, Relation]:
    """A cheap cached relation, a mutated one, and a recursion-heavy one.

    Readers hit ``knows`` (cached lookups); the writer commits into the
    disjoint ``cites``; the cluster meanwhile executes closures over
    ``follows`` — the cache-missing work that holds the execution lock.
    """
    knows = Relation.from_pairs([(f"k{i}", f"k{i + 1}") for i in range(50)],
                                columns=("src", "trg"))
    cites = Relation.from_pairs([(f"c{i}", f"c{i + 1}") for i in range(5_000)],
                                columns=("src", "trg"))
    chain = [(f"f{i}", f"f{i + 1}") for i in range(600)]
    chain += [(f"f{i}", f"f{i + 2}") for i in range(0, 600, 7)]
    follows = Relation.from_pairs(chain, columns=("src", "trg"))
    return {"knows": knows, "cites": cites, "follows": follows}


def _read_throughput(session: Session, query: str, locked: bool,
                     window_seconds: float) -> tuple[float, int, int]:
    """Reads/second of cached hits while the service is actually busy.

    Background load in both modes: one thread repeatedly *executes* a
    recursion-heavy query with the result cache off (a cache miss on the
    cluster — this is what the execution lock exists for) and a writer
    commits edge batches on a steady cadence.  ``locked=True`` replays
    the seed discipline, where the result-cache lookup and the mutation
    also had to acquire the execution lock: every cached read and every
    commit waits out the in-flight execution.  With ``locked=False`` the
    snapshot path runs as-is — hits are served from version-keyed
    snapshots and commits swap heads, neither touching the lock — so
    only the physical executions themselves serialize.
    """
    done = threading.Event()
    counts = [0, 0]
    commits = [0]
    heavy = [0]

    def reader(slot: int) -> None:
        while not done.is_set():
            if locked:
                with session.execution_lock:
                    session.ucrpq(query).collect()
            else:
                session.ucrpq(query).collect()
            counts[slot] += 1

    def writer() -> None:
        index = 0
        while not done.is_set():
            pairs = [(f"w{index}_{j}", f"w{index}_{j + 1}")
                     for j in range(40)]
            if locked:
                with session.execution_lock:
                    session.add_edges("cites", pairs)
            else:
                session.add_edges("cites", pairs)
            commits[0] += 1
            index += 1
            done.wait(0.005)  # cadence pause, outside any lock

    def executor_load() -> None:
        while not done.is_set():
            # A genuine cluster execution: holds the execution lock in
            # both modes (physical executions always serialize).
            session.ucrpq("?x,?y <- ?x follows+ ?y").run_once(
                use_result_cache=False)
            heavy[0] += 1

    threads = [threading.Thread(target=reader, args=(slot,))
               for slot in range(2)]
    threads.append(threading.Thread(target=writer))
    threads.append(threading.Thread(target=executor_load))
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(window_seconds)
    done.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    return sum(counts) / elapsed, commits[0], heavy[0]


def test_reads_under_writer_beat_lock_serialized_seed(figure_report):
    query = "?x,?y <- ?x knows ?y"
    rates = {}
    writes = {}
    for locked in (True, False):
        with Session(_concurrent_database(), num_workers=2) as session:
            session.ucrpq(query).collect()  # warm plan + result caches
            rate, commits, executions = _read_throughput(
                session, query, locked, window_seconds=1.2)
            rates[locked] = rate
            writes[locked] = commits
            assert executions > 0  # the cluster was really busy
            assert commits > 0     # the writer really interleaved
    ratio = rates[False] / max(1.0, rates[True])
    figure_report.add_section(
        f"cached reads/s with a concurrent writer on a busy cluster: "
        f"lock-serialized (seed) {rates[True]:.0f}/s "
        f"({writes[True]} commits), "
        f"snapshot (lock-free hits) {rates[False]:.0f}/s "
        f"({writes[False]} commits) "
        f"-> {ratio:.2f}x (floor {READ_SPEEDUP_FLOOR}x)")
    assert ratio >= READ_SPEEDUP_FLOOR, (
        f"lock-free reads only {ratio:.2f}x the lock-serialized seed path "
        f"(floor {READ_SPEEDUP_FLOOR}x)")


TC_QUERY = "?x,?y <- ?x knows+ ?y"


def _replay_graph(length: int = 160, extra: int = 40) -> LabeledGraph:
    """A knows-chain with shortcut edges, the replay's recursion driver.

    The shape matches the view-maintenance test fixture (scaled up):
    plan selection over it is stable under single-edge deltas, so a
    maintained entry keyed to the promoted fingerprint is actually the
    one the post-commit replan asks for.
    """
    graph = LabeledGraph(name="replay")
    triples = [(f"n{i}", "knows", f"n{i + 1}") for i in range(length)]
    triples += [(f"n{i}", "knows", f"n{i + 5}")
                for i in range(0, extra * 4, 4)]
    graph.add_edges(triples)
    return graph


def _replay(mode: str) -> tuple[list[float], list[float], Session]:
    """Alternate single-edge commits with transitive-closure reads.

    Returns (commit seconds, post-commit read seconds) per round.  With
    ``mode="sync"`` the commit also pays for maintenance (resuming the
    cached fixpoint over the delta) and every read is a cache hit; with
    ``mode="off"`` commits are bare and every read recomputes the
    closure from scratch.
    """
    commit_samples: list[float] = []
    read_samples: list[float] = []
    with Session(_replay_graph(), num_workers=2,
                 view_maintenance=mode) as session:
        session.ucrpq(TC_QUERY).collect()  # warm plan + result caches
        for index in range(REPLAY_ROUNDS):
            pair = (f"r{index}", f"r{index + 1}")
            started = time.perf_counter()
            session.add_edges("knows", [pair])
            commit_samples.append(time.perf_counter() - started)
            handle = session.ucrpq(TC_QUERY)
            started = time.perf_counter()
            result = handle.collect()
            read_samples.append(time.perf_counter() - started)
            assert pair in result.relation.to_pairs("x", "y")
            if mode == "sync":
                assert session.last_maintenance.resumed == 1
                assert handle.last_result_cache_hit is True
            else:
                assert session.last_maintenance is None
                assert handle.last_result_cache_hit is False
    return commit_samples, read_samples


def test_maintained_views_beat_recompute_on_replay(figure_report):
    """Mixed read/write replay: maintained hits vs full recompute."""
    recompute_commits, recompute_reads = _replay("off")
    maintained_commits, maintained_reads = _replay("sync")
    read_ratio = _median(recompute_reads) / max(_median(maintained_reads),
                                                1e-9)
    total_off = sum(recompute_commits) + sum(recompute_reads)
    total_sync = sum(maintained_commits) + sum(maintained_reads)
    figure_report.add_section(
        f"read/write replay ({REPLAY_ROUNDS} rounds, transitive closure): "
        f"post-commit read {_median(recompute_reads) * 1e3:.3f} ms "
        f"recomputed vs {_median(maintained_reads) * 1e3:.3f} ms maintained "
        f"-> {read_ratio:.1f}x (floor {REPLAY_SPEEDUP_FLOOR}x); "
        f"commit {_median(recompute_commits) * 1e3:.3f} ms bare vs "
        f"{_median(maintained_commits) * 1e3:.3f} ms maintaining; "
        f"whole replay {total_off * 1e3:.1f} ms -> {total_sync * 1e3:.1f} ms")
    assert read_ratio >= REPLAY_SPEEDUP_FLOOR, (
        f"maintained-view hits only {read_ratio:.2f}x faster than full "
        f"recompute (floor {REPLAY_SPEEDUP_FLOOR}x)")


def test_replay_deletions_rederive_then_fall_back(figure_report):
    """The deletion half of maintenance, on the same replay graph.

    A single-edge removal is cheap relative to the base relation, so the
    maintainer must DRed (delete-and-rederive) and keep the entry
    hitting; bulk-removing a large slice of the chain blows the cost
    model's delta threshold and must fall back to dropping the entry.
    """
    with Session(_replay_graph(), num_workers=2,
                 view_maintenance="sync") as session:
        cached = session.ucrpq(TC_QUERY).collect()
        session.remove_edges("knows", [("n40", "n41")])
        dred = session.last_maintenance
        assert dred.rederived == 1 and dred.decisions[0].action == REDERIVED
        handle = session.ucrpq(TC_QUERY)
        maintained = handle.collect().relation
        assert handle.last_result_cache_hit is True
        assert maintained == session.execute_term(
            cached.selected_plan, optimize=False).relation

        removals = [(f"n{i}", f"n{i + 1}") for i in range(0, 120, 2)]
        session.remove_edges("knows", removals)
        bulk = session.last_maintenance
        assert bulk.fallbacks == 1 and bulk.decisions[0].action == FALLBACK
        figure_report.add_section(
            "deletion maintenance: single-edge removal -> "
            f"{dred.decisions[0].action} "
            f"({dred.decisions[0].elapsed_seconds * 1e3:.3f} ms, entry kept "
            "hitting); bulk removal of "
            f"{len(removals)} edges -> {bulk.decisions[0].action} "
            f"(delta {bulk.decisions[0].delta_rows} rows vs "
            f"{bulk.decisions[0].base_rows} base rows)")
