"""Fig. 13 — UCRPQs on the Uniprot graph (the paper's uniprot_1M, scaled).

Shape to reproduce: Dist-mu-RA answers every query; BigDatalog is slower (or
fails) on the C2-C6 queries with large intermediate results; GraphX fails on
most of the unselective queries.
"""

from __future__ import annotations

import pytest

from repro.bench import run_bigdatalog, run_distmura, run_graphx
from repro.workloads import UNIPROT_QUICK_SUBSET, uniprot_queries

FIGURE_TITLE = "Fig. 13 - running times on the Uniprot graph"

#: GraphX is only run on the selective (constant-anchored) queries so that
#: the benchmark completes quickly; the unselective ones fail by budget
#: anyway, which the report records.
GRAPHX_SUBSET = ("Q28", "Q30", "Q36", "Q41", "Q45", "Q49")
BIGDATALOG_FACT_BUDGET = 600_000
GRAPHX_MESSAGE_BUDGET = 400_000


@pytest.fixture(scope="module")
def workload(uniprot_small):
    return {query.qid: query
            for query in uniprot_queries(uniprot_small,
                                         subset=UNIPROT_QUICK_SUBSET)}


@pytest.mark.parametrize("qid", UNIPROT_QUICK_SUBSET)
@pytest.mark.parametrize("system", ("Dist-mu-RA", "BigDatalog", "GraphX"))
def test_uniprot_query(benchmark, figure_report, uniprot_small, workload,
                       qid, system):
    query = workload[qid]

    def run():
        if system == "Dist-mu-RA":
            return run_distmura(uniprot_small, query)
        if system == "BigDatalog":
            return run_bigdatalog(uniprot_small, query,
                                  max_facts=BIGDATALOG_FACT_BUDGET)
        if qid not in GRAPHX_SUBSET:
            from repro.bench import MeasuredRun
            return MeasuredRun(system="GraphX", query_id=qid,
                               dataset=uniprot_small.name, seconds=0.0, rows=0,
                               status="failed", detail="skipped: message explosion")
        return run_graphx(uniprot_small, query,
                          max_messages=GRAPHX_MESSAGE_BUDGET)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    if system == "Dist-mu-RA":
        assert measured.succeeded
