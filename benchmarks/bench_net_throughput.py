"""HTTP serving tier vs in-process serving: throughput and latency.

The same Zipf-skewed workload replay as ``bench_service_throughput`` —
Yago + Uniprot + closure queries over one merged database — driven two
ways against one warmed (hot-cache) :class:`QueryService`:

* ``in-process hot`` — ``NUM_CLIENTS`` threads calling
  :meth:`QueryService.submit` directly (no network, no serialization),
* ``http hot`` — ``NUM_CLIENTS`` separate **OS processes**, each with a
  blocking :class:`~repro.net.client.ServiceClient`, replaying the same
  trace through ``POST /v1/query`` against one
  :class:`~repro.net.server.HttpServer`.

The report records client-observed p50/p95/p99 latency for both paths
and dumps every number to ``benchmarks/results/BENCH_net.json``.
Headline assertion: the HTTP path's hot-cache throughput must stay
within ``SANE_FACTOR``x of the in-process path — the tier may pay for
sorting, JSON and the wire, but not by an order-of-magnitude-plus.
"""

from __future__ import annotations

import json
import multiprocessing
import random
import threading
import time
from pathlib import Path

import pytest

from repro import QueryService, Session
from repro.bench import latency_table
from repro.datasets import erdos_renyi_graph, uniprot_graph, yago_like_graph
from repro.net import HttpServer, ServerThread
from repro.net.client import ServiceClient
from repro.service import OK
from repro.workloads.closures import concatenated_closure_query
from repro.workloads.uniprot_queries import uniprot_queries
from repro.workloads.yago_queries import yago_queries

FIGURE_TITLE = "HTTP serving tier - hot-cache replay vs in-process serving"
RESULTS_DIR = Path(__file__).parent / "results"

NUM_CLIENTS = 4
REQUESTS = 96
ZIPF_EXPONENT = 1.1
PERCENTILES = (0.5, 0.95, 0.99)
#: Acceptance bar: hot-cache HTTP throughput vs the in-process path.
SANE_FACTOR = 25.0

YAGO_SUBSET = ("Q1", "Q3", "Q8", "Q12", "Q16")
UNIPROT_SUBSET = ("Q30", "Q42", "Q49")

#: mode -> {"latencies": [...], "wall_seconds": float}, filled by the
#: replay tests and consumed by the assertion/report test below.
_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def merged_database():
    yago = yago_like_graph(scale=60, seed=7)
    uniprot = uniprot_graph(num_edges=800, seed=11)
    closure_graph = erdos_renyi_graph(60, num_edges=240, seed=3,
                                      labels=("a1", "a2"), name="rnd_cc")
    database = {}
    for graph in (yago, uniprot, closure_graph):
        for name, relation in graph.relations().items():
            database[name] = (relation if name not in database
                              else database[name].union(relation))
    return database


@pytest.fixture(scope="module")
def trace(merged_database):
    """Zipf-skewed replay trace: few hot queries, a long cold tail."""
    uniprot = uniprot_graph(num_edges=800, seed=11)
    queries = []
    queries += yago_queries(subset=YAGO_SUBSET)
    queries += uniprot_queries(uniprot, subset=UNIPROT_SUBSET)
    queries += [concatenated_closure_query(2, label_prefix="a")]
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT
               for rank in range(len(queries))]
    rng = random.Random(20260808)
    return [query.text for query in
            rng.choices(queries, weights=weights, k=REQUESTS)]


@pytest.fixture(scope="module")
def hot_server(merged_database, trace):
    """A served, cache-warmed service plus its HTTP front end."""
    session = Session(merged_database, num_workers=4, executor="threads")
    service = QueryService(session, max_in_flight=NUM_CLIENTS,
                           queue_capacity=REQUESTS, own_engine=True)
    for text in sorted(set(trace)):  # warm the plan + result caches
        served = service.submit(text, block=True).result()
        assert served.status == OK, served.detail
    running = ServerThread(HttpServer(service, own_service=True)).start()
    yield service, running.port
    running.stop()


def run_http_client(args: tuple) -> tuple[float, float, list[float]]:
    """One OS process replaying its trace slice through ServiceClient."""
    port, texts = args
    latencies: list[float] = []
    with ServiceClient("127.0.0.1", port, timeout=120.0) as client:
        client.health()  # connection + import warm-up, outside the clock
        started = time.perf_counter()
        for text in texts:
            request_started = time.perf_counter()
            response = client.query(text, timeout=0)
            latencies.append(time.perf_counter() - request_started)
            assert response["status"] == "ok"
        finished = time.perf_counter()
    return started, finished, latencies


def test_in_process_hot_replay(hot_server, trace):
    service, _ = hot_server
    slices = [trace[index::NUM_CLIENTS] for index in range(NUM_CLIENTS)]
    latencies: list[list[float]] = [[] for _ in range(NUM_CLIENTS)]

    def client(client_id: int) -> None:
        for text in slices[client_id]:
            request_started = time.perf_counter()
            served = service.submit(text, block=True).result()
            latencies[client_id].append(
                time.perf_counter() - request_started)
            assert served.status == OK, served.detail

    threads = [threading.Thread(target=client, args=(client_id,))
               for client_id in range(NUM_CLIENTS)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    _RESULTS["in-process hot"] = {
        "latencies": [s for per_client in latencies for s in per_client],
        "wall_seconds": wall,
    }


def test_http_hot_replay(hot_server, trace):
    _, port = hot_server
    slices = [trace[index::NUM_CLIENTS] for index in range(NUM_CLIENTS)]
    context = multiprocessing.get_context("spawn")
    with context.Pool(NUM_CLIENTS) as pool:
        outcomes = pool.map(run_http_client,
                            [(port, piece) for piece in slices])
    # Process start-up and imports are excluded: the replay wall clock
    # spans first-request-sent to last-response-received across workers.
    wall = (max(finished for _, finished, _ in outcomes)
            - min(started for started, _, _ in outcomes))
    _RESULTS["http hot"] = {
        "latencies": [s for _, _, latencies in outcomes for s in latencies],
        "wall_seconds": wall,
    }


def test_throughput_within_sane_factor_and_report(figure_report):
    if len(_RESULTS) < 2:
        pytest.skip("replay runs were deselected")
    rows = [(f"{mode} ({NUM_CLIENTS} "
             f"{'procs' if mode.startswith('http') else 'threads'})",
             _RESULTS[mode]["latencies"])
            for mode in ("in-process hot", "http hot")]
    figure_report.add_section(
        latency_table(rows, FIGURE_TITLE, row_label="path",
                      percentiles=PERCENTILES))
    throughput = {mode: len(result["latencies"]) / result["wall_seconds"]
                  for mode, result in _RESULTS.items()}
    ratio = throughput["in-process hot"] / throughput["http hot"]
    figure_report.add_section(
        f"replay: {REQUESTS} requests, {NUM_CLIENTS} clients, "
        f"Zipf s={ZIPF_EXPONENT}\n"
        f"  in-process hot throughput : {throughput['in-process hot']:8.1f} q/s\n"
        f"  http hot throughput       : {throughput['http hot']:8.1f} q/s\n"
        f"  in-process / http ratio   : {ratio:.1f}x "
        f"(sane factor {SANE_FACTOR}x)")

    def stats(samples: list[float]) -> dict:
        ordered = sorted(samples)

        def pct(fraction: float) -> float:
            index = min(len(ordered) - 1,
                        max(0, round(fraction * (len(ordered) - 1))))
            return ordered[index]

        return {"count": len(ordered),
                "mean_s": sum(ordered) / len(ordered),
                "p50_s": pct(0.5), "p95_s": pct(0.95), "p99_s": pct(0.99),
                "max_s": ordered[-1]}

    payload = {
        "title": FIGURE_TITLE,
        "requests": REQUESTS,
        "clients": NUM_CLIENTS,
        "zipf_exponent": ZIPF_EXPONENT,
        "sane_factor": SANE_FACTOR,
        "runs": [
            {"mode": mode, "wall_seconds": result["wall_seconds"],
             "throughput_qps": throughput[mode],
             **stats(result["latencies"])}
            for mode, result in sorted(_RESULTS.items())
        ],
        "throughput_ratio": ratio,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_net.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert ratio <= SANE_FACTOR, (
        f"HTTP hot-cache throughput {ratio:.1f}x below the in-process "
        f"path (sane factor {SANE_FACTOR}x)")
