"""Workload replay through the serving layer: throughput and latency.

A Zipf-skewed mix of the existing workloads (Yago UCRPQs, Uniprot UCRPQs
and concatenated closures, all over one merged database) is replayed from
``NUM_CLIENTS`` concurrent client threads against a :class:`QueryService`,
in three configurations:

* ``caches off`` — every request pays translation + rewriting + ranking +
  execution (the pre-serving-layer behaviour, but scheduled),
* ``caches cold`` — caches enabled, first replay (populating),
* ``caches hot`` — caches enabled, second replay of the same trace
  (the repeated-query hot path).

The report shows served throughput, latency percentiles (through the
shared :func:`repro.bench.latency_table` formatter) and the cache hit
rates.  Headline assertion: the hot path must be at least
``HOT_SPEEDUP_FLOOR``x faster (mean latency) than the caches-off replay —
the ≥5x acceptance bar of the serving-layer work.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import QueryService, Session
from repro.bench import latency_table
from repro.datasets import erdos_renyi_graph, uniprot_graph, yago_like_graph
from repro.service import OK
from repro.workloads.closures import concatenated_closure_query
from repro.workloads.uniprot_queries import uniprot_queries
from repro.workloads.yago_queries import yago_queries

FIGURE_TITLE = "Serving layer - workload replay throughput and latency"

NUM_CLIENTS = 4
REQUESTS = 96
#: Zipf exponent of the query popularity (rank -> weight 1/rank^s).
ZIPF_EXPONENT = 1.1
#: Acceptance bar: repeated-query cache hits vs the uncached replay.
HOT_SPEEDUP_FLOOR = 5.0

YAGO_SUBSET = ("Q1", "Q3", "Q8", "Q12", "Q16")
UNIPROT_SUBSET = ("Q30", "Q42", "Q49")

#: mode -> {"latencies": [...], "snapshot": MetricsSnapshot}, filled by the
#: replay matrix and consumed by the assertions/report below.
_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def merged_database():
    """One database holding the Yago, Uniprot and closure label spaces."""
    yago = yago_like_graph(scale=60, seed=7)
    uniprot = uniprot_graph(num_edges=800, seed=11)
    closure_graph = erdos_renyi_graph(60, num_edges=240, seed=3,
                                      labels=("a1", "a2"), name="rnd_cc")
    database = {}
    for graph in (yago, uniprot, closure_graph):
        for name, relation in graph.relations().items():
            database[name] = (relation if name not in database
                              else database[name].union(relation))
    return database


@pytest.fixture(scope="module")
def workload(merged_database):
    """The distinct queries of the mix, most popular first."""
    uniprot = uniprot_graph(num_edges=800, seed=11)
    queries = []
    queries += yago_queries(subset=YAGO_SUBSET)
    queries += uniprot_queries(uniprot, subset=UNIPROT_SUBSET)
    queries += [concatenated_closure_query(2, label_prefix="a")]
    return queries


@pytest.fixture(scope="module")
def trace(workload):
    """Zipf-skewed replay trace: few hot queries, a long cold tail."""
    weights = [1.0 / (rank + 1) ** ZIPF_EXPONENT
               for rank in range(len(workload))]
    rng = random.Random(20260728)
    return [query.text for query in
            rng.choices(workload, weights=weights, k=REQUESTS)]


def replay(service, trace):
    """Replay the trace from NUM_CLIENTS threads; return the latencies."""
    slices = [trace[index::NUM_CLIENTS] for index in range(NUM_CLIENTS)]
    latencies: list[list[float]] = [[] for _ in range(NUM_CLIENTS)]
    failures: list[str] = []

    def client(client_id: int) -> None:
        for text in slices[client_id]:
            served = service.submit(text, block=True).result()
            if served.status != OK:
                failures.append(f"{text}: {served.detail}")
            latencies[client_id].append(served.service_seconds)

    threads = [threading.Thread(target=client, args=(client_id,))
               for client_id in range(NUM_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures[:3]
    return [seconds for per_client in latencies for seconds in per_client]


@pytest.mark.parametrize("mode", ["caches off", "caches cold", "caches hot"])
def test_replay_matrix(figure_report, merged_database, trace, mode):
    caching = mode != "caches off"
    if mode == "caches hot":
        if "caches cold" not in _RESULTS:
            pytest.skip("needs the 'caches cold' run of the matrix")
        # Reuse the populated service of the cold run, with fresh counters
        # so the hot snapshot reports only the repeated-query replay.
        service = _RESULTS["caches cold"]["service"]
        service.metrics = type(service.metrics)()
        latencies = replay(service, trace)
        _RESULTS[mode] = {"latencies": latencies,
                          "snapshot": service.metrics.snapshot(),
                          "service": service}
        service.close()
        return
    engine = Session(merged_database, num_workers=4, executor="threads")
    service = QueryService(engine, max_in_flight=NUM_CLIENTS,
                           queue_capacity=REQUESTS, own_engine=True,
                           enable_plan_cache=caching,
                           enable_result_cache=caching)
    latencies = replay(service, trace)
    _RESULTS[mode] = {"latencies": latencies,
                      "snapshot": service.metrics.snapshot(),
                      "service": service}
    if not caching:
        service.close()


def test_hot_path_speedup_and_report(figure_report):
    if len(_RESULTS) < 3:
        pytest.skip("replay matrix was deselected")
    rows = [(mode, _RESULTS[mode]["latencies"])
            for mode in ("caches off", "caches cold", "caches hot")]
    figure_report.add_section(
        latency_table(rows, FIGURE_TITLE, row_label="mode"))
    lines = [f"replay: {REQUESTS} requests, {NUM_CLIENTS} clients, "
             f"Zipf s={ZIPF_EXPONENT}"]
    for mode in ("caches off", "caches cold", "caches hot"):
        snapshot = _RESULTS[mode]["snapshot"]
        lines.append(
            f"  {mode:12s} throughput {snapshot.throughput_qps:8.1f} q/s  "
            f"plan hits {snapshot.plan_cache_hit_rate:5.1%}  "
            f"result hits {snapshot.result_cache_hit_rate:5.1%}")
    off_mean = _mean(_RESULTS["caches off"]["latencies"])
    hot_mean = _mean(_RESULTS["caches hot"]["latencies"])
    speedup = off_mean / hot_mean
    lines.append(f"  repeated-query hot path speedup: {speedup:.1f}x "
                 f"(floor {HOT_SPEEDUP_FLOOR}x)")
    figure_report.add_section("\n".join(lines))
    # The second replay of the same trace hits the caches on every request.
    hot_snapshot = _RESULTS["caches hot"]["snapshot"]
    assert hot_snapshot.result_cache_hit_rate > 0.5
    assert speedup >= HOT_SPEEDUP_FLOOR, (
        f"cache-hit hot path only {speedup:.1f}x faster than uncached "
        f"serving (floor {HOT_SPEEDUP_FLOOR}x)")


def test_cold_cache_already_helps(figure_report):
    """Even the populating replay wins: the Zipf head repeats quickly."""
    if len(_RESULTS) < 2:
        pytest.skip("replay matrix was deselected")
    cold = _RESULTS["caches cold"]["snapshot"]
    assert cold.result_cache_hit_rate > 0.0
    assert _mean(_RESULTS["caches cold"]["latencies"]) <= \
        _mean(_RESULTS["caches off"]["latencies"]) * 1.5


#: Prepared-query scenario: bindings of one parameterized template.
PREPARED_BINDINGS = 100
#: Acceptance bar: share of bindings served from the plan cache.
PREPARED_HIT_FLOOR = 0.9
PREPARED_TEMPLATE = "?y <- :start int+ ?y"


def test_prepared_query_plan_cache(figure_report, merged_database):
    """100 bindings of one template: exactly one explore+rank.

    The template is planned once with a parameter sentinel; every binding
    substitutes its constant into the selected plan, so the rewriter and
    the cost ranking run exactly once for the whole batch.
    """
    with Session(merged_database, num_workers=4, executor="threads") as session:
        explores = []
        original = session.rewriter.explore
        session.rewriter.explore = lambda *args, **kw: (
            explores.append(1) or original(*args, **kw))
        prepared = session.prepare(PREPARED_TEMPLATE)
        nodes_pool: set = set()
        for label in ("int", "ref", "occ"):
            relation = merged_database[label]
            nodes_pool |= relation.column_values("src")
            nodes_pool |= relation.column_values("trg")
        nodes = sorted(nodes_pool)
        assert len(nodes) >= PREPARED_BINDINGS, "need 100 distinct bindings"
        latencies = []
        total_rows = 0
        for node in nodes[:PREPARED_BINDINGS]:
            started = time.perf_counter()
            result = prepared.bind(start=node).collect()
            latencies.append(time.perf_counter() - started)
            total_rows += len(result.relation)
        stats = session.plan_cache.stats
        hit_rate = stats.hits / (stats.hits + stats.misses)
        first, rest = latencies[0], latencies[1:]
        lines = [
            "Prepared-query scenario - one template, "
            f"{PREPARED_BINDINGS} bindings ({PREPARED_TEMPLATE!r})",
            f"  explore+rank invocations : {len(explores)}",
            f"  plan cache hits/misses   : {stats.hits}/{stats.misses} "
            f"(hit rate {hit_rate:.1%}, floor {PREPARED_HIT_FLOOR:.0%})",
            f"  first binding latency    : {first * 1000:8.2f} ms "
            f"(pays the one explore+rank)",
            f"  later bindings (mean)    : "
            f"{_mean(rest) * 1000:8.2f} ms over {len(rest)} bindings",
            f"  rows across bindings     : {total_rows}",
        ]
        figure_report.add_section("\n".join(lines))
        # Acceptance: one explore+rank for the whole batch; every binding
        # after the first is a plan-cache hit (>= 99/100).
        assert len(explores) == 1, f"template explored {len(explores)} times"
        assert stats.hits >= PREPARED_BINDINGS - 1
        assert hit_rate >= PREPARED_HIT_FLOOR


def _mean(values):
    return sum(values) / len(values)
