"""Fig. 5 — comparison of the two Pplw physical variants.

Left chart of the paper: transitive closure on an Erdos-Renyi graph, with a
constant part of growing size; right chart: Kleene-star navigations whose
variable part (the relations used inside the recursion) has growing size.
The quantity of interest is which variant (Spark local loops vs. per-worker
PostgreSQL-like engine) wins on each side of the sweep, and where the
crossover falls.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.algebra import Literal, RelVar, closure_from_seed
from repro.data import Relation
from repro.distributed import (PPLW_POSTGRES, PPLW_SPARK, SparkCluster,
                               make_plan)
from repro.bench import MeasuredRun, series_table

FIGURE_TITLE = "Fig. 5 - Pplw^pg vs Pplw^s (constant-part and variable-part sweeps)"

CONSTANT_PART_SIZES = (100, 300, 1000, 3000)
VARIANTS = (PPLW_SPARK, PPLW_POSTGRES)


def _seed_relation(graph, size: int) -> Relation:
    """A random subset of the edges, used as the fixpoint's constant part."""
    rng = random.Random(size)
    edges = sorted(graph.edges("edge").to_pairs("src", "trg"))
    chosen = rng.sample(edges, k=min(size, len(edges)))
    return Relation.from_pairs(chosen, columns=("src", "trg"))


def _run_variant(graph, strategy: str, seed_size: int) -> MeasuredRun:
    database = graph.relations()
    seed = _seed_relation(graph, seed_size)
    term = closure_from_seed(Literal(seed, name="seed"), RelVar("edge"))
    cluster = SparkCluster(num_workers=4)
    plan = make_plan(strategy, cluster, database)
    started = time.perf_counter()
    result = plan.execute(term)
    elapsed = time.perf_counter() - started
    return MeasuredRun(system=strategy, query_id=f"seed={seed_size}",
                       dataset=graph.name, seconds=elapsed, rows=len(result),
                       metrics=cluster.metrics.summary())


@pytest.mark.parametrize("seed_size", CONSTANT_PART_SIZES)
@pytest.mark.parametrize("strategy", VARIANTS)
def test_constant_part_sweep(benchmark, figure_report, transitive_closure_graph,
                             strategy, seed_size):
    run = benchmark.pedantic(
        lambda: _run_variant(transitive_closure_graph, strategy, seed_size),
        rounds=1, iterations=1)
    figure_report.add(run)
    assert run.succeeded


def test_variable_part_sweep(benchmark, figure_report, yago_graph):
    """Right chart: same query shape, growing variable-part relations."""
    labels_by_size = sorted(yago_graph.labels,
                            key=lambda label: yago_graph.edge_count(label))
    chosen = [label for label in labels_by_size if yago_graph.edge_count(label) > 5]
    chosen = chosen[:: max(1, len(chosen) // 5)][:5]

    def sweep():
        points = []
        for label in chosen:
            database = yago_graph.relations()
            seed = database[label]
            term = closure_from_seed(Literal(seed, name="seed"), RelVar(label))
            row: dict[str, float] = {"phi_size": yago_graph.edge_count(label)}
            for strategy in VARIANTS:
                cluster = SparkCluster(num_workers=4)
                plan = make_plan(strategy, cluster, database)
                started = time.perf_counter()
                plan.execute(term)
                row[strategy] = time.perf_counter() - started
            points.append((label, row))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    figure_report.add_section(series_table(
        points, "Fig. 5 (right) - evaluation time vs variable-part size",
        x_label="closure label"))
    assert points
