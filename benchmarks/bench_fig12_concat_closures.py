"""Fig. 12 — concatenated closures a1+/a2+/.../an+ of growing depth.

Shape to reproduce: Dist-mu-RA (which merges/pushes the fixpoints) stays
fast as the number of concatenated closures grows, while BigDatalog — which
must materialise every closure before joining — degrades quickly and
eventually fails; GraphX does not complete at all on this workload.
"""

from __future__ import annotations

import pytest

from repro.bench import run_bigdatalog, run_distmura
from repro.workloads import concatenated_closure_query

FIGURE_TITLE = "Fig. 12 - concatenated closures (depth 2..6)"

DEPTHS = (2, 3, 4, 5, 6)
#: Budget standing in for the cluster memory: BigDatalog runs that exceed it
#: are reported as failures, as in the paper.  The value is sized so that
#: materialising a couple of closures fits but materialising five or six of
#: them (what BigDatalog must do, and Dist-mu-RA's merged plans avoid) does
#: not — mirroring the paper's BigDatalog failures for n >= 5.
BIGDATALOG_FACT_BUDGET = 250_000


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("system", ("Dist-mu-RA", "BigDatalog"))
def test_concatenated_closures(benchmark, figure_report, labeled_random_graph,
                               depth, system):
    query = concatenated_closure_query(depth)

    def run():
        if system == "Dist-mu-RA":
            return run_distmura(labeled_random_graph, query)
        return run_bigdatalog(labeled_random_graph, query,
                              max_facts=BIGDATALOG_FACT_BUDGET)

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.add(measured)
    if system == "Dist-mu-RA":
        assert measured.succeeded
