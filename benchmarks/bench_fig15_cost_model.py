"""Fig. 15 and §V-E.6 — evaluation of the cost model.

For one C6 Yago query, every equivalent logical plan is costed by the
estimator and actually executed; the paper's claims to reproduce are:

* the plan selected by the cost model sits in the top fraction of the
  actual-execution-time ranking (the paper reports top 14.7 % on average),
* it is substantially faster than the average equivalent plan,
* it is close to (but usually not exactly) the best plan.
"""

from __future__ import annotations

import time

from repro.algebra import evaluate, schemas_of_database
from repro.bench import series_table
from repro.cost import rank_plans
from repro.query import parse_query, translate_query
from repro.rewriter import explore_plans

FIGURE_TITLE = "Fig. 15 - estimated cost vs actual evaluation time of all plans"

QUERY_TEXT = "?x,?y <- ?x isLocatedIn+/dealsWith+ ?y"     # Q8, class C6
MAX_PLANS = 32


def _plan_space_measurements(graph):
    database = graph.relations()
    term = translate_query(parse_query(QUERY_TEXT))
    plans = explore_plans(term, schemas_of_database(database), max_plans=MAX_PLANS)
    ranked = rank_plans(plans, database=database)
    measurements = []
    for position, plan in enumerate(ranked):
        started = time.perf_counter()
        evaluate(plan.term, database)
        elapsed = time.perf_counter() - started
        measurements.append((position, plan.cost, elapsed))
    return measurements


def test_cost_model_ranking(benchmark, figure_report, yago_graph):
    measurements = benchmark.pedantic(
        lambda: _plan_space_measurements(yago_graph), rounds=1, iterations=1)
    times = [elapsed for _, _, elapsed in measurements]
    selected_time = times[0]
    best_time = min(times)
    average_time = sum(times) / len(times)
    position = sorted(times).index(selected_time) / max(1, len(times) - 1)
    figure_report.add_section(series_table(
        [(rank, {"estimated_cost": cost, "execution_time": elapsed})
         for rank, cost, elapsed in measurements],
        "Fig. 15 - plans ranked by estimated cost",
        x_label="cost rank"))
    figure_report.add_section(
        "Cost-model summary (paper: selected plan within top 14.7% of\n"
        "execution times, 58% faster than the average plan, 20% slower than\n"
        "the best plan):\n"
        f"  plans explored:               {len(times)}\n"
        f"  selected plan time:           {selected_time:.3f}s\n"
        f"  best plan time:               {best_time:.3f}s\n"
        f"  average plan time:            {average_time:.3f}s\n"
        f"  selected position (fraction): {position:.2%}\n"
        f"  speedup vs average plan:      {average_time / selected_time:.2f}x\n"
        f"  slowdown vs best plan:        {selected_time / best_time:.2f}x")
    # The selected plan must beat the average of the equivalent plans and
    # sit in the upper half of the ranking — the qualitative claim of §V-E.6.
    assert selected_time <= average_time
    assert position <= 0.5
