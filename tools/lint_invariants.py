#!/usr/bin/env python3
"""Repo-invariant lints the generic linters cannot express.

Three invariants keep the concurrency and immutability story of the
codebase honest; each maps to the runtime sanitizer check that would
catch its violation only when the bad path actually runs:

INV001  ``Relation`` internals (``_columns`` / ``_rows``) are assigned
        only inside ``src/repro/data/`` (the owning package) and
        ``src/repro/check/`` (the sanitizer's guard).  Everywhere else a
        relation is an immutable value; mutating it would tear snapshot
        isolation (the runtime counterpart is the sanitizer's
        post-freeze mutation guard).
INV002  No bare ``threading.Lock()`` / ``threading.RLock()`` outside
        ``src/repro/check/sanitizer.py``.  Locks must be created with
        ``ordered_lock(name)`` / ``ordered_rlock(name)`` so the
        sanitizer's lock-order tracker sees every acquisition site.
INV003  No lambdas (or other inline function expressions) handed to the
        executor submission points (``map_tasks`` / ``submit``) inside
        ``src/repro/distributed/``.  Task functions must be module-level
        so the process backend can pickle them instead of silently
        degrading to in-process execution.

Usage::

    python tools/lint_invariants.py src/ [more paths...]

Exits 0 when clean, 1 with one ``path:line: [INVxxx] message`` per
finding otherwise.  Stdlib only; runs as a CI step next to ruff.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Attributes of Relation that only its owning package may assign.
RELATION_INTERNALS = frozenset({"_columns", "_rows"})
#: Executor entry points whose task argument must be picklable.
TASK_ENTRY_POINTS = frozenset({"map_tasks", "submit"})


def _is_relation_dir(path: Path) -> bool:
    parts = path.parts
    return "data" in parts and "repro" in parts


def _is_sanitizer(path: Path) -> bool:
    return path.name == "sanitizer.py" and "check" in path.parts


def _is_check_dir(path: Path) -> bool:
    return "check" in path.parts and "repro" in path.parts


def _is_distributed_dir(path: Path) -> bool:
    return "distributed" in path.parts and "repro" in path.parts


class _Findings:
    def __init__(self) -> None:
        self.items: list[tuple[Path, int, str, str]] = []

    def add(self, path: Path, line: int, code: str, message: str) -> None:
        self.items.append((path, line, code, message))


def _check_relation_internals(tree: ast.AST, path: Path,
                              findings: _Findings) -> None:
    """INV001: assignments to Relation internals outside data/ and check/."""
    if _is_relation_dir(path) or _is_check_dir(path):
        return

    def flag(target: ast.expr) -> None:
        if isinstance(target, ast.Attribute) \
                and target.attr in RELATION_INTERNALS:
            findings.add(path, target.lineno, "INV001",
                         f"assignment to relation internal "
                         f"{target.attr!r} outside src/repro/data/ "
                         f"(relations are immutable values elsewhere)")

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target] if isinstance(node, ast.AugAssign)
                       else node.targets)
            for target in targets:
                flag(target)
        elif isinstance(node, ast.Call):
            # object.__setattr__(relation, "_rows", ...) is the same
            # mutation wearing a trench coat.
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr == "__setattr__" and len(node.args) >= 2 \
                    and isinstance(node.args[1], ast.Constant) \
                    and node.args[1].value in RELATION_INTERNALS:
                findings.add(path, node.lineno, "INV001",
                             f"__setattr__ of relation internal "
                             f"{node.args[1].value!r} outside "
                             f"src/repro/data/")


def _check_bare_locks(tree: ast.AST, path: Path,
                      findings: _Findings) -> None:
    """INV002: only the sanitizer module constructs raw threading locks."""
    if _is_sanitizer(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "threading" \
                and func.attr in ("Lock", "RLock"):
            name = f"threading.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in ("Lock", "RLock"):
            name = func.id
        if name is not None:
            findings.add(path, node.lineno, "INV002",
                         f"bare {name}() — use ordered_lock(name) / "
                         f"ordered_rlock(name) from repro.check.sanitizer "
                         f"so the lock-order tracker covers it")


def _check_task_functions(tree: ast.AST, path: Path,
                          findings: _Findings) -> None:
    """INV003: executor task payloads must not be inline lambdas."""
    if not _is_distributed_dir(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in TASK_ENTRY_POINTS):
            continue
        for arg in node.args[:1]:
            if isinstance(arg, ast.Lambda):
                findings.add(path, arg.lineno, "INV003",
                             f"lambda passed to {func.attr}(): task "
                             f"functions must be module-level so the "
                             f"process backend can pickle them")


def lint_file(path: Path, findings: _Findings) -> None:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as error:
        findings.add(path, error.lineno or 0, "INV000",
                     f"syntax error: {error.msg}")
        return
    _check_relation_internals(tree, path, findings)
    _check_bare_locks(tree, path, findings)
    _check_task_functions(tree, path, findings)


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src")]
    findings = _Findings()
    count = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            count += 1
            lint_file(file, findings)
    for path, line, code, message in findings.items:
        print(f"{path}:{line}: [{code}] {message}")
    if findings.items:
        print(f"{len(findings.items)} invariant violation(s) "
              f"in {count} file(s)", file=sys.stderr)
        return 1
    print(f"ok: {count} file(s), 0 invariant violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
