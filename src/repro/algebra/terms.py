"""Abstract syntax of mu-RA terms.

The grammar (Fig. 1 of the paper) is::

    phi ::= X                     relation variable
          | |c -> v|              constant relation
          | phi1 U phi2           union
          | phi1 |><| phi2        natural join
          | phi1 |> phi2          antijoin
          | sigma_f(phi)          filtering
          | rho_a^b(phi)          renaming
          | pi~_a(phi)            anti-projection (column dropping)
          | mu(X = Psi)           fixpoint

Terms are immutable, hashable dataclasses.  Every node exposes
:meth:`Term.children` and :meth:`Term.with_children` so that generic
traversals (rewriting, free-variable computation, printing) can be written
once in :mod:`repro.algebra.visitors`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..data.predicates import Predicate
from ..data.relation import Relation
from ..errors import AlgebraError


class Term:
    """Base class of every mu-RA term."""

    def children(self) -> tuple["Term", ...]:
        """Return the direct sub-terms of this node."""
        raise NotImplementedError

    def with_children(self, children: tuple["Term", ...]) -> "Term":
        """Return a copy of this node with its sub-terms replaced."""
        raise NotImplementedError

    # Operator sugar ----------------------------------------------------------

    def union(self, other: "Term") -> "Union":
        return Union(self, other)

    def join(self, other: "Term") -> "Join":
        return Join(self, other)

    def antijoin(self, other: "Term") -> "Antijoin":
        return Antijoin(self, other)

    def filter(self, predicate: Predicate) -> "Filter":
        return Filter(predicate, self)

    def rename(self, old: str, new: str) -> "Rename":
        return Rename(old, new, self)

    def antiproject(self, columns: Iterable[str] | str) -> "AntiProject":
        return AntiProject(_as_columns(columns), self)

    def __str__(self) -> str:  # pragma: no cover - exercised via printer tests
        from .printer import term_to_string

        return term_to_string(self)


def _as_columns(columns: Iterable[str] | str) -> tuple[str, ...]:
    if isinstance(columns, str):
        return (columns,)
    return tuple(columns)


@dataclass(frozen=True)
class RelVar(Term):
    """A relation variable: either a database relation or a recursive variable."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise AlgebraError("relation variable names must be non-empty")

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: tuple[Term, ...]) -> Term:
        if children:
            raise AlgebraError("RelVar has no children")
        return self


@dataclass(frozen=True)
class Literal(Term):
    """A constant relation embedded directly in the term (``|c -> v|``)."""

    relation: Relation
    name: str = "lit"

    def children(self) -> tuple[Term, ...]:
        return ()

    def with_children(self, children: tuple[Term, ...]) -> Term:
        if children:
            raise AlgebraError("Literal has no children")
        return self


@dataclass(frozen=True)
class Union(Term):
    """Set union of two terms (duplicate-eliminating)."""

    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Term, ...]) -> Term:
        left, right = children
        return Union(left, right)


@dataclass(frozen=True)
class Join(Term):
    """Natural join of two terms on their common columns."""

    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Term, ...]) -> Term:
        left, right = children
        return Join(left, right)


@dataclass(frozen=True)
class Antijoin(Term):
    """Antijoin: tuples of the left with no natural-join partner on the right."""

    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Term, ...]) -> Term:
        left, right = children
        return Antijoin(left, right)


@dataclass(frozen=True)
class Filter(Term):
    """Filtering (sigma): keep tuples satisfying a predicate."""

    predicate: Predicate
    child: Term

    def children(self) -> tuple[Term, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Term, ...]) -> Term:
        (child,) = children
        return Filter(self.predicate, child)


@dataclass(frozen=True)
class Rename(Term):
    """Renaming (rho): rename column ``old`` into ``new``."""

    old: str
    new: str
    child: Term

    def children(self) -> tuple[Term, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Term, ...]) -> Term:
        (child,) = children
        return Rename(self.old, self.new, child)


@dataclass(frozen=True)
class AntiProject(Term):
    """Anti-projection (pi-tilde): drop the given columns."""

    columns: tuple[str, ...]
    child: Term

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        if not self.columns:
            raise AlgebraError("AntiProject needs at least one column to drop")

    def children(self) -> tuple[Term, ...]:
        return (self.child,)

    def with_children(self, children: tuple[Term, ...]) -> Term:
        (child,) = children
        return AntiProject(self.columns, child)


@dataclass(frozen=True)
class Fixpoint(Term):
    """The recursive operator ``mu(X = body)``.

    ``var`` is the name of the recursive variable bound inside ``body``.
    """

    var: str
    body: Term
    # A purely informational tag used by the rewriter to remember whether the
    # fixpoint appends to the right or to the left (useful when printing and
    # when reasoning about reversals in tests).  It has no semantic effect.
    direction: str = field(default="left-to-right", compare=False)

    def __post_init__(self) -> None:
        if not self.var:
            raise AlgebraError("fixpoint variables must be non-empty strings")

    def children(self) -> tuple[Term, ...]:
        return (self.body,)

    def with_children(self, children: tuple[Term, ...]) -> Term:
        (body,) = children
        return Fixpoint(self.var, body, direction=self.direction)


#: All concrete node types, useful for completeness checks in tests.
NODE_TYPES = (
    RelVar,
    Literal,
    Union,
    Join,
    Antijoin,
    Filter,
    Rename,
    AntiProject,
    Fixpoint,
)
