"""Centralized (single-node) evaluation of mu-RA terms.

This is the reference evaluator: every other execution strategy (the
distributed plans, the per-worker local engine, the baselines) is tested
against it.  Fixpoints are evaluated with the semi-naive (differential)
method of Algorithm 1 of the paper::

    X = R
    new = R
    while new != empty:
        new = phi(new) \\ X
        X = X U new
    return X

which is correct for Fcond-satisfying terms thanks to Proposition 1
(``Psi(S) = Psi(empty) U union_x Psi({x})``).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..data import storage
from ..data.columnar import snapshot_dictionary
from ..data.relation import Relation
from ..data.storage import DeltaAccumulator
from ..errors import EvaluationError
from ..obs import tracing
from .conditions import decompose
from .kernels import KernelProgramCache, try_columnar_fixpoint
from .terms import (AntiProject, Antijoin, Filter, Fixpoint, Join, Literal,
                    Rename, RelVar, Term, Union)
from .variables import is_constant_in

#: Safety bound on fixpoint iterations; graph reachability converges in at
#: most |nodes| steps, so hitting this bound indicates a malformed term.
DEFAULT_MAX_ITERATIONS = 1_000_000


@dataclass
class EvaluationStats:
    """Counters filled in by the evaluator, used by tests and benchmarks."""

    fixpoint_iterations: int = 0
    fixpoints_evaluated: int = 0
    tuples_produced: int = 0
    per_fixpoint_iterations: list[int] = field(default_factory=list)
    #: Hash-index activity of joins/antijoins against recursion-constant
    #: operands (see :meth:`Evaluator._eval_join`): a build hashes the
    #: constant relation, a reuse probes a table built on an earlier
    #: iteration.  Benchmarks surface these through ClusterMetrics.
    index_builds: int = 0
    index_reuses: int = 0

    def record_fixpoint(self, iterations: int, result_size: int) -> None:
        self.fixpoints_evaluated += 1
        self.fixpoint_iterations += iterations
        self.tuples_produced += result_size
        self.per_fixpoint_iterations.append(iterations)


class Evaluator:
    """Evaluate mu-RA terms against a database of named relations."""

    def __init__(self, database: Mapping[str, Relation],
                 max_iterations: int = DEFAULT_MAX_ITERATIONS,
                 stats: EvaluationStats | None = None,
                 kernel_cache: KernelProgramCache | None = None):
        # The shared per-snapshot value dictionary must be captured before
        # the defensive dict() copy below discards the snapshot type.
        self._dictionary = snapshot_dictionary(database)
        self._kernel_cache = kernel_cache
        self.database = dict(database)
        self.max_iterations = max_iterations
        self.stats = stats if stats is not None else EvaluationStats()
        # Recursion-constant subterms evaluate to the same relation on
        # every fixpoint iteration (the database is a snapshot); caching
        # them keys the join-side hash indexes to one relation object, so
        # the index built on iteration 1 is probed on every later one.
        self._constant_cache: dict[Term, Relation] = {}

    def evaluate(self, term: Term, env: Mapping[str, Relation] | None = None) -> Relation:
        """Evaluate ``term``; ``env`` binds recursive variables to relations."""
        return self._eval(term, dict(env or {}))

    # -- Dispatch -------------------------------------------------------------

    def _eval(self, term: Term, env: dict[str, Relation]) -> Relation:
        if isinstance(term, RelVar):
            return self._eval_variable(term, env)
        if isinstance(term, Literal):
            return term.relation
        if isinstance(term, Union):
            return self._eval(term.left, env).union(self._eval(term.right, env))
        if isinstance(term, Join):
            return self._eval_join(term, env)
        if isinstance(term, Antijoin):
            return self._eval_antijoin(term, env)
        if isinstance(term, Filter):
            return self._eval(term.child, env).filter(term.predicate)
        if isinstance(term, Rename):
            return self._eval(term.child, env).rename(term.old, term.new)
        if isinstance(term, AntiProject):
            return self._eval(term.child, env).antiproject(term.columns)
        if isinstance(term, Fixpoint):
            return self._eval_fixpoint(term, env)
        raise EvaluationError(f"cannot evaluate term of type {type(term).__name__}")

    def _eval_variable(self, term: RelVar, env: dict[str, Relation]) -> Relation:
        if term.name in env:
            return env[term.name]
        if term.name in self.database:
            return self.database[term.name]
        raise EvaluationError(
            f"unknown relation {term.name!r}; known relations: "
            f"{sorted(self.database)[:10]}..."
        )

    # -- Joins against recursion-constant operands ----------------------------

    def _eval_join(self, term: Join, env: dict[str, Relation]) -> Relation:
        """Evaluate a join; inside a recursion, index the constant side.

        When exactly one operand is constant in every bound recursive
        variable, that operand has the same value on every iteration: it is
        evaluated once (term-keyed cache) and its hash index on the common
        columns is warmed, so every later iteration reduces to probing with
        the delta.
        """
        sides = self._constant_sides(term, env)
        if sides is None:
            return self._eval(term.left, env).natural_join(
                self._eval(term.right, env))
        constant_term, variable_term = sides
        constant = self.evaluate_constant(constant_term)
        variable = self._eval(variable_term, env)
        common = tuple(c for c in variable.columns if c in constant.columns)
        if common:
            self._warm_index(constant, common)
        return variable.natural_join(constant)

    def _eval_antijoin(self, term: Antijoin, env: dict[str, Relation]) -> Relation:
        left = self._eval(term.left, env)
        if env and all(is_constant_in(term.right, var) for var in env) \
                and not all(is_constant_in(term.left, var) for var in env):
            right = self.evaluate_constant(term.right)
            common = tuple(c for c in left.columns if c in right.columns)
            if common:
                self._warm_index(right, common)
            return left.antijoin(right)
        return left.antijoin(self._eval(term.right, env))

    def _constant_sides(self, term: Join,
                        env: dict[str, Relation]) -> tuple[Term, Term] | None:
        """Return ``(constant_side, variable_side)`` or None when ambiguous."""
        if not env:
            return None
        left_constant = all(is_constant_in(term.left, var) for var in env)
        right_constant = all(is_constant_in(term.right, var) for var in env)
        if left_constant == right_constant:
            return None
        if left_constant:
            return term.left, term.right
        return term.right, term.left

    def evaluate_constant(self, term: Term) -> Relation:
        """Evaluate a recursion-constant term, memoized on the evaluator.

        Sound because the evaluator's database is a snapshot: a term with no
        free recursive variables has the same value on every call.  The
        distributed plans use this so the relation they broadcast (and
        index) on iteration *n* is the same object as on iteration 1.
        """
        cached = self._constant_cache.get(term)
        if cached is None:
            cached = self._eval(term, {})
            self._constant_cache[term] = cached
        return cached

    def _warm_index(self, relation: Relation, common: tuple[str, ...]) -> None:
        if not storage.caching_enabled():
            return
        if relation.has_index(common):
            self.stats.index_reuses += 1
        else:
            self.stats.index_builds += 1
            relation.index_on(common)

    # -- Fixpoint -------------------------------------------------------------

    def _eval_fixpoint(self, term: Fixpoint, env: dict[str, Relation]) -> Relation:
        decomposition = decompose(term)
        constant = self._eval(decomposition.constant_part, env)
        if decomposition.variable_part is None:
            self.stats.record_fixpoint(iterations=0, result_size=len(constant))
            return constant
        variable_part = decomposition.variable_part
        kernel_result = self._try_kernels(term, variable_part, constant, env)
        if kernel_result is not None:
            self.stats.index_builds += kernel_result.index_builds
            self.stats.index_reuses += kernel_result.index_reuses
            self.stats.record_fixpoint(iterations=kernel_result.iterations,
                                       result_size=len(kernel_result.relation))
            return kernel_result.relation
        # One environment for the whole loop (only the delta binding
        # changes per iteration) and one schema check (operator output
        # schemas depend on input schemas only, which are fixed).
        inner_env = dict(env)
        accumulator = DeltaAccumulator(constant)
        new = constant
        iterations = 0
        schema_checked = False
        # Hoisted once: when tracing is off the loop pays one local bool
        # check per iteration (bench_obs_overhead.py holds this to <= 5%).
        traced = tracing.tracing_enabled()
        while new:
            iterations += 1
            if iterations > self.max_iterations:
                raise EvaluationError(
                    f"fixpoint on {term.var!r} did not converge after "
                    f"{self.max_iterations} iterations"
                )
            inner_env[term.var] = new
            iteration_span = tracing.span(
                "fixpoint.iteration", var=term.var, iteration=iterations,
                delta=len(new)) if traced else tracing.NOOP_SPAN
            with iteration_span:
                produced = self._eval(variable_part, inner_env)
                if not schema_checked:
                    if produced.columns != constant.columns:
                        raise EvaluationError(
                            f"fixpoint on {term.var!r}: the variable part "
                            f"produced schema {produced.columns} but the "
                            f"constant part has schema {constant.columns}"
                        )
                    schema_checked = True
                new = accumulator.absorb(produced)
                if traced:
                    iteration_span.set_attribute("produced", len(produced))
                    iteration_span.set_attribute("total", len(accumulator))
        result = accumulator.relation()
        self.stats.record_fixpoint(iterations=iterations, result_size=len(result))
        return result

    def _try_kernels(self, term: Fixpoint, variable_part: Term,
                     constant: Relation, env: dict[str, Relation]):
        """Run the fixpoint on the columnar kernels; None means row path.

        Recursion-constant subterms that mention *outer* fixpoint variables
        must resolve under the enclosing environment — and must not be
        memoized, their value changes per outer iteration.  Pure constants
        go through the term-keyed cache shared with the distributed plans.
        """
        if env:
            def resolve(t: Term) -> Relation:
                return self._eval(t, env)
        else:
            resolve = self.evaluate_constant
        return try_columnar_fixpoint(
            self._kernel_cache, term.var, variable_part, constant,
            self._dictionary, resolve, self.max_iterations,
            f"fixpoint on {term.var!r} did not converge after "
            f"{self.max_iterations} iterations")


def evaluate(term: Term, database: Mapping[str, Relation],
             env: Mapping[str, Relation] | None = None,
             stats: EvaluationStats | None = None,
             max_iterations: int = DEFAULT_MAX_ITERATIONS) -> Relation:
    """Convenience wrapper: evaluate one term against a database."""
    evaluator = Evaluator(database, max_iterations=max_iterations, stats=stats)
    return evaluator.evaluate(term, env=env)


def naive_fixpoint(term: Fixpoint, database: Mapping[str, Relation],
                   env: Mapping[str, Relation] | None = None,
                   max_iterations: int = DEFAULT_MAX_ITERATIONS) -> Relation:
    """Evaluate a fixpoint with the *naive* method (re-applying phi to the
    whole accumulated result each round).

    Exists for differential testing against the semi-naive evaluator and as
    the reference implementation of the fixpoint semantics
    ``mu(X = Psi) = Psi^inf(empty)``.
    """
    evaluator = Evaluator(database, max_iterations=max_iterations)
    decomposition = decompose(term)
    env = dict(env or {})
    current = Relation.empty(
        evaluator.evaluate(decomposition.constant_part, env=env).columns)
    for _ in range(max_iterations):
        inner_env = dict(env)
        inner_env[term.var] = current
        next_value = evaluator.evaluate(term.body, env=inner_env)
        if next_value == current:
            return current
        current = next_value
    raise EvaluationError(
        f"naive fixpoint on {term.var!r} did not converge after "
        f"{max_iterations} iterations"
    )
