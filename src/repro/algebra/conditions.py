"""Fixpoint conditions (Fcond) and decomposition of fixpoint terms.

Definition 1 of the paper requires a fixpoint ``mu(X = Psi)`` to be:

* **positive** — for every antijoin sub-term ``phi1 |> phi2`` of ``Psi``,
  ``phi2`` is constant in ``X``;
* **linear** — for every join or antijoin sub-term, at least one operand is
  constant in ``X``;
* **non mutually recursive** — ``X`` does not occur free in the body of a
  nested fixpoint binding another variable.

Proposition 2 then guarantees such a fixpoint can be written as
``mu(X = R U phi)`` where ``R`` (the *constant part*) is constant in ``X``
and ``phi`` (the *variable part*) satisfies ``phi(empty) = empty``.  The
:func:`decompose` function computes that form; it is the basis of the
semi-naive evaluation, of the fixpoint-splitting parallelisation
(Proposition 3) and of the stable-column partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FixpointConditionError
from .terms import Antijoin, Fixpoint, Join, Term, Union
from .variables import is_constant_in
from .visitors import walk


def is_positive(fixpoint: Fixpoint) -> bool:
    """Check the positivity condition of Definition 1."""
    var = fixpoint.var
    for node in walk(fixpoint.body):
        if isinstance(node, Antijoin) and not is_constant_in(node.right, var):
            return False
    return True


def is_linear(fixpoint: Fixpoint) -> bool:
    """Check the linearity condition of Definition 1."""
    var = fixpoint.var
    for node in walk(fixpoint.body):
        if isinstance(node, (Join, Antijoin)):
            left_constant = is_constant_in(node.left, var)
            right_constant = is_constant_in(node.right, var)
            if not (left_constant or right_constant):
                return False
    return True


def is_non_mutually_recursive(fixpoint: Fixpoint) -> bool:
    """Check the non-mutual-recursion condition of Definition 1."""
    var = fixpoint.var
    for node in walk(fixpoint.body):
        if isinstance(node, Fixpoint) and node.var != var:
            if not is_constant_in(node.body, var):
                return False
    return True


def satisfies_fcond(fixpoint: Fixpoint) -> bool:
    """True when the fixpoint satisfies all three Fcond conditions."""
    return (is_positive(fixpoint)
            and is_linear(fixpoint)
            and is_non_mutually_recursive(fixpoint))


def check_fcond(fixpoint: Fixpoint) -> None:
    """Raise :class:`FixpointConditionError` describing the violated condition."""
    if not is_positive(fixpoint):
        raise FixpointConditionError(
            f"fixpoint on {fixpoint.var!r} is not positive: the recursive "
            f"variable occurs on the right of an antijoin"
        )
    if not is_linear(fixpoint):
        raise FixpointConditionError(
            f"fixpoint on {fixpoint.var!r} is not linear: the recursive "
            f"variable occurs on both sides of a join or antijoin"
        )
    if not is_non_mutually_recursive(fixpoint):
        raise FixpointConditionError(
            f"fixpoint on {fixpoint.var!r} is mutually recursive with a "
            f"nested fixpoint"
        )


def flatten_union(term: Term) -> list[Term]:
    """Flatten a tree of unions into the list of its non-union branches."""
    if isinstance(term, Union):
        return flatten_union(term.left) + flatten_union(term.right)
    return [term]


def union_of(branches: list[Term]) -> Term:
    """Rebuild a (left-leaning) union term from a non-empty branch list."""
    if not branches:
        raise FixpointConditionError("cannot build a union of zero branches")
    result = branches[0]
    for branch in branches[1:]:
        result = Union(result, branch)
    return result


@dataclass(frozen=True)
class Decomposition:
    """The ``mu(X = R U phi)`` form of a fixpoint term.

    ``constant_part`` is ``R`` (never ``None``: Proposition 2 guarantees a
    constant part exists for a useful fixpoint; a fixpoint without one is
    empty and rejected).  ``variable_part`` is ``phi`` or ``None`` when the
    body has no recursive branch (the fixpoint is then just ``R``).
    """

    var: str
    constant_part: Term
    variable_part: Term | None
    constant_branches: tuple[Term, ...]
    variable_branches: tuple[Term, ...]
    direction: str = "left-to-right"

    def rebuild(self, constant_part: Term | None = None) -> Fixpoint:
        """Rebuild a fixpoint term, optionally replacing the constant part.

        This is the primitive behind fixpoint splitting: the distributed
        runtime rebuilds ``mu(X = Ri U phi)`` for every partition ``Ri`` of
        the original constant part.
        """
        constant = constant_part if constant_part is not None else self.constant_part
        branches = [constant] + list(self.variable_branches)
        return Fixpoint(self.var, union_of(branches), direction=self.direction)


def decompose(fixpoint: Fixpoint) -> Decomposition:
    """Decompose a fixpoint satisfying Fcond into constant and variable parts."""
    check_fcond(fixpoint)
    var = fixpoint.var
    branches = flatten_union(fixpoint.body)
    constant_branches = [b for b in branches if is_constant_in(b, var)]
    variable_branches = [b for b in branches if not is_constant_in(b, var)]
    if not constant_branches:
        raise FixpointConditionError(
            f"fixpoint on {var!r} has no constant part: its least fixpoint "
            f"is empty and it cannot be decomposed as mu(X = R U phi)"
        )
    constant_part = union_of(constant_branches)
    variable_part = union_of(variable_branches) if variable_branches else None
    return Decomposition(
        var=var,
        constant_part=constant_part,
        variable_part=variable_part,
        constant_branches=tuple(constant_branches),
        variable_branches=tuple(variable_branches),
        direction=fixpoint.direction,
    )
