"""Human-readable rendering of mu-RA terms.

The syntax mirrors the paper's notation as closely as plain text allows::

    mu(X = S U antiproj_m(rho_trg->m(X) |><| rho_src->m(E)))

Terms can become large after rewriting, so an indented multi-line renderer
is provided as well (used by the examples and by debugging output).
"""

from __future__ import annotations

from .terms import (AntiProject, Antijoin, Filter, Fixpoint, Join, Literal,
                    Rename, RelVar, Term, Union)


def term_to_string(term: Term) -> str:
    """Render a term on a single line."""
    if isinstance(term, RelVar):
        return term.name
    if isinstance(term, Literal):
        return f"|{term.name}:{len(term.relation)}rows|"
    if isinstance(term, Union):
        return f"({term_to_string(term.left)} U {term_to_string(term.right)})"
    if isinstance(term, Join):
        return f"({term_to_string(term.left)} |><| {term_to_string(term.right)})"
    if isinstance(term, Antijoin):
        return f"({term_to_string(term.left)} |> {term_to_string(term.right)})"
    if isinstance(term, Filter):
        return f"sigma[{term.predicate!r}]({term_to_string(term.child)})"
    if isinstance(term, Rename):
        return f"rho[{term.old}->{term.new}]({term_to_string(term.child)})"
    if isinstance(term, AntiProject):
        dropped = ",".join(term.columns)
        return f"antiproj[{dropped}]({term_to_string(term.child)})"
    if isinstance(term, Fixpoint):
        return f"mu({term.var} = {term_to_string(term.body)})"
    return f"<unknown term {type(term).__name__}>"


def term_to_indented_string(term: Term, indent: int = 0) -> str:
    """Render a term as an indented tree, one operator per line."""
    pad = "  " * indent
    if isinstance(term, RelVar):
        return f"{pad}{term.name}"
    if isinstance(term, Literal):
        return f"{pad}|{term.name}:{len(term.relation)}rows|"
    if isinstance(term, Union):
        return (f"{pad}Union\n"
                f"{term_to_indented_string(term.left, indent + 1)}\n"
                f"{term_to_indented_string(term.right, indent + 1)}")
    if isinstance(term, Join):
        return (f"{pad}Join\n"
                f"{term_to_indented_string(term.left, indent + 1)}\n"
                f"{term_to_indented_string(term.right, indent + 1)}")
    if isinstance(term, Antijoin):
        return (f"{pad}Antijoin\n"
                f"{term_to_indented_string(term.left, indent + 1)}\n"
                f"{term_to_indented_string(term.right, indent + 1)}")
    if isinstance(term, Filter):
        return (f"{pad}Filter[{term.predicate!r}]\n"
                f"{term_to_indented_string(term.child, indent + 1)}")
    if isinstance(term, Rename):
        return (f"{pad}Rename[{term.old}->{term.new}]\n"
                f"{term_to_indented_string(term.child, indent + 1)}")
    if isinstance(term, AntiProject):
        return (f"{pad}AntiProject[{','.join(term.columns)}]\n"
                f"{term_to_indented_string(term.child, indent + 1)}")
    if isinstance(term, Fixpoint):
        return (f"{pad}Fixpoint[{term.var}, {term.direction}]\n"
                f"{term_to_indented_string(term.body, indent + 1)}")
    return f"{pad}<unknown term {type(term).__name__}>"
