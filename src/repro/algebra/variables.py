"""Free variables, boundness, constancy and substitution for mu-RA terms.

These notions follow Section II of the paper:

* a relation variable ``X`` is *free* unless it appears under a binding
  fixpoint ``mu(X = ...)``,
* a term is *constant in X* when ``X`` does not occur free in it,
* substitution replaces free occurrences of a variable by another term
  (typically a :class:`~repro.algebra.terms.Literal` holding a concrete
  relation), which is how the fixpoint semantics is defined.
"""

from __future__ import annotations

from ..errors import AlgebraError
from .terms import Fixpoint, Literal, RelVar, Term


def free_variables(term: Term) -> frozenset[str]:
    """Return the names of the relation variables occurring free in ``term``."""
    if isinstance(term, RelVar):
        return frozenset({term.name})
    if isinstance(term, Literal):
        return frozenset()
    if isinstance(term, Fixpoint):
        return free_variables(term.body) - {term.var}
    names: frozenset[str] = frozenset()
    for child in term.children():
        names |= free_variables(child)
    return names


def bound_variables(term: Term) -> frozenset[str]:
    """Return the names of variables bound by a fixpoint inside ``term``."""
    bound: frozenset[str] = frozenset()
    if isinstance(term, Fixpoint):
        bound |= {term.var}
    for child in term.children():
        bound |= bound_variables(child)
    return bound


def is_constant_in(term: Term, var: str) -> bool:
    """True when ``term`` is constant in ``var`` (``var`` not free in it)."""
    return var not in free_variables(term)


def occurs(term: Term, var: str) -> bool:
    """True when ``var`` occurs free in ``term`` (the negation of constancy)."""
    return var in free_variables(term)


def substitute(term: Term, var: str, replacement: Term) -> Term:
    """Replace every free occurrence of ``var`` in ``term`` by ``replacement``.

    Substitution is capture-avoiding in the simple sense needed here: it does
    not descend below a fixpoint that re-binds ``var``.  If the replacement
    itself contains variables that would be captured by an enclosing binder,
    an :class:`~repro.errors.AlgebraError` is raised — the library never
    generates such terms, but user-built terms might.
    """
    if isinstance(term, RelVar):
        return replacement if term.name == var else term
    if isinstance(term, Literal):
        return term
    if isinstance(term, Fixpoint):
        if term.var == var:
            return term
        if var not in free_variables(term.body):
            # Nothing to substitute below this binder; leave it untouched
            # (this also avoids spurious capture errors).
            return term
        if term.var in free_variables(replacement):
            raise AlgebraError(
                f"substituting {var!r} would capture variable {term.var!r}; "
                f"rename the inner fixpoint variable first"
            )
        return Fixpoint(term.var, substitute(term.body, var, replacement),
                        direction=term.direction)
    children = tuple(substitute(child, var, replacement) for child in term.children())
    return term.with_children(children)


def rename_recursive_variable(fixpoint: Fixpoint, new_var: str) -> Fixpoint:
    """Return ``fixpoint`` with its recursive variable renamed to ``new_var``.

    Useful to avoid variable clashes when merging or nesting fixpoints.
    """
    if new_var == fixpoint.var:
        return fixpoint
    if new_var in free_variables(fixpoint.body):
        raise AlgebraError(
            f"cannot rename recursive variable to {new_var!r}: it already "
            f"occurs free in the body"
        )
    body = substitute(fixpoint.body, fixpoint.var, RelVar(new_var))
    return Fixpoint(new_var, body, direction=fixpoint.direction)


def fresh_variable(used: frozenset[str] | set[str], stem: str = "X") -> str:
    """Return a variable name based on ``stem`` that is not in ``used``."""
    if stem not in used:
        return stem
    index = 1
    while f"{stem}{index}" in used:
        index += 1
    return f"{stem}{index}"
