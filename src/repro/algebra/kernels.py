"""Operator-at-a-time execution kernels over the columnar layout.

The generic evaluators interpret the variable part of a fixpoint tuple at
a time: every iteration re-dispatches on the term tree and pays a Python
tuple comprehension per row in each join, rename and projection.  This
module compiles the variable part **once per physical plan** into a chain
of columnar kernels and runs the semi-naive loop on
:class:`~repro.data.columnar.ColumnarBatch` columns instead:

* a small **kernel planner** (:func:`compile_program`) walks the term a
  single time, binds column positions and key layouts up front, and
  rejects anything it cannot prove it runs identically to the row engine
  (the caller then falls back — the row engine stays the semantics
  reference);
* **hash joins / antijoins** probe a code -> row-positions index memoized
  on the constant side's :class:`~repro.data.columnar.ColumnarRelation`,
  then gather output columns with ``array('q', map(col.__getitem__,
  idx))`` — C-speed, no per-row tuple building;
* **rename / anti-project** are pure column-list permutations: zero
  per-row work;
* **equality filters** compare dictionary codes; only non-equality
  comparisons decode (codes do not preserve value order);
* **union** concatenates columns; duplicate elimination happens once per
  iteration in the packed-key delta accumulator, which is where set
  semantics are restored (intermediate duplicates cannot change a
  fixpoint's result, only the final membership does).

Compiled programs are cached in a :class:`KernelProgramCache` — one hangs
off every :class:`~repro.service.plan_cache.CachedPlan` (the
``kernel_program`` slot), and a process-wide default serves the layers
that execute without a plan cache (worker-local loops, ad-hoc
evaluation).  Programs hold schemas and positions only; constant
relations are re-resolved at every bind, so a cached program can never
serve stale data.
"""

from __future__ import annotations

from array import array
from collections.abc import Callable
from dataclasses import dataclass

from ..data.columnar import (ColumnarBatch, ColumnarDeltaAccumulator,
                             ValueDictionary, columnar_enabled)
from ..data.predicates import (And, ColumnEq, Compare, Eq, In, Not, Or,
                               Predicate, TruePredicate, _COMPARATORS)
from ..data.relation import Relation
from ..errors import EvaluationError
from ..obs import tracing
from ..obs.metrics import get_registry
from .terms import (AntiProject, Antijoin, Filter, Join, Rename, RelVar,
                    Term, Union)
from .variables import is_constant_in

__all__ = [
    "BoundKernel", "KernelProgram", "KernelProgramCache", "KernelRunResult",
    "bind_program", "compile_program", "default_kernel_cache",
    "try_columnar_fixpoint",
]


class KernelUnsupported(Exception):
    """The planner cannot compile this shape; the row engine must run."""


class _SchemaDrift(Exception):
    """A constant resolved to a different schema than at compile time.

    Happens when a shared program cache sees the same term against a
    database with different relation schemas (e.g. two graphs).  The
    caller recompiles against the current schemas.
    """


class _BindContext:
    """Mutable state threaded through one bind of a program."""

    __slots__ = ("dictionary", "resolve", "index_builds", "index_reuses",
                 "indexed_ops", "broadcasts", "probe_counter")

    def __init__(self, dictionary: ValueDictionary,
                 resolve: Callable[[Term], Relation]):
        self.dictionary = dictionary
        self.resolve = resolve
        self.index_builds = 0
        self.index_reuses = 0
        self.indexed_ops = 0
        self.broadcasts: list[int] = []
        #: One-cell mutable counter shared with the join step closures:
        #: each indexed join adds its input size per iteration, matching
        #: the row engine's one-probe-per-probe-row accounting at the cost
        #: of a single ``len()`` per operator call.
        self.probe_counter: list[int] = [0]

    def constant(self, term: Term, schema: tuple[str, ...]):
        """Resolve and encode a constant operand, verifying its schema."""
        relation = self.resolve(term)
        if relation.columns != schema:
            raise _SchemaDrift(
                f"constant schema drifted from {schema} to {relation.columns}")
        return relation, relation.columnar(self.dictionary)


@dataclass
class BoundKernel:
    """A program bound to one execution's constants and dictionary."""

    step: Callable[[ColumnarBatch], ColumnarBatch]
    out_schema: tuple[str, ...]
    index_builds: int
    index_reuses: int
    indexed_ops: int
    probe_counter: list[int]
    #: Sizes of the constant relations bound into join/antijoin kernels;
    #: the Pgld driver records one broadcast per entry per iteration to
    #: keep its communication accounting identical to the row path.
    broadcast_sizes: tuple[int, ...]


class KernelProgram:
    """The compiled (schema-level) kernel chain of one variable part.

    Holds column positions and key layouts only — binding resolves the
    constant operands, encodes them (memoized on the relation) and builds
    or reuses their key indexes (memoized on the encoding).
    """

    __slots__ = ("out_schema", "_bind")

    def __init__(self, out_schema: tuple[str, ...],
                 bind: Callable[[_BindContext],
                                Callable[[ColumnarBatch], ColumnarBatch]]):
        self.out_schema = out_schema
        self._bind = bind

    def bind(self, dictionary: ValueDictionary,
             resolve: Callable[[Term], Relation]) -> BoundKernel:
        ctx = _BindContext(dictionary, resolve)
        step = self._bind(ctx)
        return BoundKernel(step=step, out_schema=self.out_schema,
                           index_builds=ctx.index_builds,
                           index_reuses=ctx.index_reuses,
                           indexed_ops=ctx.indexed_ops,
                           probe_counter=ctx.probe_counter,
                           broadcast_sizes=tuple(ctx.broadcasts))


# -- The kernel planner ------------------------------------------------------


def compile_program(var: str, variable_part: Term,
                    input_schema: tuple[str, ...],
                    resolve: Callable[[Term], Relation]) -> KernelProgram:
    """Compile the variable part of ``mu(var = R U phi)`` into kernels.

    ``input_schema`` is the fixpoint's (seed) schema — the schema every
    delta batch carries.  ``resolve`` evaluates recursion-constant
    subterms; it is only consulted for their *schemas* here (positions
    must be bound up front), the relations themselves are re-resolved at
    every bind.  Raises :class:`KernelUnsupported` for shapes the kernels
    do not cover.
    """
    if not input_schema:
        raise KernelUnsupported("zero-width fixpoint schema")
    out_schema, bind = _compile(variable_part, var, input_schema, resolve)
    return KernelProgram(out_schema, bind)


def _compile(term: Term, var: str, input_schema: tuple[str, ...],
             resolve: Callable[[Term], Relation]):
    """Return ``(out_schema, bind)`` for one node of the variable part."""
    if isinstance(term, RelVar) and term.name == var:
        def bind_input(ctx):
            return lambda batch: batch
        return input_schema, bind_input
    if is_constant_in(term, var):
        return _compile_constant(term, resolve)
    if isinstance(term, Join):
        return _compile_join(term, var, input_schema, resolve)
    if isinstance(term, Antijoin):
        return _compile_antijoin(term, var, input_schema, resolve)
    if isinstance(term, Filter):
        return _compile_filter(term, var, input_schema, resolve)
    if isinstance(term, Rename):
        return _compile_rename(term, var, input_schema, resolve)
    if isinstance(term, AntiProject):
        return _compile_antiproject(term, var, input_schema, resolve)
    if isinstance(term, Union):
        return _compile_union(term, var, input_schema, resolve)
    # Non-constant nested fixpoints (mutual recursion) and unknown node
    # types: the row engine owns the error reporting.
    raise KernelUnsupported(f"unsupported node {type(term).__name__}")


def _compile_constant(term: Term, resolve):
    schema = resolve(term).columns
    if not schema:
        raise KernelUnsupported("zero-width constant operand")

    def bind(ctx):
        _, encoded = ctx.constant(term, schema)
        batch = encoded.batch()
        return lambda _batch: batch
    return schema, bind


def _compile_join(term: Join, var: str, input_schema, resolve,
                  drop: frozenset = frozenset()):
    left_constant = is_constant_in(term.left, var)
    right_constant = is_constant_in(term.right, var)
    if left_constant == right_constant:
        # Both variable would violate Fcond linearity; both constant is
        # handled by the constant case before dispatch reaches here.
        raise KernelUnsupported("join without a unique constant side")
    constant_term = term.left if left_constant else term.right
    variable_term = term.right if left_constant else term.left
    var_schema, var_bind = _compile(variable_term, var, input_schema, resolve)
    const_schema = resolve(constant_term).columns
    common = tuple(c for c in var_schema if c in const_schema)
    if not common:
        # Cartesian product: rare inside recursions, row engine handles it.
        raise KernelUnsupported("join with no common columns")
    out_all = tuple(sorted(set(var_schema) | set(const_schema)))
    if drop - set(out_all):
        raise KernelUnsupported("anti-projected column missing from join")
    out_schema = tuple(c for c in out_all if c not in drop)
    if not out_schema:
        raise KernelUnsupported("join output fully projected away")
    var_position = {c: i for i, c in enumerate(var_schema)}
    const_position = {c: i for i, c in enumerate(const_schema)}
    probe_positions = tuple(var_position[c] for c in common)
    build_positions = tuple(const_position[c] for c in common)
    # Project pushdown happens here: only the surviving output columns are
    # gathered, so an anti-project above this join costs nothing per row.
    gather = tuple((0, var_position[c]) if c in var_position
                   else (1, const_position[c]) for c in out_schema)

    def bind(ctx):
        inner = var_bind(ctx)
        relation, encoded = ctx.constant(constant_term, const_schema)
        ctx.indexed_ops += 1
        ctx.broadcasts.append(len(relation))
        if encoded.has_index(build_positions):
            ctx.index_reuses += 1
        else:
            ctx.index_builds += 1
        index = encoded.index_on(build_positions)
        const_arrays = encoded.arrays
        get = index.get
        probe_counter = ctx.probe_counter
        single = probe_positions[0] if len(probe_positions) == 1 else None

        def step(batch):
            batch = inner(batch)
            arrays = batch.arrays
            probe_counter[0] += len(arrays[probe_positions[0]])
            # One C-speed ``map`` fetches every bucket, then two list
            # comprehensions expand the matches — measurably faster than
            # an explicit append loop on large deltas.
            if single is not None:
                buckets = list(map(get, arrays[single]))
            else:
                buckets = list(map(get,
                                   zip(*(arrays[p] for p in probe_positions))))
            probe_rows = [i for i, bucket in enumerate(buckets)
                          if bucket is not None for _ in bucket]
            build_rows = [b for bucket in buckets
                          if bucket is not None for b in bucket]
            out_arrays = [
                array("q", map((arrays[pos] if side == 0
                                else const_arrays[pos]).__getitem__,
                               probe_rows if side == 0 else build_rows))
                for side, pos in gather]
            return ColumnarBatch(out_schema, out_arrays)
        return step
    return out_schema, bind


def _compile_antijoin(term: Antijoin, var: str, input_schema, resolve):
    if not is_constant_in(term.right, var):
        # Positivity violation; decompose() rejects it before we ever run.
        raise KernelUnsupported("antijoin with a recursive right side")
    var_schema, var_bind = _compile(term.left, var, input_schema, resolve)
    const_schema = resolve(term.right).columns
    common = tuple(c for c in var_schema if c in const_schema)
    var_position = {c: i for i, c in enumerate(var_schema)}

    if not common:
        # No common column: any tuple of the right side matches, so the
        # antijoin is the left side iff the right side is empty.
        def bind_disjoint(ctx):
            inner = var_bind(ctx)
            relation, _ = ctx.constant(term.right, const_schema)
            if not relation:
                return inner
            empty = ColumnarBatch(var_schema, [array("q") for _ in var_schema])

            def step(batch):
                inner(batch)
                return empty
            return step
        return var_schema, bind_disjoint

    const_position = {c: i for i, c in enumerate(const_schema)}
    probe_positions = tuple(var_position[c] for c in common)
    build_positions = tuple(const_position[c] for c in common)

    def bind(ctx):
        inner = var_bind(ctx)
        relation, encoded = ctx.constant(term.right, const_schema)
        ctx.indexed_ops += 1
        ctx.broadcasts.append(len(relation))
        if encoded.has_index(build_positions):
            ctx.index_reuses += 1
        else:
            ctx.index_builds += 1
        index = encoded.index_on(build_positions)
        single = probe_positions[0] if len(probe_positions) == 1 else None

        def step(batch):
            batch = inner(batch)
            arrays = batch.arrays
            if single is not None:
                column = arrays[single]
                keep = [i for i, code in enumerate(column)
                        if code not in index]
            else:
                key_columns = [arrays[p] for p in probe_positions]
                keep = [i for i, key in enumerate(zip(*key_columns))
                        if key not in index]
            if len(keep) == len(batch):
                return batch
            return ColumnarBatch(var_schema, [
                array("q", map(column.__getitem__, keep))
                for column in arrays])
        return step
    return var_schema, bind


def _compile_filter(term: Filter, var: str, input_schema, resolve):
    child_schema, child_bind = _compile(term.child, var, input_schema, resolve)
    predicate = term.predicate
    missing = predicate.columns() - set(child_schema)
    if missing:
        raise KernelUnsupported("predicate references missing columns")

    def bind(ctx):
        inner = child_bind(ctx)
        check = _bind_code_check(predicate, child_schema, ctx.dictionary)
        if check is None:  # TruePredicate
            return inner
        fast = _bind_eq_scan(predicate, child_schema, ctx.dictionary)

        def step(batch):
            batch = inner(batch)
            arrays = batch.arrays
            if fast is not None:
                position, code = fast
                column = arrays[position]
                keep = [i for i, c in enumerate(column) if c == code]
            else:
                keep = [i for i, row in enumerate(zip(*arrays))
                        if check(row)]
            if len(keep) == len(batch):
                return batch
            return ColumnarBatch(child_schema, [
                array("q", map(column.__getitem__, keep))
                for column in arrays])
        return step
    return child_schema, bind


def _bind_eq_scan(predicate: Predicate, schema, dictionary):
    """``(position, code)`` for a bare equality filter, else None."""
    if isinstance(predicate, Eq):
        return schema.index(predicate.column), dictionary.encode(predicate.value)
    if isinstance(predicate, Compare) and predicate.op == "==":
        return schema.index(predicate.column), dictionary.encode(predicate.value)
    return None


def _bind_code_check(predicate: Predicate, schema: tuple[str, ...],
                     dictionary: ValueDictionary):
    """Compile a predicate into a check over a tuple of codes.

    Equality-shaped predicates compare codes directly (interning the
    constant, so a value absent from the data simply never matches).
    Order comparisons must decode — dictionary codes reflect insertion
    order, not value order.  Returns None for the always-true predicate.
    """
    if isinstance(predicate, TruePredicate):
        return None
    if isinstance(predicate, Eq):
        position = schema.index(predicate.column)
        code = dictionary.encode(predicate.value)
        return lambda row: row[position] == code
    if isinstance(predicate, In):
        position = schema.index(predicate.column)
        codes = frozenset(dictionary.encode(v) for v in predicate.values)
        return lambda row: row[position] in codes
    if isinstance(predicate, ColumnEq):
        left = schema.index(predicate.left)
        right = schema.index(predicate.right)
        return lambda row: row[left] == row[right]
    if isinstance(predicate, Compare):
        position = schema.index(predicate.column)
        if predicate.op == "==":
            code = dictionary.encode(predicate.value)
            return lambda row: row[position] == code
        if predicate.op == "!=":
            code = dictionary.encode(predicate.value)
            return lambda row: row[position] != code
        compare = _COMPARATORS[predicate.op]
        value = predicate.value
        values = dictionary.values
        return lambda row: compare(values[row[position]], value)
    if isinstance(predicate, And):
        left = _bind_code_check(predicate.left, schema, dictionary)
        right = _bind_code_check(predicate.right, schema, dictionary)
        if left is None:
            return right
        if right is None:
            return left
        return lambda row: left(row) and right(row)
    if isinstance(predicate, Or):
        left = _bind_code_check(predicate.left, schema, dictionary)
        right = _bind_code_check(predicate.right, schema, dictionary)
        if left is None or right is None:
            return None
        return lambda row: left(row) or right(row)
    if isinstance(predicate, Not):
        inner = _bind_code_check(predicate.inner, schema, dictionary)
        if inner is None:
            return lambda row: False
        return lambda row: not inner(row)
    # Unknown predicate type: evaluate it on the decoded row (slow but
    # identical to the row engine).
    check = predicate.compile(schema)
    values = dictionary.values

    def decoded(row):
        return check(tuple(map(values.__getitem__, row)))
    return decoded


def _compile_rename(term: Rename, var: str, input_schema, resolve):
    child_schema, child_bind = _compile(term.child, var, input_schema, resolve)
    if term.old not in child_schema or \
            (term.new != term.old and term.new in child_schema):
        raise KernelUnsupported("invalid rename for this schema")
    if term.new == term.old:
        return child_schema, child_bind
    renamed = [term.new if c == term.old else c for c in child_schema]
    out_schema = tuple(sorted(renamed))
    source_of = {new: i for i, new in enumerate(renamed)}
    permutation = tuple(source_of[c] for c in out_schema)

    def bind(ctx):
        inner = child_bind(ctx)

        def step(batch):
            batch = inner(batch)
            arrays = batch.arrays
            return ColumnarBatch(out_schema, [arrays[p] for p in permutation])
        return step
    return out_schema, bind


def _compile_antiproject(term: AntiProject, var: str, input_schema, resolve):
    dropped = frozenset(term.columns if not isinstance(term.columns, str)
                        else (term.columns,))
    child = term.child
    if isinstance(child, Join) and not is_constant_in(child, var):
        # The compose() shape — anti-project directly over a join — is the
        # whole body of every closure step: push the drop into the join so
        # the dropped column is never gathered at all.
        return _compile_join(child, var, input_schema, resolve, drop=dropped)
    child_schema, child_bind = _compile(child, var, input_schema, resolve)
    if dropped - set(child_schema):
        raise KernelUnsupported("anti-projected column missing")
    kept = tuple(c for c in child_schema if c not in dropped)
    if not kept:
        raise KernelUnsupported("anti-project drops every column")
    if kept == child_schema:
        return child_schema, child_bind
    positions = tuple(child_schema.index(c) for c in kept)

    def bind(ctx):
        inner = child_bind(ctx)

        def step(batch):
            batch = inner(batch)
            arrays = batch.arrays
            return ColumnarBatch(kept, [arrays[p] for p in positions])
        return step
    return kept, bind


def _compile_union(term: Union, var: str, input_schema, resolve):
    left_schema, left_bind = _compile(term.left, var, input_schema, resolve)
    right_schema, right_bind = _compile(term.right, var, input_schema, resolve)
    if left_schema != right_schema:
        raise KernelUnsupported("union of different schemas")

    def bind(ctx):
        left = left_bind(ctx)
        right = right_bind(ctx)

        def step(batch):
            left_batch = left(batch)
            right_batch = right(batch)
            if not len(right_batch):
                return left_batch
            if not len(left_batch):
                return right_batch
            return ColumnarBatch(left_schema, [
                a + b for a, b in zip(left_batch.arrays, right_batch.arrays)])
        return step
    return left_schema, bind


# -- The program cache -------------------------------------------------------

#: Cache entry marking a shape the planner refused, so unsupported terms
#: pay the compile attempt once, not per execution.
_UNSUPPORTED = object()

#: Bound on cached programs per cache (a runaway guard, not an LRU: the
#: working set is a handful of fixpoint bodies).
_MAX_PROGRAMS = 256


class KernelProgramCache:
    """Compiled kernel programs, keyed by (var, variable part, schema).

    One instance hangs off every cached plan (the ``kernel_program`` slot
    of :class:`~repro.service.plan_cache.CachedPlan`); a process-wide
    default (:func:`default_kernel_cache`) serves plan-less execution
    layers.  Entries are schema-level only, so sharing a cache across
    snapshots is sound; a cross-database schema collision is detected at
    bind time (:class:`_SchemaDrift`) and recompiled.
    """

    __slots__ = ("_programs",)

    def __init__(self) -> None:
        self._programs: dict[tuple, object] = {}

    def __len__(self) -> int:
        return len(self._programs)

    def program_for(self, var: str, variable_part: Term,
                    input_schema: tuple[str, ...],
                    resolve: Callable[[Term], Relation],
                    recompile: bool = False) -> KernelProgram | None:
        """The compiled program, or None when the row engine must run."""
        key = (var, variable_part, input_schema)
        entry = self._programs.get(key)
        if not recompile:
            if entry is _UNSUPPORTED:
                return None
            if entry is not None:
                get_registry().counter("repro_kernel_reuses_total").inc()
                return entry
        if len(self._programs) >= _MAX_PROGRAMS:
            self._programs.clear()
        try:
            program = compile_program(var, variable_part, input_schema, resolve)
        except KernelUnsupported:
            self._programs[key] = _UNSUPPORTED
            return None
        get_registry().counter("repro_kernel_compiles_total").inc()
        self._programs[key] = program
        return program


_DEFAULT_CACHE = KernelProgramCache()


def default_kernel_cache() -> KernelProgramCache:
    """The process-wide cache used where no plan cache is in play."""
    return _DEFAULT_CACHE


# -- The columnar fixpoint loop ----------------------------------------------


@dataclass
class KernelRunResult:
    """What one columnar fixpoint run reports back to its caller."""

    relation: Relation
    iterations: int
    index_builds: int
    index_reuses: int
    probes: int


def bind_program(cache: KernelProgramCache | None, var: str,
                 variable_part: Term, input_schema: tuple[str, ...],
                 dictionary: ValueDictionary,
                 resolve: Callable[[Term], Relation]) -> BoundKernel | None:
    """Compile (or fetch) and bind the kernel program for one fixpoint.

    Returns None when the kernels cannot (or must not) run this fixpoint
    — columnar disabled, unsupported shape, output schema differing from
    the seed schema (the row engine owns that error's exact wording) — in
    which case the caller falls back to its row loop.
    """
    if not columnar_enabled():
        return None
    if cache is None:
        cache = _DEFAULT_CACHE
    program = cache.program_for(var, variable_part, input_schema, resolve)
    if program is None:
        return None
    try:
        bound = program.bind(dictionary, resolve)
    except _SchemaDrift:
        program = cache.program_for(var, variable_part, input_schema,
                                    resolve, recompile=True)
        if program is None:
            return None
        try:
            bound = program.bind(dictionary, resolve)
        except _SchemaDrift:
            return None
    if bound.out_schema != input_schema:
        # Let the row engine raise its own (site-specific) schema error.
        return None
    return bound


def try_columnar_fixpoint(cache: KernelProgramCache | None,
                          var: str, variable_part: Term,
                          seed: Relation,
                          dictionary: ValueDictionary,
                          resolve: Callable[[Term], Relation],
                          max_iterations: int,
                          nonconvergence: str) -> KernelRunResult | None:
    """Run one semi-naive fixpoint on the columnar kernels, if possible.

    Returns None when the kernels cannot run this fixpoint (see
    :func:`bind_program`), in which case the caller falls back to the row
    loop.  ``nonconvergence`` is the exact error message the caller's row
    loop would raise on hitting ``max_iterations``, so the guard behaves
    identically on both engines.
    """
    bound = bind_program(cache, var, variable_part, seed.columns,
                         dictionary, resolve)
    if bound is None:
        return None
    step = bound.step
    delta = seed.columnar(dictionary).batch()
    accumulator = ColumnarDeltaAccumulator(delta)
    iterations = 0
    traced = tracing.tracing_enabled()
    while len(delta):
        iterations += 1
        if iterations > max_iterations:
            raise EvaluationError(nonconvergence)
        iteration_span = tracing.span(
            "fixpoint.iteration", var=var, iteration=iterations,
            delta=len(delta), engine="columnar") if traced else tracing.NOOP_SPAN
        with iteration_span:
            produced = step(delta)
            delta = accumulator.absorb(produced)
            if traced:
                iteration_span.set_attribute("produced", len(produced))
                iteration_span.set_attribute("total", len(accumulator))
    # The row engine accesses each constant-side index once per iteration
    # (build on the first touch, reuse after); mirror that accounting so
    # index-reuse metrics stay comparable across engines.
    reuses = bound.index_reuses + bound.indexed_ops * max(iterations - 1, 0)
    return KernelRunResult(relation=accumulator.relation(dictionary),
                           iterations=iterations,
                           index_builds=bound.index_builds,
                           index_reuses=reuses,
                           probes=bound.probe_counter[0])
