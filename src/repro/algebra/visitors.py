"""Generic traversal helpers over mu-RA terms.

The rewriter, the analyses and the printers all need the same handful of
traversals; this module implements them once:

* :func:`walk` — pre-order iteration over every sub-term,
* :func:`transform_bottom_up` — rebuild a term by applying a function to
  every node, children first,
* :func:`transform_top_down` — apply a function to a node before visiting
  the (possibly new) children,
* :func:`count_nodes`, :func:`subterms_of_type` — small conveniences used
  by the cost model and tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from .terms import Term


def walk(term: Term) -> Iterator[Term]:
    """Yield ``term`` and every sub-term, in pre-order."""
    yield term
    for child in term.children():
        yield from walk(child)


def transform_bottom_up(term: Term, fn: Callable[[Term], Term]) -> Term:
    """Rebuild ``term`` by applying ``fn`` to every node, children first."""
    children = term.children()
    if children:
        new_children = tuple(transform_bottom_up(child, fn) for child in children)
        if new_children != children:
            term = term.with_children(new_children)
    return fn(term)


def transform_top_down(term: Term, fn: Callable[[Term], Term]) -> Term:
    """Apply ``fn`` to ``term`` first, then recurse into the result's children."""
    term = fn(term)
    children = term.children()
    if not children:
        return term
    new_children = tuple(transform_top_down(child, fn) for child in children)
    if new_children != children:
        term = term.with_children(new_children)
    return term


def count_nodes(term: Term) -> int:
    """Return the number of nodes of the term (a rough size measure)."""
    return sum(1 for _ in walk(term))


def subterms_of_type(term: Term, node_type: type | tuple[type, ...]) -> list[Term]:
    """Return every sub-term (including ``term``) of the given node type(s)."""
    return [node for node in walk(term) if isinstance(node, node_type)]


def replace_subterm(term: Term, target: Term, replacement: Term) -> Term:
    """Replace every occurrence of ``target`` (by equality) with ``replacement``."""

    def substitute_node(node: Term) -> Term:
        return replacement if node == target else node

    return transform_bottom_up(term, substitute_node)
