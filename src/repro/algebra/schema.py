"""Static schema (column set) inference for mu-RA terms.

Schema inference is needed by several static analyses: the stable-column
analysis, the rewriter (a filter can only be pushed somewhere its columns
exist), the cost model and the SQL/physical compilation.  The schema of a
term is the sorted tuple of its column names, computed from the schemas of
the base relations it mentions.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import EvaluationError, SchemaError
from .conditions import decompose
from .terms import (AntiProject, Antijoin, Filter, Fixpoint, Join, Literal,
                    Rename, RelVar, Term, Union)

Schema = tuple[str, ...]


def infer_schema(term: Term,
                 base_schemas: Mapping[str, Schema],
                 env: Mapping[str, Schema] | None = None) -> Schema:
    """Return the schema of ``term``.

    ``base_schemas`` maps database relation names to their column tuples;
    ``env`` maps recursive-variable names (bound by enclosing fixpoints) to
    their schemas.  Raises :class:`SchemaError` on malformed terms (union of
    incompatible schemas, missing columns) and :class:`EvaluationError` on
    unknown relation names.
    """
    env = dict(env or {})
    return _infer(term, base_schemas, env)


def _infer(term: Term, schemas: Mapping[str, Schema], env: dict[str, Schema]) -> Schema:
    if isinstance(term, RelVar):
        if term.name in env:
            return tuple(sorted(env[term.name]))
        if term.name in schemas:
            return tuple(sorted(schemas[term.name]))
        raise EvaluationError(f"unknown relation {term.name!r} during schema inference")
    if isinstance(term, Literal):
        return term.relation.columns
    if isinstance(term, Union):
        left = _infer(term.left, schemas, env)
        right = _infer(term.right, schemas, env)
        if left != right:
            raise SchemaError(
                f"union of incompatible schemas {left} and {right}"
            )
        return left
    if isinstance(term, Join):
        left = _infer(term.left, schemas, env)
        right = _infer(term.right, schemas, env)
        return tuple(sorted(set(left) | set(right)))
    if isinstance(term, Antijoin):
        return _infer(term.left, schemas, env)
    if isinstance(term, Filter):
        schema = _infer(term.child, schemas, env)
        missing = term.predicate.columns() - set(schema)
        if missing:
            raise SchemaError(
                f"filter references columns {sorted(missing)} missing from "
                f"schema {schema}"
            )
        return schema
    if isinstance(term, Rename):
        schema = _infer(term.child, schemas, env)
        if term.old not in schema:
            raise SchemaError(
                f"cannot rename missing column {term.old!r} (schema {schema})"
            )
        if term.new in schema and term.new != term.old:
            raise SchemaError(
                f"cannot rename {term.old!r} to existing column {term.new!r}"
            )
        return tuple(sorted(term.new if c == term.old else c for c in schema))
    if isinstance(term, AntiProject):
        schema = _infer(term.child, schemas, env)
        missing = set(term.columns) - set(schema)
        if missing:
            raise SchemaError(
                f"cannot drop missing columns {sorted(missing)} (schema {schema})"
            )
        return tuple(c for c in schema if c not in set(term.columns))
    if isinstance(term, Fixpoint):
        return _infer_fixpoint(term, schemas, env)
    raise SchemaError(f"unknown term type {type(term).__name__}")


def _infer_fixpoint(term: Fixpoint, schemas: Mapping[str, Schema],
                    env: dict[str, Schema]) -> Schema:
    """The schema of a fixpoint is the schema of its constant part.

    The variable part is checked against it, which catches fixpoints whose
    recursive branches produce a different schema (a bug in hand-written
    terms the evaluator would otherwise only discover at run time).
    """
    decomposition = decompose(term)
    constant_schema = _infer(decomposition.constant_part, schemas, env)
    if decomposition.variable_part is not None:
        inner_env = dict(env)
        inner_env[term.var] = constant_schema
        variable_schema = _infer(decomposition.variable_part, schemas, inner_env)
        if variable_schema != constant_schema:
            raise SchemaError(
                f"fixpoint on {term.var!r}: the variable part produces schema "
                f"{variable_schema} but the constant part has schema "
                f"{constant_schema}"
            )
    return constant_schema


def schemas_of_database(database: Mapping[str, object]) -> dict[str, Schema]:
    """Extract a name -> schema mapping from a name -> Relation database."""
    result: dict[str, Schema] = {}
    for name, relation in database.items():
        result[name] = relation.columns
    return result
