"""Stable-column analysis for fixpoint terms.

Section III-B of the paper defines a column ``c`` of ``mu(X = R U phi)`` as
*stable* when every tuple of the fixpoint keeps, at column ``c``, the value
of some tuple of ``R``: recursion never rewrites that column.  Stability is
what makes duplicate-free partitioned evaluation possible: hash-partitioning
the constant part on a stable column guarantees the per-partition local
fixpoints are pairwise disjoint, so the final distributed union does not
need to eliminate duplicates (and can even be skipped entirely).

The analysis implemented here is *static*: it tracks, through the variable
part ``phi``, which output columns are guaranteed to carry the value of the
same-named column of the recursive variable ``X``.  It is conservative
(sound but not complete): a column reported stable is always stable; a
stable column may occasionally be missed for exotic terms.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..errors import AlgebraError
from .conditions import decompose
from .schema import Schema, infer_schema
from .terms import (AntiProject, Antijoin, Filter, Fixpoint, Join, Literal,
                    Rename, RelVar, Term, Union)
from .variables import is_constant_in

#: Marker meaning "this column's value does not (provably) come from X".
OTHER = "__other__"


def stable_columns(fixpoint: Fixpoint,
                   base_schemas: Mapping[str, Schema],
                   env: Mapping[str, Schema] | None = None) -> frozenset[str]:
    """Return the set of stable columns of a fixpoint term.

    ``base_schemas`` maps database relation names to schemas (as produced by
    :func:`repro.algebra.schema.schemas_of_database`).
    """
    decomposition = decompose(fixpoint)
    schema = infer_schema(fixpoint, base_schemas, env)
    if decomposition.variable_part is None:
        # No recursive branch: the fixpoint equals its constant part and
        # every column is trivially stable.
        return frozenset(schema)
    inner_env = dict(env or {})
    inner_env[fixpoint.var] = schema
    sources = _column_sources(decomposition.variable_part, fixpoint.var,
                              schema, base_schemas, inner_env)
    return frozenset(column for column in schema if sources.get(column) == column)


def has_stable_column(fixpoint: Fixpoint,
                      base_schemas: Mapping[str, Schema],
                      env: Mapping[str, Schema] | None = None) -> bool:
    """True when the fixpoint has at least one stable column."""
    return bool(stable_columns(fixpoint, base_schemas, env))


def _column_sources(term: Term, var: str, x_schema: Schema,
                    schemas: Mapping[str, Schema],
                    env: dict[str, Schema]) -> dict[str, str]:
    """Map each output column of ``term`` to the X column it provably carries.

    The returned dictionary maps every column of ``term``'s schema either to
    a column name of ``X`` (meaning: the value at this output column always
    equals the value of that ``X`` column in the recursive input tuple) or
    to :data:`OTHER`.
    """
    if isinstance(term, RelVar):
        if term.name == var:
            return {column: column for column in x_schema}
        return _all_other(infer_schema(term, schemas, env))
    if isinstance(term, Literal):
        return _all_other(term.relation.columns)
    if isinstance(term, Filter):
        return _column_sources(term.child, var, x_schema, schemas, env)
    if isinstance(term, Rename):
        child = _column_sources(term.child, var, x_schema, schemas, env)
        result = {}
        for column, source in child.items():
            result[term.new if column == term.old else column] = source
        return result
    if isinstance(term, AntiProject):
        child = _column_sources(term.child, var, x_schema, schemas, env)
        dropped = set(term.columns)
        return {column: source for column, source in child.items()
                if column not in dropped}
    if isinstance(term, Union):
        return _union_sources(term, var, x_schema, schemas, env)
    if isinstance(term, Join):
        return _join_sources(term, var, x_schema, schemas, env)
    if isinstance(term, Antijoin):
        # The antijoin keeps left tuples unchanged (positivity guarantees the
        # right side is constant in X).
        return _column_sources(term.left, var, x_schema, schemas, env)
    if isinstance(term, Fixpoint):
        # Nested fixpoints binding another variable are constant in X by the
        # non-mutual-recursion condition; be conservative either way.
        return _all_other(infer_schema(term, schemas, env))
    raise AlgebraError(f"unknown term type {type(term).__name__} in stability analysis")


def _union_sources(term: Union, var: str, x_schema: Schema,
                   schemas: Mapping[str, Schema],
                   env: dict[str, Schema]) -> dict[str, str]:
    """A column is stable across a union only if both branches preserve it.

    A branch constant in ``var`` produces tuples whose columns do not come
    from ``X`` at all, so such a branch forces every column to OTHER.
    """
    branches = (term.left, term.right)
    branch_sources = []
    for branch in branches:
        if is_constant_in(branch, var):
            branch_sources.append(_all_other(infer_schema(branch, schemas, env)))
        else:
            branch_sources.append(
                _column_sources(branch, var, x_schema, schemas, env))
    left, right = branch_sources
    result = {}
    for column in set(left) | set(right):
        left_source = left.get(column, OTHER)
        right_source = right.get(column, OTHER)
        result[column] = left_source if left_source == right_source else OTHER
    return result


def _join_sources(term: Join, var: str, x_schema: Schema,
                  schemas: Mapping[str, Schema],
                  env: dict[str, Schema]) -> dict[str, str]:
    """Join: columns of the recursive side keep their provenance.

    Columns shared with the constant side are equal on both sides in every
    joined tuple, so they inherit the recursive side's provenance as well.
    Columns only present on the constant side are OTHER.
    """
    left_constant = is_constant_in(term.left, var)
    right_constant = is_constant_in(term.right, var)
    if left_constant and right_constant:
        return _all_other(infer_schema(term, schemas, env))
    if not left_constant and not right_constant:
        # Non-linear join; the analysis only runs on Fcond-satisfying terms,
        # but stay conservative rather than crash.
        return _all_other(infer_schema(term, schemas, env))
    recursive_side = term.right if left_constant else term.left
    constant_side = term.left if left_constant else term.right
    recursive_sources = _column_sources(recursive_side, var, x_schema, schemas, env)
    constant_schema = infer_schema(constant_side, schemas, env)
    result = dict(recursive_sources)
    for column in constant_schema:
        if column not in result:
            result[column] = OTHER
    return result


def _all_other(schema: Schema) -> dict[str, str]:
    return {column: OTHER for column in schema}
