"""Convenience constructors for common graph-shaped mu-RA terms.

Graph navigation terms follow a simple convention used throughout the
library (and in the paper's examples): a *path relation* is a binary
relation with columns ``src`` and ``trg``.  The helpers below build the
standard building blocks on top of that convention:

* :func:`compose` — relational composition of two path relations (a path of
  the left followed by a path of the right),
* :func:`closure` — the transitive closure ``a+`` as a fixpoint term,
  evaluated left-to-right or right-to-left,
* :func:`swap_src_trg` — edge inversion (the ``-label`` steps of UCRPQs),
* :func:`label_edges_from_facts` — selecting one predicate out of a triples
  table.

They are used by the UCRPQ translator (:mod:`repro.query.translate`), by
the workload definitions and extensively in tests.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable

from ..data.graph import PRED, SRC, TRG
from ..data.predicates import Eq, In
from .terms import Filter, Fixpoint, Rename, RelVar, Term, Union

#: Directions a transitive closure can be evaluated in.
LEFT_TO_RIGHT = "left-to-right"
RIGHT_TO_LEFT = "right-to-left"

_FRESH_COUNTER = itertools.count()


def fresh_column(stem: str = "_m") -> str:
    """Return a column name that cannot clash with user columns."""
    return f"{stem}{next(_FRESH_COUNTER)}"


def fresh_fixpoint_variable(stem: str = "X") -> str:
    """Return a fresh recursive-variable name."""
    return f"{stem}_{next(_FRESH_COUNTER)}"


def edge_term(label: str) -> RelVar:
    """The binary edge relation of one label (columns ``src``/``trg``)."""
    return RelVar(label)


def label_edges_from_facts(label: str, facts: str = "facts") -> Term:
    """Select one predicate's edges out of a (src, pred, trg) facts table."""
    filtered = Filter(Eq(PRED, label), RelVar(facts))
    return filtered.antiproject(PRED)


def labels_edges_from_facts(labels: Iterable[str], facts: str = "facts") -> Term:
    """Select the edges of several predicates out of a facts table."""
    filtered = Filter(In(PRED, frozenset(labels)), RelVar(facts))
    return filtered.antiproject(PRED)


def swap_src_trg(term: Term, src: str = SRC, trg: str = TRG) -> Term:
    """Invert a path relation: swap its ``src`` and ``trg`` columns."""
    tmp = fresh_column("_swap")
    return term.rename(src, tmp).rename(trg, src).rename(tmp, trg)


def compose(left: Term, right: Term, src: str = SRC, trg: str = TRG,
            middle: str | None = None) -> Term:
    """Relational composition of two path relations.

    Returns the pairs ``(src, trg)`` such that there is a path of ``left``
    from ``src`` to some middle node followed by a path of ``right`` from
    that node to ``trg``.  This is the term of Example 1 of the paper::

        antiproj_m( rho_trg->m(left) |><| rho_src->m(right) )
    """
    middle = middle if middle is not None else fresh_column()
    left_renamed = Rename(trg, middle, left)
    right_renamed = Rename(src, middle, right)
    return left_renamed.join(right_renamed).antiproject(middle)


def closure(term: Term, direction: str = LEFT_TO_RIGHT,
            src: str = SRC, trg: str = TRG, var: str | None = None) -> Fixpoint:
    """Transitive closure ``term+`` as a fixpoint.

    ``direction`` selects how new paths are produced:

    * ``left-to-right``: ``mu(X = term U compose(X, term))`` — start from
      the base edges and append an edge on the right at every step.  The
      ``src`` column is stable.
    * ``right-to-left``: ``mu(X = term U compose(term, X))`` — prepend an
      edge on the left at every step.  The ``trg`` column is stable.

    Both forms compute the same relation; the rewriter's *reverse fixpoint*
    rule switches between them to enable filter/join pushing on either side.
    """
    var = var if var is not None else fresh_fixpoint_variable()
    recursive = RelVar(var)
    if direction == LEFT_TO_RIGHT:
        step = compose(recursive, term, src=src, trg=trg)
    elif direction == RIGHT_TO_LEFT:
        step = compose(term, recursive, src=src, trg=trg)
    else:
        raise ValueError(f"unknown closure direction {direction!r}")
    return Fixpoint(var, Union(term, step), direction=direction)


def closure_from_seed(seed: Term, step_edges: Term, direction: str = LEFT_TO_RIGHT,
                      src: str = SRC, trg: str = TRG,
                      var: str | None = None) -> Fixpoint:
    """Closure that starts from ``seed`` instead of the step edges themselves.

    ``mu(X = seed U compose(X, step_edges))`` (left-to-right) computes the
    pairs reachable by extending seed paths with step edges; this is the
    shape produced when filters or joins have been pushed inside a closure.
    """
    var = var if var is not None else fresh_fixpoint_variable()
    recursive = RelVar(var)
    if direction == LEFT_TO_RIGHT:
        step = compose(recursive, step_edges, src=src, trg=trg)
    elif direction == RIGHT_TO_LEFT:
        step = compose(step_edges, recursive, src=src, trg=trg)
    else:
        raise ValueError(f"unknown closure direction {direction!r}")
    return Fixpoint(var, Union(seed, step), direction=direction)


def filter_source(term: Term, value, src: str = SRC) -> Term:
    """Keep the pairs whose source is ``value`` (a constant node filter)."""
    return Filter(Eq(src, value), term)


def filter_target(term: Term, value, trg: str = TRG) -> Term:
    """Keep the pairs whose target is ``value``."""
    return Filter(Eq(trg, value), term)


def union_all(terms: Iterable[Term]) -> Term:
    """Union of one or more terms (left-leaning tree)."""
    terms = list(terms)
    if not terms:
        raise ValueError("union_all needs at least one term")
    result = terms[0]
    for term in terms[1:]:
        result = Union(result, term)
    return result


def concatenate_all(terms: Iterable[Term], src: str = SRC, trg: str = TRG) -> Term:
    """Concatenate (compose) a sequence of path relations left to right."""
    terms = list(terms)
    if not terms:
        raise ValueError("concatenate_all needs at least one term")
    result = terms[0]
    for term in terms[1:]:
        result = compose(result, term, src=src, trg=trg)
    return result
