"""Lazy query handles: every pipeline stage inspectable, nothing eager.

A :class:`Query` is produced by a session front-end
(:meth:`Session.ucrpq`, :meth:`Session.term`, the programmatic builder,
or :meth:`PreparedQuery.bind`) and represents one trip through the staged
pipeline::

    front-end --> .ast --> .term --> .normalized --> .plan() --> action

Constructing a handle performs **no work at all** — not even parsing.
Each stage is computed on first access and memoized on the handle; the
plan stage additionally goes through the session's shared plan cache, and
the terminal actions go through the session's result cache.  Because
every front-end funnels into the same :meth:`Session.resolve_plan` /
:meth:`Session.execute_plan` pair, cache keys agree regardless of whether
a query arrives as text, as a parsed AST, as a raw term, through the
serving layer, or through a prepared-statement binding.

**Snapshot isolation.**  The first stage that needs the database —
translation, planning or execution — pins the session's head
:class:`~repro.data.snapshot.DatabaseSnapshot` on the handle
(:attr:`Query.pinned_snapshot`).  Every later stage and action of the
handle reads that same immutable version, so ``collect()``, ``count()``,
``stream()`` and repeated ``plan()`` calls are repeatable reads even
while writers commit new snapshots concurrently.  The one exception is
:meth:`Query.run_once`, the serving path, which reads the *current* head
on every call (still one consistent snapshot per call).

:class:`DatalogQuery` is the same shape for the Datalog baseline
front-end: ``.ast`` / ``.program`` stages, then ``collect()``.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from concurrent.futures import Future
from typing import TYPE_CHECKING

from ..algebra.printer import term_to_string
from ..algebra.terms import Term
from ..check.sanitizer import ordered_lock
from ..errors import TranslationError
from ..obs.metrics import get_registry
from ..query.ast import UCRPQ
from ..query.classes import classify_query
from ..rewriter.normalize import canonicalize
from .parameters import bind_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..data.snapshot import DatabaseSnapshot
    from ..service.plan_cache import CachedPlan
    from .session import QueryResult, Session

#: Sentinel distinguishing "not computed yet" from computed-as-None.
_UNSET = object()

#: Guards the one-time snapshot pin of every handle.  A single shared
#: lock suffices: pinning happens at most once per handle and holds the
#: lock only for a head-pointer read, so contention is negligible.
_PIN_LOCK = ordered_lock("session.pin")


def _pin_snapshot(handle) -> "DatabaseSnapshot":
    """The one pin protocol shared by every handle kind.

    Double-checked under the shared lock so concurrent first-stage runs
    (e.g. ``submit()`` racing a foreground ``plan()``) agree on one
    snapshot — a handle's pin really is set atomically, once.
    """
    if handle._snapshot is None:
        with _PIN_LOCK:
            if handle._snapshot is None:
                handle._snapshot = handle.session.snapshot()
    return handle._snapshot


class Query:
    """One lazy, memoized trip through the session's staged pipeline."""

    def __init__(self, session: "Session", *,
                 text: str | None = None,
                 ast: UCRPQ | None = None,
                 term: Term | None = None,
                 classes: frozenset[str] | None = None,
                 strategy: str | None = None,
                 plan_term: Term | None = None,
                 bindings: dict[str, object] | None = None,
                 description: str | None = None):
        self.session = session
        self._text = text
        self._given_ast = ast
        self._given_term = term
        self._given_classes = classes
        self._strategy = strategy
        #: Term the plan phase runs on when it differs from :attr:`term`
        #: (prepared queries plan their shared parameterized template).
        self._plan_term = plan_term
        #: Parameter values substituted into the selected plan (prepared).
        self._bindings = dict(bindings or {})
        self._description = description
        #: Snapshot the handle reads; pinned at the first stage run.
        self._snapshot: "DatabaseSnapshot | None" = None
        # Memoized stages.
        self._ast = _UNSET
        self._term = _UNSET
        self._normalized = _UNSET
        self._classes = _UNSET
        self._plans: dict[str | None, tuple] = {}
        self._results: dict[str | None, "QueryResult"] = {}
        #: Deterministically ordered rows per strategy (see :meth:`page`).
        self._sorted_rows: dict[str | None, list[tuple]] = {}
        #: Memoized static-analysis report (see :meth:`check`).
        self._check = _UNSET
        #: Cache observations of the most recent plan/collect, for
        #: introspection and tests (``None`` = cache not consulted).
        self.last_plan_cache_hit: bool | None = None
        self.last_result_cache_hit: bool | None = None

    # -- Stages (lazy, memoized) ----------------------------------------------

    @property
    def text(self) -> str | None:
        """The original query text, when the handle was built from text."""
        return self._text

    @property
    def pinned_snapshot(self) -> "DatabaseSnapshot | None":
        """The snapshot this handle reads, or ``None`` before the pin.

        Set (atomically, once) by the first stage that needs the
        database; every subsequent stage and terminal action of the
        handle uses it, making the handle a repeatable read of one
        version regardless of concurrent commits.
        """
        return self._snapshot

    def _pin(self) -> "DatabaseSnapshot":
        """Pin the session's current head on first use and return it."""
        return _pin_snapshot(self)

    @property
    def ast(self) -> UCRPQ:
        """The parsed UCRPQ (parses on first access)."""
        if self._ast is _UNSET:
            if self._given_ast is not None:
                self._ast = self._given_ast
            elif self._text is not None:
                self._ast = self.session.parse(self._text)
            else:
                raise TranslationError(
                    "this query was built from a raw mu-RA term; "
                    "it has no UCRPQ AST")
        return self._ast

    @property
    def term(self) -> Term:
        """The translated mu-RA term (translates on first access)."""
        return self._term_with(self._pin())

    def _term_with(self, snapshot: "DatabaseSnapshot") -> Term:
        """Memoized translation, label-checked against ``snapshot``.

        The translation itself is data-independent (only the label check
        reads the database), so memoizing under whichever snapshot ran
        first is sound; passing an explicit snapshot lets
        :meth:`run_once` keep its whole trip on the one head it captured.
        """
        if self._term is _UNSET:
            if self._given_term is not None:
                self._term = self._given_term
            else:
                self._term = self.session.translate(self.ast,
                                                    snapshot=snapshot)
        return self._term

    @property
    def normalized(self) -> Term:
        """The canonical form of :attr:`term` (the plan identity)."""
        if self._normalized is _UNSET:
            self._normalized = canonicalize(self.term)
        return self._normalized

    @property
    def cache_key(self) -> str:
        """Stable string identity of the query (printed canonical form)."""
        return term_to_string(self.normalized)

    @property
    def classes(self) -> frozenset[str]:
        """The paper's C1-C7 classification of the query."""
        if self._classes is _UNSET:
            if self._given_classes is not None:
                self._classes = self._given_classes
            else:
                self._classes = classify_query(self.ast)
        return self._classes

    def plan(self, strategy: str | None = None) -> "CachedPlan":
        """Explore+rank (through the session plan cache) and return the plan.

        Memoized per strategy on the handle; across handles the session's
        plan cache deduplicates the work.
        """
        return self._resolve(strategy)[0]

    def explain(self, strategy: str | None = None) -> str:
        """Human-readable account of the whole pipeline for this query."""
        plan = self.plan(strategy)
        classes = ",".join(sorted(self.classes)) or "none"
        lines = [
            f"query: {self.describe()}",
            f"classes: {classes}",
            "pipeline: front-end -> term -> normalize -> rank -> "
            "physical plan -> action",
            f"plans explored: {plan.plans_explored}",
            f"selected cost: {plan.cost:.1f}",
            f"selected plan: {plan.term}",
        ]
        return "\n".join(lines)

    def check(self):
        """Statically analyze the query against its pinned snapshot.

        Returns a :class:`~repro.check.DiagnosticReport` — label/relation
        existence, shape warnings (cartesian products, unused head
        variables) and the recursion-shape classification predicting
        which of the paper's strategies apply.  Never executes anything;
        memoized on the handle (the pin makes the catalog stable).
        """
        if self._check is _UNSET:
            self._check = self._analyze_against(self._pin())
        return self._check

    def _analyze_against(self, snapshot: "DatabaseSnapshot"):
        """One analysis pass over the handle's best front-end artifact.

        Text is preferred (spans and caret snippets survive), then the
        given AST, then the raw term.  Counted in the metrics registry so
        the serving tier's admission gate can assert it runs once per
        plan-cache fill and never on the hot path.
        """
        from ..check import analyze_query, analyze_term

        if self._text is not None or self._given_ast is not None:
            subject = self._text if self._text is not None else self._given_ast
            get_registry().counter("repro_analyze_total",
                                   frontend="ucrpq").inc()
            return analyze_query(subject, database=snapshot)
        term = (self._plan_term if self._plan_term is not None
                else self._given_term)
        get_registry().counter("repro_analyze_total", frontend="term").inc()
        return analyze_term(term, database=snapshot)

    def _admission_gate(self, effective: str | None,
                        snapshot: "DatabaseSnapshot",
                        use_cache: bool | None) -> None:
        """Strict-mode admission: analyze once per plan-cache fill.

        A cached plan proves this exact (term, snapshot version, config)
        was admitted before, so hits skip the analysis entirely — strict
        serving adds no hot-path cost.  On a miss the analysis runs
        *before* the optimizer; errors surface as a structured
        :class:`~repro.errors.AnalysisError` instead of whatever the
        deeper pipeline would have raised.  When translation itself fails
        (e.g. an unknown label) the analyzer still gets a chance to
        produce the better account before the original error propagates.
        """
        from ..algebra.variables import free_variables
        from ..errors import ReproError
        from ..service.plan_cache import PlanKey

        try:
            base = (self._plan_term if self._plan_term is not None
                    else self._term_with(snapshot))
        except ReproError:
            self._analyze_against(snapshot).raise_if_errors()
            raise
        session = self.session
        use_cache = (session.enable_plan_cache if use_cache is None
                     else use_cache)
        if use_cache and session.optimize_plans:
            key = PlanKey.of(session, base, free_variables(base), effective,
                             snapshot=snapshot)
            if key in session.plan_cache:
                return
        self._analyze_against(snapshot).raise_if_errors()

    # -- Terminal actions ------------------------------------------------------

    def collect(self, strategy: str | None = None) -> "QueryResult":
        """Execute the selected plan and return the full :class:`QueryResult`.

        Memoized per strategy: a handle is a one-shot staged computation
        pinned to one snapshot.  Build a new handle (or use the serving
        layer) to observe data committed after the handle's pin.
        """
        effective = self._effective(strategy)
        if effective not in self._results:
            plan, hit, key = self._resolve(strategy)
            result, result_hit = self.session.execute_plan(
                plan, effective, self.classes, plan_key=key,
                snapshot=self._pin())
            self.last_result_cache_hit = result_hit
            self._results[effective] = result
        return self._results[effective]

    def run_once(self, strategy: str | None = None, *,
                 use_plan_cache: bool | None = None,
                 use_result_cache: bool | None = None,
                 check: bool = False,
                 ) -> "tuple[QueryResult, bool | None, bool | None]":
        """One un-memoized trip through the pipeline (the serving path).

        Unlike :meth:`collect`, nothing is memoized on the handle and the
        handle's pin is bypassed: each call captures the session's head
        snapshot at entry and plans + executes against that one version
        (a repeatable read *within* the call, the freshest data *across*
        calls) — this is what a server wants when equivalent handles are
        served repeatedly against a mutating database.  Honors the
        handle's own default strategy and, for prepared bindings, the
        shared template plan.
        With ``check=True`` the strict-mode admission gate runs first
        (see :meth:`_admission_gate`): on a plan-cache miss the query is
        statically analyzed and rejected with an
        :class:`~repro.errors.AnalysisError` when the report has errors;
        on a hit the analysis is skipped entirely.
        Returns ``(result, plan_cache_hit, result_cache_hit)``.
        """
        effective = self._effective(strategy)
        snapshot = self.session.snapshot()
        if check:
            self._admission_gate(effective, snapshot, use_plan_cache)
        plan, plan_hit, key = self._plan_for(effective, use_cache=use_plan_cache,
                                             snapshot=snapshot)
        result, result_hit = self.session.execute_plan(
            plan, effective, self.classes,
            use_result_cache=use_result_cache, plan_key=key,
            snapshot=snapshot)
        return result, plan_hit, result_hit

    def explain_analyze(self, strategy: str | None = None, *,
                        use_plan_cache: bool | None = None,
                        use_result_cache: bool | None = None):
        """Execute once under tracing and return the annotated span tree.

        Unlike :meth:`explain` (which only plans), this *runs* the query
        — one un-memoized trip against the current head snapshot, like
        :meth:`run_once` — inside a private, enabled tracer, and returns
        an :class:`~repro.obs.explain.ExplainAnalyzeReport`: per-stage
        wall time, plan/result cache outcomes, per-fixpoint-iteration
        delta and accumulated cardinalities, and the estimate-vs-actual
        cardinality drift.  ``print(query.explain_analyze())`` renders
        the tree; the report's structured accessors serve tests and the
        feedback-driven-optimizer roadmap item.

        The private tracer is activated only for the calling context, so
        concurrent queries on the same session are not traced (and pay
        no overhead) while this one runs.
        """
        from ..obs import tracing
        from ..obs.explain import ExplainAnalyzeReport

        effective = self._effective(strategy)
        tracer = tracing.Tracer(enabled=True)
        with tracing.activate(tracer):
            with tracing.span("query", query=self.describe()):
                snapshot = self.session.snapshot()
                if self._given_ast is not None or self._text is not None:
                    with tracing.span("query.parse"):
                        self.ast  # noqa: B018 - forces the parse stage
                with tracing.span("query.translate"):
                    self._term_with(snapshot)
                plan, _, key = self._plan_for(effective,
                                              use_cache=use_plan_cache,
                                              snapshot=snapshot)
                result, _ = self.session.execute_plan(
                    plan, effective, self.classes,
                    use_result_cache=use_result_cache, plan_key=key,
                    snapshot=snapshot)
        return ExplainAnalyzeReport(query_text=self.describe(),
                                    result=result,
                                    records=tracer.records())

    def count(self, strategy: str | None = None) -> int:
        """Number of result rows."""
        return len(self.collect(strategy).relation)

    def exists(self, strategy: str | None = None) -> bool:
        """True when the query has at least one answer."""
        return self.count(strategy) > 0

    def stream(self, batch_size: int = 256,
               strategy: str | None = None) -> Iterator[list[tuple]]:
        """Yield the result rows in batches of ``batch_size`` tuples.

        Snapshot-consistent: calling ``stream()`` pins the handle's
        snapshot and runs the pipeline *immediately* (not at the first
        ``next()``), so the batches always cover exactly the pinned
        version — mutations committed between yielded batches (or
        between creating and consuming the iterator) cannot change, tear
        or reorder the stream.  Batches themselves are produced lazily
        from the materialized result, one at a time.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._pin()
        relation = self.collect(strategy).relation

        def batches() -> Iterator[list[tuple]]:
            batch: list[tuple] = []
            for row in relation.rows:
                batch.append(row)
                if len(batch) == batch_size:
                    yield batch
                    batch = []
            if batch:
                yield batch

        return batches()

    def page(self, offset: int = 0, limit: int = 256,
             strategy: str | None = None) -> tuple[list[tuple], int]:
        """One page of the result under a stable total order.

        Returns ``(rows, total)``.  The relation's rows live in a
        frozenset, so pagination needs an explicit order: the rows are
        sorted (by ``repr``, the same order :meth:`Relation.to_dicts`
        uses) once per strategy and memoized on the handle.  Because the
        handle pins its snapshot at the first stage run, every page of
        one handle — no matter how far apart the calls — covers exactly
        the same version: this is what the serving tier's continuation
        tokens lean on.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        if limit <= 0:
            raise ValueError("limit must be positive")
        effective = self._effective(strategy)
        if effective not in self._sorted_rows:
            relation = self.collect(strategy).relation
            self._sorted_rows[effective] = sorted(relation.rows, key=repr)
        rows = self._sorted_rows[effective]
        return rows[offset:offset + limit], len(rows)

    def submit(self, strategy: str | None = None) -> Future:
        """Run :meth:`collect` on the session's background worker.

        Returns a future resolving to the :class:`QueryResult`.
        """
        return self.session.submit_action(lambda: self.collect(strategy))

    # -- Introspection ---------------------------------------------------------

    def describe(self) -> str:
        """A printable identity of the query that never triggers a parse."""
        if self._description is not None:
            return self._description
        if self._text is not None:
            return self._text
        if self._given_ast is not None:
            return str(self._given_ast)
        return str(self._given_term)

    def __repr__(self) -> str:
        staged = [name for name, slot in (
            ("ast", self._ast), ("term", self._term),
            ("normalized", self._normalized)) if slot is not _UNSET]
        if self._plans:
            staged.append("plan")
        if self._results:
            staged.append("result")
        return (f"Query({self.describe()!r}, "
                f"staged=[{', '.join(staged) or 'nothing'}])")

    # -- Internal --------------------------------------------------------------

    def _effective(self, strategy: str | None) -> str | None:
        return strategy if strategy is not None else self._strategy

    def _resolve(self, strategy: str | None) -> tuple:
        effective = self._effective(strategy)
        if effective not in self._plans:
            self._plans[effective] = self._plan_for(effective)
        self.last_plan_cache_hit = self._plans[effective][1]
        return self._plans[effective]

    def _plan_for(self, effective: str | None,
                  use_cache: bool | None = None,
                  snapshot: "DatabaseSnapshot | None" = None) -> tuple:
        """Resolve ``(plan, cache_hit, key)`` through the session.

        Plans against the handle's pinned snapshot unless the caller
        (the serving path) passes its own.  For prepared bindings the
        plan phase runs on the shared template term and the binding's
        constants are substituted into the selected plan afterwards.  A
        bound plan must never be written back into the template's
        plan-cache slot (a later binding would inherit its constants),
        so its key is dropped.
        """
        snapshot = snapshot if snapshot is not None else self._pin()
        base = (self._plan_term if self._plan_term is not None
                else self._term_with(snapshot))
        plan, hit, key = self.session.resolve_plan(base, effective,
                                                   use_cache=use_cache,
                                                   snapshot=snapshot)
        if self._bindings:
            plan = bind_plan(plan, self._bindings)
            key = None
        return plan, hit, key


class DatalogQuery:
    """The Datalog front-end: same staged shape, different compiler.

    Stages: ``.ast`` (shared with the UCRPQ front-end), ``.program`` (the
    left-linear Datalog translation, magic-set specialized), then the
    terminal ``collect()`` running the semi-naive engine over the
    session's database.  Used by the differential tests to compare the
    two front-ends over one database instead of two engine silos.
    """

    def __init__(self, session: "Session", *,
                 text: str | None = None,
                 ast: UCRPQ | None = None,
                 use_magic: bool = True):
        self.session = session
        self._text = text
        self._given_ast = ast
        self.use_magic = use_magic
        #: Snapshot the evaluation reads; pinned at the first collect().
        self._snapshot: "DatabaseSnapshot | None" = None
        self._ast = _UNSET
        self._program = _UNSET
        self._specialization = _UNSET
        self._result = _UNSET

    @property
    def text(self) -> str | None:
        return self._text

    @property
    def pinned_snapshot(self) -> "DatabaseSnapshot | None":
        """The snapshot this handle reads (same contract as :class:`Query`)."""
        return self._snapshot

    def _pin(self) -> "DatabaseSnapshot":
        return _pin_snapshot(self)

    @property
    def ast(self) -> UCRPQ:
        """The parsed UCRPQ (parses on first access)."""
        if self._ast is _UNSET:
            self._ast = (self._given_ast if self._given_ast is not None
                         else self.session.parse(self._text))
        return self._ast

    @property
    def program(self):
        """The (specialized) Datalog program (translates on first access)."""
        if self._program is _UNSET:
            from ..baselines.datalog.magic import MagicSetSpecializer, \
                SpecializationReport
            from ..baselines.datalog.translate import ucrpq_to_datalog
            program = ucrpq_to_datalog(self.ast)
            report = SpecializationReport(specialized=[], skipped=[])
            if self.use_magic:
                program, report = MagicSetSpecializer().specialize(program)
            self._program = program
            self._specialization = report
        return self._program

    @property
    def specialization(self):
        """The magic-set specialization report for :attr:`program`."""
        self.program  # noqa: B018 - forces the translation stage
        return self._specialization

    def distribution(self) -> tuple[list[str], list[str]]:
        """GPS-style (decomposable, non-decomposable) predicate analysis."""
        from ..baselines.datalog.distributed import analyse_distribution
        return analyse_distribution(self.program)

    def check(self):
        """Statically analyze the translated program against the database.

        The pinned snapshot acts as the EDB catalog (forward label
        relations carry the authoritative arity), so unknown predicates,
        arity clashes, dead rules and the recursion-shape classification
        all reflect the exact version :meth:`collect` would evaluate.
        """
        from ..check import analyze_program
        get_registry().counter("repro_analyze_total",
                               frontend="datalog").inc()
        return analyze_program(self.program, database=self._pin())

    def collect(self):
        """Evaluate the program bottom-up; returns a BigDatalogResult."""
        if self._result is _UNSET:
            from ..baselines.datalog.distributed import (BigDatalogResult,
                                                         goal_relation)
            from ..baselines.datalog.engine import SemiNaiveEngine
            started = time.perf_counter()
            program = self.program
            decomposable, non_decomposable = self.distribution()
            engine = SemiNaiveEngine()
            facts = engine.evaluate(program,
                                    self.session.datalog_edb(self._pin()))
            columns = tuple(sorted(v.name for v in self.ast.head))
            relation = goal_relation(self.ast, facts, columns)
            self._result = BigDatalogResult(
                relation=relation,
                program=program,
                specialization=self._specialization,
                decomposable_predicates=decomposable,
                non_decomposable_predicates=non_decomposable,
                iterations=engine.stats.iterations,
                facts_derived=engine.stats.facts_derived,
                elapsed_seconds=time.perf_counter() - started,
            )
        return self._result

    def explain_analyze(self):
        """Evaluate once under tracing and return the annotated span tree.

        The Datalog engine is not internally instrumented (it is a
        baseline), so the tree shows the front-end stages — parse,
        translate+specialize, evaluate — with their wall time, which is
        exactly what the differential benchmarks compare against the
        mu-RA pipeline's deeper trace.
        """
        from ..obs import tracing
        from ..obs.explain import ExplainAnalyzeReport

        tracer = tracing.Tracer(enabled=True)
        with tracing.activate(tracer):
            with tracing.span("query", query=self.describe(),
                              frontend="datalog"):
                with tracing.span("query.parse"):
                    self.ast  # noqa: B018 - forces the parse stage
                with tracing.span("query.translate",
                                  magic=self.use_magic):
                    self.program  # noqa: B018 - forces the translation
                with tracing.span("query.evaluate") as evaluate_span:
                    result = self.collect()
                    evaluate_span.set_attribute(
                        "iterations", result.iterations)
                    evaluate_span.set_attribute(
                        "facts_derived", result.facts_derived)
        return ExplainAnalyzeReport(query_text=self.describe(),
                                    result=result,
                                    records=tracer.records())

    def count(self) -> int:
        return len(self.collect().relation)

    def exists(self) -> bool:
        return self.count() > 0

    def describe(self) -> str:
        if self._text is not None:
            return self._text
        return str(self._given_ast)

    def __repr__(self) -> str:
        return f"DatalogQuery({self.describe()!r}, magic={self.use_magic})"
