"""Lazy query handles: every pipeline stage inspectable, nothing eager.

A :class:`Query` is produced by a session front-end
(:meth:`Session.ucrpq`, :meth:`Session.term`, the programmatic builder,
or :meth:`PreparedQuery.bind`) and represents one trip through the staged
pipeline::

    front-end --> .ast --> .term --> .normalized --> .plan() --> action

Constructing a handle performs **no work at all** — not even parsing.
Each stage is computed on first access and memoized on the handle; the
plan stage additionally goes through the session's shared plan cache, and
the terminal actions go through the session's result cache.  Because
every front-end funnels into the same :meth:`Session.resolve_plan` /
:meth:`Session.execute_plan` pair, cache keys agree regardless of whether
a query arrives as text, as a parsed AST, as a raw term, through the
serving layer, or through a prepared-statement binding.

:class:`DatalogQuery` is the same shape for the Datalog baseline
front-end: ``.ast`` / ``.program`` stages, then ``collect()``.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from concurrent.futures import Future
from typing import TYPE_CHECKING

from ..algebra.printer import term_to_string
from ..algebra.terms import Term
from ..errors import TranslationError
from ..query.ast import UCRPQ
from ..query.classes import classify_query
from ..rewriter.normalize import canonicalize
from .parameters import bind_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..service.plan_cache import CachedPlan
    from .session import QueryResult, Session

#: Sentinel distinguishing "not computed yet" from computed-as-None.
_UNSET = object()


class Query:
    """One lazy, memoized trip through the session's staged pipeline."""

    def __init__(self, session: "Session", *,
                 text: str | None = None,
                 ast: UCRPQ | None = None,
                 term: Term | None = None,
                 classes: frozenset[str] | None = None,
                 strategy: str | None = None,
                 plan_term: Term | None = None,
                 bindings: dict[str, object] | None = None,
                 description: str | None = None):
        self.session = session
        self._text = text
        self._given_ast = ast
        self._given_term = term
        self._given_classes = classes
        self._strategy = strategy
        #: Term the plan phase runs on when it differs from :attr:`term`
        #: (prepared queries plan their shared parameterized template).
        self._plan_term = plan_term
        #: Parameter values substituted into the selected plan (prepared).
        self._bindings = dict(bindings or {})
        self._description = description
        # Memoized stages.
        self._ast = _UNSET
        self._term = _UNSET
        self._normalized = _UNSET
        self._classes = _UNSET
        self._plans: dict[str | None, tuple] = {}
        self._results: dict[str | None, "QueryResult"] = {}
        #: Cache observations of the most recent plan/collect, for
        #: introspection and tests (``None`` = cache not consulted).
        self.last_plan_cache_hit: bool | None = None
        self.last_result_cache_hit: bool | None = None

    # -- Stages (lazy, memoized) ----------------------------------------------

    @property
    def text(self) -> str | None:
        """The original query text, when the handle was built from text."""
        return self._text

    @property
    def ast(self) -> UCRPQ:
        """The parsed UCRPQ (parses on first access)."""
        if self._ast is _UNSET:
            if self._given_ast is not None:
                self._ast = self._given_ast
            elif self._text is not None:
                self._ast = self.session.parse(self._text)
            else:
                raise TranslationError(
                    "this query was built from a raw mu-RA term; "
                    "it has no UCRPQ AST")
        return self._ast

    @property
    def term(self) -> Term:
        """The translated mu-RA term (translates on first access)."""
        if self._term is _UNSET:
            if self._given_term is not None:
                self._term = self._given_term
            else:
                self._term = self.session.translate(self.ast)
        return self._term

    @property
    def normalized(self) -> Term:
        """The canonical form of :attr:`term` (the plan identity)."""
        if self._normalized is _UNSET:
            self._normalized = canonicalize(self.term)
        return self._normalized

    @property
    def cache_key(self) -> str:
        """Stable string identity of the query (printed canonical form)."""
        return term_to_string(self.normalized)

    @property
    def classes(self) -> frozenset[str]:
        """The paper's C1-C7 classification of the query."""
        if self._classes is _UNSET:
            if self._given_classes is not None:
                self._classes = self._given_classes
            else:
                self._classes = classify_query(self.ast)
        return self._classes

    def plan(self, strategy: str | None = None) -> "CachedPlan":
        """Explore+rank (through the session plan cache) and return the plan.

        Memoized per strategy on the handle; across handles the session's
        plan cache deduplicates the work.
        """
        return self._resolve(strategy)[0]

    def explain(self, strategy: str | None = None) -> str:
        """Human-readable account of the whole pipeline for this query."""
        plan = self.plan(strategy)
        classes = ",".join(sorted(self.classes)) or "none"
        lines = [
            f"query: {self.describe()}",
            f"classes: {classes}",
            "pipeline: front-end -> term -> normalize -> rank -> "
            "physical plan -> action",
            f"plans explored: {plan.plans_explored}",
            f"selected cost: {plan.cost:.1f}",
            f"selected plan: {plan.term}",
        ]
        return "\n".join(lines)

    # -- Terminal actions ------------------------------------------------------

    def collect(self, strategy: str | None = None) -> "QueryResult":
        """Execute the selected plan and return the full :class:`QueryResult`.

        Memoized per strategy: a handle is a one-shot staged computation.
        Build a new handle (or use the serving layer) to observe data
        mutated after the first collection.
        """
        effective = self._effective(strategy)
        if effective not in self._results:
            plan, hit, key = self._resolve(strategy)
            result, result_hit = self.session.execute_plan(
                plan, effective, self.classes, plan_key=key)
            self.last_result_cache_hit = result_hit
            self._results[effective] = result
        return self._results[effective]

    def run_once(self, strategy: str | None = None, *,
                 use_plan_cache: bool | None = None,
                 use_result_cache: bool | None = None,
                 ) -> "tuple[QueryResult, bool | None, bool | None]":
        """One un-memoized trip through the pipeline (the serving path).

        Unlike :meth:`collect`, nothing is memoized on the handle, so the
        session caches are consulted afresh — this is what a server wants
        when the same handle (or an equivalent one) is served repeatedly
        against a mutating database.  Honors the handle's own default
        strategy and, for prepared bindings, the shared template plan.
        Returns ``(result, plan_cache_hit, result_cache_hit)``.
        """
        effective = self._effective(strategy)
        plan, plan_hit, key = self._plan_for(effective, use_cache=use_plan_cache)
        result, result_hit = self.session.execute_plan(
            plan, effective, self.classes,
            use_result_cache=use_result_cache, plan_key=key)
        return result, plan_hit, result_hit

    def count(self, strategy: str | None = None) -> int:
        """Number of result rows."""
        return len(self.collect(strategy).relation)

    def exists(self, strategy: str | None = None) -> bool:
        """True when the query has at least one answer."""
        return self.count(strategy) > 0

    def stream(self, batch_size: int = 256,
               strategy: str | None = None) -> Iterator[list[tuple]]:
        """Yield the result rows in batches of ``batch_size`` tuples."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        relation = self.collect(strategy).relation
        batch: list[tuple] = []
        for row in relation.rows:
            batch.append(row)
            if len(batch) == batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def submit(self, strategy: str | None = None) -> Future:
        """Run :meth:`collect` on the session's background worker.

        Returns a future resolving to the :class:`QueryResult`.
        """
        return self.session.submit_action(lambda: self.collect(strategy))

    # -- Introspection ---------------------------------------------------------

    def describe(self) -> str:
        """A printable identity of the query that never triggers a parse."""
        if self._description is not None:
            return self._description
        if self._text is not None:
            return self._text
        if self._given_ast is not None:
            return str(self._given_ast)
        return str(self._given_term)

    def __repr__(self) -> str:
        staged = [name for name, slot in (
            ("ast", self._ast), ("term", self._term),
            ("normalized", self._normalized)) if slot is not _UNSET]
        if self._plans:
            staged.append("plan")
        if self._results:
            staged.append("result")
        return (f"Query({self.describe()!r}, "
                f"staged=[{', '.join(staged) or 'nothing'}])")

    # -- Internal --------------------------------------------------------------

    def _effective(self, strategy: str | None) -> str | None:
        return strategy if strategy is not None else self._strategy

    def _resolve(self, strategy: str | None) -> tuple:
        effective = self._effective(strategy)
        if effective not in self._plans:
            self._plans[effective] = self._plan_for(effective)
        self.last_plan_cache_hit = self._plans[effective][1]
        return self._plans[effective]

    def _plan_for(self, effective: str | None,
                  use_cache: bool | None = None) -> tuple:
        """Resolve ``(plan, cache_hit, key)`` through the session.

        For prepared bindings the plan phase runs on the shared template
        term and the binding's constants are substituted into the selected
        plan afterwards.  A bound plan must never be written back into the
        template's plan-cache slot (a later binding would inherit its
        constants), so its key is dropped.
        """
        base = self._plan_term if self._plan_term is not None else self.term
        plan, hit, key = self.session.resolve_plan(base, effective,
                                                   use_cache=use_cache)
        if self._bindings:
            plan = bind_plan(plan, self._bindings)
            key = None
        return plan, hit, key


class DatalogQuery:
    """The Datalog front-end: same staged shape, different compiler.

    Stages: ``.ast`` (shared with the UCRPQ front-end), ``.program`` (the
    left-linear Datalog translation, magic-set specialized), then the
    terminal ``collect()`` running the semi-naive engine over the
    session's database.  Used by the differential tests to compare the
    two front-ends over one database instead of two engine silos.
    """

    def __init__(self, session: "Session", *,
                 text: str | None = None,
                 ast: UCRPQ | None = None,
                 use_magic: bool = True):
        self.session = session
        self._text = text
        self._given_ast = ast
        self.use_magic = use_magic
        self._ast = _UNSET
        self._program = _UNSET
        self._specialization = _UNSET
        self._result = _UNSET

    @property
    def text(self) -> str | None:
        return self._text

    @property
    def ast(self) -> UCRPQ:
        """The parsed UCRPQ (parses on first access)."""
        if self._ast is _UNSET:
            self._ast = (self._given_ast if self._given_ast is not None
                         else self.session.parse(self._text))
        return self._ast

    @property
    def program(self):
        """The (specialized) Datalog program (translates on first access)."""
        if self._program is _UNSET:
            from ..baselines.datalog.magic import MagicSetSpecializer, \
                SpecializationReport
            from ..baselines.datalog.translate import ucrpq_to_datalog
            program = ucrpq_to_datalog(self.ast)
            report = SpecializationReport(specialized=[], skipped=[])
            if self.use_magic:
                program, report = MagicSetSpecializer().specialize(program)
            self._program = program
            self._specialization = report
        return self._program

    @property
    def specialization(self):
        """The magic-set specialization report for :attr:`program`."""
        self.program  # noqa: B018 - forces the translation stage
        return self._specialization

    def distribution(self) -> tuple[list[str], list[str]]:
        """GPS-style (decomposable, non-decomposable) predicate analysis."""
        from ..baselines.datalog.distributed import analyse_distribution
        return analyse_distribution(self.program)

    def collect(self):
        """Evaluate the program bottom-up; returns a BigDatalogResult."""
        if self._result is _UNSET:
            from ..baselines.datalog.distributed import (BigDatalogResult,
                                                         goal_relation)
            from ..baselines.datalog.engine import SemiNaiveEngine
            started = time.perf_counter()
            program = self.program
            decomposable, non_decomposable = self.distribution()
            engine = SemiNaiveEngine()
            facts = engine.evaluate(program, self.session.datalog_edb())
            columns = tuple(sorted(v.name for v in self.ast.head))
            relation = goal_relation(self.ast, facts, columns)
            self._result = BigDatalogResult(
                relation=relation,
                program=program,
                specialization=self._specialization,
                decomposable_predicates=decomposable,
                non_decomposable_predicates=non_decomposable,
                iterations=engine.stats.iterations,
                facts_derived=engine.stats.facts_derived,
                elapsed_seconds=time.perf_counter() - started,
            )
        return self._result

    def count(self) -> int:
        return len(self.collect().relation)

    def exists(self) -> bool:
        return self.count() > 0

    def describe(self) -> str:
        if self._text is not None:
            return self._text
        return str(self._given_ast)

    def __repr__(self) -> str:
        return f"DatalogQuery({self.describe()!r}, magic={self.use_magic})"
