"""Unified lazy Session/Query API: one staged pipeline, many front-ends.

* :class:`Session` — owns the database, catalog, caches, cluster and the
  execution lock; hands out lazy query handles through its front-ends,
* :class:`Query` / :class:`DatalogQuery` — lazy, memoized, inspectable
  pipeline handles (``.ast`` / ``.term`` / ``.normalized`` / ``.plan()``
  / ``.explain()`` stages, ``collect()`` / ``count()`` / ``exists()`` /
  ``stream()`` / ``submit()`` actions),
* :class:`PathBuilder` — programmatic query construction,
* :class:`PreparedQuery` / :class:`Parameter` — parameterized templates
  planned once and bound many times.

See the "Session API" section of ``DESIGN.md`` and
``examples/session_tour.py``.
"""

from .builder import PathBuilder
from .parameters import PARAMETER_PREFIX, Parameter
from .prepared import PreparedQuery
from .query import DatalogQuery, Query
from .session import QueryResult, Session

__all__ = [
    "DatalogQuery",
    "PARAMETER_PREFIX",
    "Parameter",
    "PathBuilder",
    "PreparedQuery",
    "Query",
    "QueryResult",
    "Session",
]
