"""Unified lazy Session/Query API: snapshot-isolated, multi-graph.

* :class:`Session` — owns the cluster, the execution lock and one or
  more named graphs, each an immutable versioned
  :class:`~repro.data.snapshot.DatabaseSnapshot`; hands out lazy query
  handles through its front-ends and commits mutations as copy-on-write
  snapshot swaps (:meth:`Session.transaction`, :meth:`Session.attach`,
  :meth:`Session.graph`, :meth:`Session.read_view`),
* :class:`Query` / :class:`DatalogQuery` — lazy, memoized, inspectable
  pipeline handles (``.ast`` / ``.term`` / ``.normalized`` / ``.plan()``
  / ``.explain()`` stages, ``collect()`` / ``count()`` / ``exists()`` /
  ``stream()`` / ``submit()`` actions), each pinned to the snapshot of
  its first stage run,
* :class:`Transaction` — a batch of edge mutations committed as one
  snapshot (or rolled back),
* :class:`PathBuilder` — programmatic query construction,
* :class:`PreparedQuery` / :class:`Parameter` — parameterized templates
  planned once and bound many times.

See the "Session API" and "Snapshots & transactions" sections of
``DESIGN.md`` and ``examples/session_tour.py``.
"""

from .builder import PathBuilder
from .parameters import PARAMETER_PREFIX, Parameter
from .prepared import PreparedQuery
from .query import DatalogQuery, Query
from .session import QueryResult, Session, Transaction

__all__ = [
    "DatalogQuery",
    "PARAMETER_PREFIX",
    "Parameter",
    "PathBuilder",
    "PreparedQuery",
    "Query",
    "QueryResult",
    "Session",
    "Transaction",
]
