"""Parameter sentinels and plan binding for prepared queries.

A prepared query is planned **once** on a *template term* in which every
value placeholder is a :class:`Parameter` sentinel instead of a concrete
constant.  This is sound because the cost model's equality selectivity is
value-independent (``1 / distinct(column)`` whatever the constant), so the
plan selected for the sentinel is the plan that would have been selected
for any binding.  At bind time, :func:`bind_plan` substitutes the concrete
values into the *selected* plan — a cheap tree rewrite — instead of
re-running the rewriter and the cost ranking.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace

from ..algebra.terms import Filter, Term
from ..data.predicates import (And, Compare, Eq, In, Not, Or, Predicate)
from ..errors import TranslationError
from ..service.plan_cache import CachedPlan

#: Placeholder identifiers start with a colon: ``:name`` (legal in the
#: UCRPQ identifier syntax, so templates parse with the ordinary parser).
PARAMETER_PREFIX = ":"


@dataclass(frozen=True)
class Parameter:
    """Sentinel standing for an unbound parameter value inside a term.

    Its printed form deliberately cannot be produced by the UCRPQ parser
    (identifiers cannot contain spaces or angle brackets), so a template's
    cache key can never collide with a concrete query's.
    """

    name: str

    def __repr__(self) -> str:
        return f"<param {self.name}>"

    __str__ = __repr__


def parameters_of(term: Term) -> frozenset[str]:
    """Names of the :class:`Parameter` sentinels occurring in ``term``."""
    names: set[str] = set()
    _walk_parameters(term, names)
    return frozenset(names)


def substitute_parameters(term: Term, values: Mapping[str, object]) -> Term:
    """Replace every :class:`Parameter` sentinel in filter predicates.

    Raises :class:`~repro.errors.TranslationError` if the term mentions a
    parameter that ``values`` does not bind.
    """
    children = term.children()
    if children:
        new_children = tuple(substitute_parameters(child, values)
                             for child in children)
        if new_children != children:
            term = term.with_children(new_children)
    if isinstance(term, Filter):
        predicate = _substitute_predicate(term.predicate, values)
        if predicate is not term.predicate:
            term = Filter(predicate, term.child)
    return term


def bind_plan(plan: CachedPlan, values: Mapping[str, object]) -> CachedPlan:
    """Specialize a cached template plan to one parameter binding.

    The bound plan keeps the template's cost and exploration counters (the
    whole point is that they were paid once) and derives its result-cache
    identity from the template key plus the binding, so different bindings
    never share a memoized result.
    """
    if not values:
        return plan
    concrete = substitute_parameters(plan.term, values)
    binding = ", ".join(f"{name}={values[name]!r}" for name in sorted(values))
    return replace(plan, term=concrete,
                   term_key=f"{plan.term_key} @ [{binding}]")


def _substitute_predicate(predicate: Predicate,
                          values: Mapping[str, object]) -> Predicate:
    if isinstance(predicate, Eq):
        return Eq(predicate.column, _resolve(predicate.value, values))
    if isinstance(predicate, Compare):
        return Compare(predicate.column, predicate.op,
                       _resolve(predicate.value, values))
    if isinstance(predicate, In):
        return In(predicate.column,
                  {_resolve(value, values) for value in predicate.values})
    if isinstance(predicate, And):
        return And(_substitute_predicate(predicate.left, values),
                   _substitute_predicate(predicate.right, values))
    if isinstance(predicate, Or):
        return Or(_substitute_predicate(predicate.left, values),
                  _substitute_predicate(predicate.right, values))
    if isinstance(predicate, Not):
        return Not(_substitute_predicate(predicate.inner, values))
    return predicate


def _resolve(value: object, values: Mapping[str, object]) -> object:
    if isinstance(value, Parameter):
        if value.name not in values:
            raise TranslationError(
                f"unbound parameter :{value.name}; bind() every parameter "
                f"before executing")
        return values[value.name]
    return value


def _walk_parameters(term: Term, names: set[str]) -> None:
    if isinstance(term, Filter):
        _collect_predicate_parameters(term.predicate, names)
    for child in term.children():
        _walk_parameters(child, names)


def _collect_predicate_parameters(predicate: Predicate, names: set[str]) -> None:
    if isinstance(predicate, (Eq, Compare)):
        if isinstance(predicate.value, Parameter):
            names.add(predicate.value.name)
    elif isinstance(predicate, In):
        names.update(value.name for value in predicate.values
                     if isinstance(value, Parameter))
    elif isinstance(predicate, (And, Or)):
        _collect_predicate_parameters(predicate.left, names)
        _collect_predicate_parameters(predicate.right, names)
    elif isinstance(predicate, Not):
        _collect_predicate_parameters(predicate.inner, names)
