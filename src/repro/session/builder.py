"""Programmatic query construction: the third front-end.

:meth:`Session.relation` starts a fluent :class:`PathBuilder` over the
UCRPQ path-expression AST, so programmatic queries go through exactly the
same translation, normalization and planning pipeline as textual ones::

    knows = session.relation("knows")
    query = knows.closure().concat("livesIn").between("?x", "?c")
    # == session.ucrpq("?x,?c <- ?x knows+/livesIn ?c")

Builders are immutable: every combinator returns a new builder, so a
prefix can be shared between several queries.
"""

from __future__ import annotations

from ..errors import TranslationError
from ..query.ast import (Alternation, Atom, Concat, ConjunctiveQuery,
                         Constant, Endpoint, Label, PathExpr, Plus, UCRPQ,
                         Variable)

#: Shapes a builder combinator accepts for "the other path".
PathLike = "PathBuilder | PathExpr | str"


class PathBuilder:
    """Immutable fluent builder over regular path expressions."""

    __slots__ = ("_session", "_path")

    def __init__(self, session, path: PathExpr):
        self._session = session
        self._path = path

    @classmethod
    def label(cls, session, label: str) -> "PathBuilder":
        """Builder for one edge label; a leading ``-`` means inverse."""
        inverse = label.startswith("-")
        name = label[1:] if inverse else label
        return cls(session, Label(name, inverse=inverse))

    # -- Combinators (each returns a new builder) ------------------------------

    def closure(self) -> "PathBuilder":
        """Transitive closure: ``p`` becomes ``p+``."""
        return PathBuilder(self._session, Plus(self._path))

    def concat(self, other: PathLike) -> "PathBuilder":
        """Concatenation: ``p`` becomes ``p/other``."""
        other_path = self._coerce(other)
        parts = (self._path.parts if isinstance(self._path, Concat)
                 else (self._path,))
        return PathBuilder(self._session, Concat(parts + (other_path,)))

    def union(self, other: PathLike) -> "PathBuilder":
        """Alternation: ``p`` becomes ``p|other``."""
        other_path = self._coerce(other)
        options = (self._path.options if isinstance(self._path, Alternation)
                   else (self._path,))
        return PathBuilder(self._session, Alternation(options + (other_path,)))

    def inverse(self) -> "PathBuilder":
        """Reverse the whole path (labels flip, concatenations reverse)."""
        return PathBuilder(self._session, _invert(self._path))

    # -- Terminal: produce a lazy Query handle ---------------------------------

    def between(self, subject: "str | Endpoint", obj: "str | Endpoint",
                head: tuple | None = None):
        """Close the path into a one-atom query between two endpoints.

        Endpoints are ``"?x"``-style variables or bare constants.  The
        head defaults to the variables among the endpoints, in order.
        Returns a lazy :class:`~repro.session.query.Query`.
        """
        subject = _as_endpoint(subject)
        obj = _as_endpoint(obj)
        if head is None:
            head_vars = tuple(endpoint for endpoint in (subject, obj)
                              if isinstance(endpoint, Variable))
        else:
            head_vars = tuple(_as_variable(item) for item in head)
        if not head_vars:
            raise TranslationError(
                "a builder query needs at least one variable endpoint "
                "(or an explicit head)")
        ast = UCRPQ((ConjunctiveQuery(
            head_vars, (Atom(subject, self._path, obj),)),))
        return self._session.ucrpq(ast)

    # -- Introspection ---------------------------------------------------------

    @property
    def path(self) -> PathExpr:
        """The path-expression AST built so far."""
        return self._path

    def __str__(self) -> str:
        return str(self._path)

    def __repr__(self) -> str:
        return f"PathBuilder({self._path})"

    # -- Internal --------------------------------------------------------------

    def _coerce(self, other: PathLike) -> PathExpr:
        if isinstance(other, PathBuilder):
            return other._path
        if isinstance(other, PathExpr):
            return other
        if isinstance(other, str):
            return PathBuilder.label(self._session, other)._path
        raise TranslationError(
            f"cannot use {other!r} as a path expression; pass a builder, "
            f"a PathExpr or an edge-label string")


def _invert(path: PathExpr) -> PathExpr:
    if isinstance(path, Label):
        return Label(path.name, inverse=not path.inverse)
    if isinstance(path, Concat):
        return Concat(tuple(_invert(part) for part in reversed(path.parts)))
    if isinstance(path, Alternation):
        return Alternation(tuple(_invert(option) for option in path.options))
    if isinstance(path, Plus):
        return Plus(_invert(path.inner))
    raise TranslationError(f"cannot invert path expression {path!r}")


def _as_endpoint(value: "str | Endpoint") -> Endpoint:
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str):
        if value.startswith("?"):
            return Variable(value[1:])
        return Constant(value)
    raise TranslationError(
        f"cannot use {value!r} as an endpoint; pass '?var' or a constant")


def _as_variable(value: "str | Variable") -> Variable:
    endpoint = _as_endpoint(value)
    if not isinstance(endpoint, Variable):
        raise TranslationError(f"head entries must be variables, got {value!r}")
    return endpoint
