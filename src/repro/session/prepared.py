"""Prepared, parameterized queries: plan once, bind many times.

A template is ordinary UCRPQ text in which ``:name`` identifiers mark
parameters (the leading colon is legal identifier syntax, so templates go
through the ordinary parser)::

    prepared = session.prepare("?y <- :start knows+ ?y")
    prepared.bind(start="alice").collect()
    prepared.bind(start="bob").collect()      # plan-cache hit

Parameters come in two kinds, detected from where the placeholder sits:

* **value parameters** — a placeholder in endpoint (constant) position.
  The template is translated with a :class:`Parameter` sentinel as the
  filter constant and planned once; every binding substitutes its value
  into the *selected* plan (sound because equality selectivity is
  value-independent — see :mod:`repro.session.parameters`).
* **label parameters** — a placeholder in path (edge label) position.
  The referenced relation (and therefore its statistics) only exists at
  bind time, so the template is planned once **per distinct label
  binding**; re-binding the same label is a plan-cache hit.

The plan cache keys on the parameterized canonical form (the template
term with labels bound and value sentinels in place), so bindings share
one entry while the result cache still distinguishes them.
"""

from __future__ import annotations

from ..errors import TranslationError
from ..query.ast import (Alternation, Atom, Concat, ConjunctiveQuery,
                         Constant, Endpoint, Label, PathExpr, Plus, UCRPQ,
                         Variable)
from ..query.classes import classify_query
from .parameters import PARAMETER_PREFIX, Parameter
from .query import Query


class PreparedQuery:
    """A parameterized query template bound to one session."""

    def __init__(self, session, query: "str | UCRPQ",
                 params: tuple[str, ...] | None = None):
        self.session = session
        self.template = session.parse(query)
        label_params, value_params = _scan_placeholders(self.template)
        found = label_params | value_params
        if params is not None:
            declared = set(params)
            missing = sorted(declared - found)
            if missing:
                raise TranslationError(
                    f"declared parameters {missing} do not appear in the "
                    f"template (write them as :name)")
            undeclared = sorted(found - declared)
            if undeclared:
                raise TranslationError(
                    f"template placeholders {undeclared} are not in the "
                    f"declared params tuple")
        self.label_params = frozenset(label_params)
        self.value_params = frozenset(value_params)
        self.params = tuple(sorted(found))
        #: label-binding -> translated template term (value sentinels in
        #: place).  One entry per distinct label combination; purely a
        #: translation memo — the *plan* memo is the session's plan cache.
        self._template_terms: dict[tuple, object] = {}

    def bind(self, **values: object) -> Query:
        """Bind every parameter; returns a lazy :class:`Query` handle."""
        missing = sorted(set(self.params) - values.keys())
        if missing:
            raise TranslationError(f"unbound parameters {missing}")
        extra = sorted(values.keys() - set(self.params))
        if extra:
            raise TranslationError(
                f"unknown parameters {extra}; template declares "
                f"{list(self.params)}")
        label_values = {name: values[name] for name in self.label_params}
        for name, value in label_values.items():
            if not isinstance(value, str) or not value:
                raise TranslationError(
                    f"label parameter :{name} must bind to a non-empty "
                    f"edge-label string, got {value!r}")
        value_values = {name: values[name] for name in self.value_params}
        bound_ast = _substitute(self.template, label_values,
                                dict(values))
        label_key = tuple(sorted(label_values.items()))
        template_term = self._template_terms.get(label_key)
        if template_term is None:
            sentinels = {name: Parameter(name) for name in self.value_params}
            template_ast = _substitute(self.template, label_values, sentinels)
            template_term = self.session.translate(template_ast)
            self._template_terms[label_key] = template_term
        binding = ", ".join(f"{name}={values[name]!r}"
                            for name in self.params)
        return Query(self.session, ast=bound_ast,
                     classes=classify_query(bound_ast),
                     plan_term=template_term,
                     bindings=value_values,
                     description=f"{self.template} [{binding}]")

    def __repr__(self) -> str:
        return (f"PreparedQuery({str(self.template)!r}, "
                f"params={list(self.params)})")


# -- Template scanning and substitution ----------------------------------------


def _placeholder_name(identifier: str) -> str | None:
    """``:name`` -> ``name``; anything else (incl. ``rdfs:x``) -> None."""
    if identifier.startswith(PARAMETER_PREFIX) and len(identifier) > 1:
        return identifier[1:]
    return None


def _scan_placeholders(query: UCRPQ) -> tuple[set[str], set[str]]:
    labels: set[str] = set()
    values: set[str] = set()
    for rule in query.rules:
        for atom in rule.atoms:
            _scan_path(atom.path, labels)
            for endpoint in (atom.subject, atom.obj):
                if isinstance(endpoint, Constant) and isinstance(
                        endpoint.value, str):
                    name = _placeholder_name(endpoint.value)
                    if name is not None:
                        values.add(name)
    overlap = labels & values
    if overlap:
        raise TranslationError(
            f"parameters {sorted(overlap)} are used both as edge labels "
            f"and as node constants; use distinct names")
    return labels, values


def _scan_path(path: PathExpr, labels: set[str]) -> None:
    if isinstance(path, Label):
        name = _placeholder_name(path.name)
        if name is not None:
            labels.add(name)
    elif isinstance(path, Concat):
        for part in path.parts:
            _scan_path(part, labels)
    elif isinstance(path, Alternation):
        for option in path.options:
            _scan_path(option, labels)
    elif isinstance(path, Plus):
        _scan_path(path.inner, labels)


def _substitute(query: UCRPQ, label_values: dict[str, str],
                value_values: dict[str, object]) -> UCRPQ:
    rules = []
    for rule in query.rules:
        atoms = tuple(
            Atom(_substitute_endpoint(atom.subject, value_values),
                 _substitute_path(atom.path, label_values),
                 _substitute_endpoint(atom.obj, value_values))
            for atom in rule.atoms)
        rules.append(ConjunctiveQuery(rule.head, atoms))
    return UCRPQ(tuple(rules))


def _substitute_path(path: PathExpr, label_values: dict[str, str]) -> PathExpr:
    if isinstance(path, Label):
        name = _placeholder_name(path.name)
        if name is not None and name in label_values:
            return Label(label_values[name], inverse=path.inverse)
        return path
    if isinstance(path, Concat):
        return Concat(tuple(_substitute_path(part, label_values)
                            for part in path.parts))
    if isinstance(path, Alternation):
        return Alternation(tuple(_substitute_path(option, label_values)
                                 for option in path.options))
    if isinstance(path, Plus):
        return Plus(_substitute_path(path.inner, label_values))
    return path


def _substitute_endpoint(endpoint: Endpoint,
                         value_values: dict[str, object]) -> Endpoint:
    if isinstance(endpoint, Variable):
        return endpoint
    if isinstance(endpoint.value, str):
        name = _placeholder_name(endpoint.value)
        if name is not None and name in value_values:
            return Constant(value_values[name])
    return endpoint
