"""The :class:`Session`: one database, one cluster, one staged query pipeline.

A session owns everything a query needs — the database, the statistics
catalog, the plan and result caches, the rewriter and the simulated
cluster — and hands out **lazy query handles** through its front-ends:

* :meth:`Session.ucrpq` — the UCRPQ surface syntax (text or parsed AST),
* :meth:`Session.datalog` — the same queries compiled through the Datalog
  baseline front-end (left-linear recursion, magic sets),
* :meth:`Session.relation` — a programmatic path-expression builder,
* :meth:`Session.term` — raw mu-RA terms (the C7 non-regular workloads),
* :meth:`Session.prepare` — parameterized templates whose bindings share
  one plan-cache entry (see :mod:`repro.session.prepared`).

Every handle exposes the pipeline stages lazily (``.ast``, ``.term``,
``.normalized``, ``.plan()``, ``.explain()``) and executes only when a
terminal action (``collect()``, ``count()``, ``exists()``, ``stream()``,
``submit()``) is invoked::

    from repro import Session
    session = Session(graph, num_workers=4, executor="threads")
    query = session.ucrpq("?x,?y <- ?x knows+ ?y")   # nothing runs yet
    print(query.plan().cost)                          # parse+translate+rank
    rows = query.collect().relation                   # execute

The pipeline stages are shared by every front-end and by the serving layer
(:class:`~repro.service.QueryService`), so cache keys agree no matter how a
query enters the system.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Mapping
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..algebra.evaluate import Evaluator
from ..algebra.schema import schemas_of_database
from ..algebra.terms import Term
from ..algebra.variables import free_variables
from ..cost.selection import RankedPlan, rank_plans
from ..data.graph import INVERSE_PREFIX, PRED, SRC, TRG, LabeledGraph
from ..data.relation import Relation
from ..data.stats import StatisticsCatalog
from ..distributed.cluster import ClusterMetrics, SparkCluster
from ..distributed.executor import SERIAL, ExecutorBackend
from ..distributed.physical import (AUTO, DEFAULT_MEMORY_PER_TASK,
                                    DistributedQueryExecutor)
from ..errors import EvaluationError, SchemaError, TranslationError
from ..query.ast import UCRPQ
from ..query.parser import parse_query
from ..query.translate import translate_query
from ..rewriter.engine import MuRewriter
from ..rewriter.normalize import canonicalize
from ..service.plan_cache import (DEFAULT_PLAN_CACHE_SIZE, CachedPlan,
                                  PlanCache, PlanKey)
from ..service.result_cache import (DEFAULT_RESULT_CACHE_SIZE, ResultCache,
                                    ResultKey)
from .builder import PathBuilder
from .prepared import PreparedQuery
from .query import DatalogQuery, Query


@dataclass
class QueryResult:
    """Everything produced by one query execution."""

    relation: Relation
    selected_plan: Term
    original_plan: Term
    plans_explored: int
    estimated_cost: float
    physical_strategies: tuple[str, ...]
    metrics: ClusterMetrics
    elapsed_seconds: float
    query_classes: frozenset[str] = field(default_factory=frozenset)

    def __len__(self) -> int:
        return len(self.relation)

    def summary(self) -> dict[str, object]:
        """Flat dictionary used by the benchmark reports."""
        summary = {
            "rows": len(self.relation),
            "plans_explored": self.plans_explored,
            "estimated_cost": round(self.estimated_cost, 1),
            "physical": ",".join(self.physical_strategies) or "central",
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "classes": ",".join(sorted(self.query_classes)),
        }
        summary.update(self.metrics.summary())
        return summary


class Session:
    """A Dist-mu-RA session bound to one database and one simulated cluster.

    The session is the single owner of the staged pipeline state: the plan
    cache (rewriter + cost-ranking decisions), the result cache (whole
    memoized executions), the statistics catalog and the execution lock
    that serializes cluster use.  ``enable_plan_cache`` /
    ``enable_result_cache`` set the session-wide defaults; callers (the
    serving layer, individual actions) can override per call.
    """

    def __init__(self, data: LabeledGraph | Mapping[str, Relation],
                 num_workers: int = 4,
                 optimize: bool = True,
                 strategy: str = AUTO,
                 executor: str | ExecutorBackend = SERIAL,
                 memory_per_task: int = DEFAULT_MEMORY_PER_TASK,
                 max_plans: int = 64,
                 max_rounds: int = 8,
                 *,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
                 result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
                 enable_plan_cache: bool = True,
                 enable_result_cache: bool = True):
        if isinstance(data, LabeledGraph):
            self.database: dict[str, Relation] = data.relations()
        else:
            self.database = dict(data)
        self.cluster = SparkCluster(num_workers=num_workers, executor=executor)
        self.optimize_plans = optimize
        self.strategy = strategy
        self.memory_per_task = memory_per_task
        self.rewriter = MuRewriter(max_plans=max_plans, max_rounds=max_rounds)
        self._schemas = schemas_of_database(self.database)
        #: Persistent statistics used by the cost-based plan ranking.  The
        #: mutation API refreshes the touched entries, so estimates always
        #: reflect the current data (see :meth:`add_edges`).
        self.catalog = StatisticsCatalog(self.database)
        #: Monotonic counters tracking mutations: the database version is
        #: bumped on every mutation, and each touched relation records the
        #: version it was last changed at.  Both caches key on these.
        self._database_version = 0
        self._relation_versions: dict[str, int] = dict.fromkeys(self.database, 0)
        self.enable_plan_cache = enable_plan_cache
        self.enable_result_cache = enable_result_cache
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = ResultCache(result_cache_size)
        #: Serializes cluster executions and mutations: the cluster's
        #: executor backend and metrics are single-caller by design.  The
        #: plan phase deliberately runs outside this lock.
        self.execution_lock = threading.RLock()
        self._background: ThreadPoolExecutor | None = None
        self._background_lock = threading.Lock()
        #: Memoized extensional database for the Datalog front-end,
        #: tagged with the database version it was extracted at.
        self._datalog_edb: dict[str, set[tuple]] | None = None
        self._datalog_edb_version = -1

    # -- Front-ends -----------------------------------------------------------------

    def ucrpq(self, query: str | UCRPQ, strategy: str | None = None) -> Query:
        """Lazy handle for a UCRPQ (text or parsed AST).  Nothing runs yet."""
        if isinstance(query, str):
            return Query(self, text=query, strategy=strategy)
        return Query(self, ast=query, strategy=strategy)

    def datalog(self, query: str | UCRPQ, use_magic: bool = True) -> DatalogQuery:
        """The same UCRPQ, compiled through the Datalog baseline front-end."""
        if isinstance(query, str):
            return DatalogQuery(self, text=query, use_magic=use_magic)
        return DatalogQuery(self, ast=query, use_magic=use_magic)

    def term(self, term: Term,
             classes: frozenset[str] = frozenset({"C7"}),
             strategy: str | None = None) -> Query:
        """Lazy handle for a raw mu-RA term (non-regular C7 workloads)."""
        return Query(self, term=term, classes=classes, strategy=strategy)

    def relation(self, label: str) -> PathBuilder:
        """Start a programmatic path query from one edge label.

        ``session.relation("a").closure().concat("b").between("?x", "?y")``
        builds the same query as ``session.ucrpq("?x,?y <- ?x a+/b ?y")``.
        """
        return PathBuilder.label(self, label)

    def prepare(self, query: str | UCRPQ,
                params: tuple[str, ...] | None = None) -> PreparedQuery:
        """Prepare a parameterized template (placeholders ``:name``).

        Every :meth:`~repro.session.prepared.PreparedQuery.bind` after the
        first is a plan-cache hit: the template is explored and ranked
        once, and each binding substitutes its values into the selected
        plan (see :mod:`repro.session.prepared`).
        """
        return PreparedQuery(self, query, params=params)

    def as_query(self, query: "str | UCRPQ | Term | Query") -> Query:
        """Coerce any supported query form into a lazy :class:`Query` handle."""
        if isinstance(query, Query):
            if query.session is not self:
                raise TranslationError(
                    "the query handle belongs to a different session")
            return query
        if isinstance(query, Term):
            return self.term(query, classes=frozenset())
        return self.ucrpq(query)

    # -- Pipeline stages -----------------------------------------------------------

    def parse(self, query: str | UCRPQ) -> UCRPQ:
        """Parse UCRPQ text (ASTs pass through unchanged)."""
        return parse_query(query) if isinstance(query, str) else query

    def translate(self, query: str | UCRPQ) -> Term:
        """Parse (if needed) and translate a UCRPQ into a mu-RA term.

        Raises :class:`~repro.errors.TranslationError` for labels the
        database does not have.  (Prepared templates never hit this with a
        ``:name`` placeholder: label parameters are substituted with their
        concrete labels before the template is translated.)
        """
        parsed = self.parse(query)
        missing = sorted(label for label in parsed.labels()
                         if label not in self.database)
        if missing:
            raise TranslationError(
                f"query references unknown edge labels {missing}")
        return translate_query(parsed)

    def optimize(self, term: Term) -> tuple[RankedPlan, list[RankedPlan]]:
        """Explore equivalent plans and rank them with the cost model.

        This is the raw (uncached) explore+rank; :meth:`resolve_plan` is
        the cached entry point the pipeline uses.  Ranking reads the
        session's persistent :attr:`catalog`, so cost estimates follow
        mutations instead of being recomputed from the full database.
        """
        plans = self.rewriter.explore(term, self._schemas)
        ranked = rank_plans(plans, catalog=self.catalog)
        return ranked[0], ranked

    def resolve_plan(self, term: Term, strategy: str | None = None, *,
                     use_cache: bool | None = None,
                     ) -> tuple[CachedPlan, bool | None, PlanKey | None]:
        """The shared plan phase: cache lookup, explore+rank, cache store.

        Returns ``(plan, cache_hit, key)``.  ``cache_hit`` is ``None``
        when the cache was not consulted (caching disabled, or the
        optimizer is off and the term is used as-is).  This method is the
        single plan path for every front-end and for the serving layer, so
        their cache keys agree by construction.
        """
        if not self.optimize_plans:
            selected = canonicalize(term)
            return CachedPlan(term=selected, cost=float("nan"),
                              plans_explored=1,
                              dependencies=free_variables(selected)), None, None
        use_cache = self.enable_plan_cache if use_cache is None else use_cache
        if use_cache:
            key = PlanKey.of(self, term, free_variables(term), strategy)
            cached = self.plan_cache.get(key)
            if cached is not None:
                return cached, True, key
        best, ranked = self.optimize(term)
        plan = CachedPlan(term=best.term, cost=best.cost,
                          plans_explored=len(ranked),
                          dependencies=free_variables(best.term))
        if not use_cache:
            # No key either: callers use it for write-backs (the physical
            # strategies patch), which must not touch a disabled cache.
            return plan, None, None
        self.plan_cache.put(key, plan)
        return plan, False, key

    def execute_plan(self, plan: CachedPlan, strategy: str | None = None,
                     classes: frozenset[str] = frozenset(), *,
                     use_result_cache: bool | None = None,
                     plan_key: PlanKey | None = None,
                     ) -> tuple[QueryResult, bool | None]:
        """Execute a selected plan under the execution lock.

        Consults the result cache first (a hit skips the cluster
        entirely); on a miss the plan runs with the rewriter disabled and
        the result is memoized against the current relation versions.
        Returns ``(result, result_cache_hit)``.
        """
        use_cache = (self.enable_result_cache if use_result_cache is None
                     else use_result_cache)
        effective = strategy if strategy is not None else self.strategy
        result_key = ResultKey(plan_key=plan.term_key, strategy=effective,
                               num_workers=self.cluster.num_workers,
                               memory_per_task=self.memory_per_task)
        with self.execution_lock:
            if use_cache:
                cached = self.result_cache.lookup(result_key, self)
                if cached is not None:
                    return cached, True
            result = self.execute_term(plan.term, strategy=strategy,
                                       query_classes=classes, optimize=False)
            # Patch in what the plan phase knew and the cache-skipping
            # re-execution did not (plan count, estimated selection cost).
            result.plans_explored = plan.plans_explored
            result.estimated_cost = plan.cost
            if use_cache:
                self.result_cache.store(result_key, result,
                                        plan.dependencies, self)
            if plan_key is not None and not plan.physical_strategies:
                self.plan_cache.put(plan_key, plan.with_strategies(
                    result.physical_strategies))
        return result, (False if use_cache else None)

    # -- Execution ------------------------------------------------------------------

    def execute_term(self, term: Term, strategy: str | None = None,
                     query_classes: frozenset[str] = frozenset(),
                     optimize: bool | None = None) -> QueryResult:
        """Optimize (optionally) and execute a mu-RA term.

        ``optimize`` overrides the session default for this call; the
        staged pipeline passes ``False`` when it executes a plan it
        already selected (and cached), skipping the rewriter and ranking.
        """
        started = time.perf_counter()
        original = term
        plans_explored = 1
        estimated_cost = float("nan")
        should_optimize = self.optimize_plans if optimize is None else optimize
        if should_optimize:
            best, ranked = self.optimize(term)
            term = best.term
            plans_explored = len(ranked)
            estimated_cost = best.cost
        with self.execution_lock:
            self.cluster.reset_metrics()
            executor = DistributedQueryExecutor(
                self.cluster, self.database,
                strategy=strategy if strategy is not None else self.strategy,
                memory_per_task=self.memory_per_task)
            outcome = executor.execute(term)
            metrics = self.cluster.metrics
        elapsed = time.perf_counter() - started
        return QueryResult(
            relation=outcome.relation,
            selected_plan=term,
            original_plan=original,
            plans_explored=plans_explored,
            estimated_cost=estimated_cost,
            physical_strategies=outcome.strategies,
            metrics=metrics,
            elapsed_seconds=elapsed,
            query_classes=query_classes,
        )

    def evaluate_centralized(self, term: Term) -> Relation:
        """Reference single-node evaluation (used for testing and baselines)."""
        return Evaluator(self.database).evaluate(term)

    def datalog_edb(self) -> dict[str, set[tuple]]:
        """Per-label EDB predicates for the Datalog front-end (memoized).

        Recomputed after mutations (the memo is tagged with the database
        version).  The snapshot is taken under the execution lock so a
        concurrent mutation can neither change the dictionary mid-iteration
        nor let a half-old EDB be memoized under the new version tag.
        """
        with self.execution_lock:
            if self._datalog_edb is None \
                    or self._datalog_edb_version != self._database_version:
                from ..baselines.datalog.translate import database_to_edb
                self._datalog_edb = database_to_edb(self.database)
                self._datalog_edb_version = self._database_version
            return self._datalog_edb

    def submit_action(self, action) -> Future:
        """Run a terminal action on the session's background worker.

        Used by :meth:`Query.submit`; the worker is created lazily and
        shut down by :meth:`close`.  Executions still serialize on the
        session's execution lock, so background and foreground actions
        never oversubscribe the cluster.
        """
        with self._background_lock:
            if self._background is None:
                self._background = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="session-submit")
            return self._background.submit(action)

    # -- Mutations and versioning ---------------------------------------------------

    @property
    def database_version(self) -> int:
        """Monotonic counter bumped by every mutation of the session."""
        return self._database_version

    def relation_version(self, name: str) -> int:
        """Version at which relation ``name`` last changed (0 = unchanged)."""
        return self._relation_versions.get(name, 0)

    def relation_versions(self, names: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """Sorted ``(name, version)`` snapshot of the given relations.

        Unknown names are included with version 0, so a cache entry built
        before a relation existed is invalidated when it appears.
        """
        return tuple((name, self.relation_version(name))
                     for name in sorted(set(names)))

    def add_edges(self, label: str,
                  pairs: Iterable[tuple[object, object]]) -> tuple[str, ...]:
        """Add ``(src, trg)`` edges to the ``label`` relation.

        The inverse relation ``-label`` and the ``facts`` triple table (when
        the database has them) are kept consistent, the touched relations'
        statistics are refreshed in :attr:`catalog`, the database version
        is bumped, and the dependent plan/result cache entries are purged.
        Returns the names of the touched relations.
        """
        return self._apply_edge_mutation(label, pairs, removing=False)

    def remove_edges(self, label: str,
                     pairs: Iterable[tuple[object, object]]) -> tuple[str, ...]:
        """Remove ``(src, trg)`` edges from the ``label`` relation.

        Same consistency and invalidation contract as :meth:`add_edges`.
        """
        return self._apply_edge_mutation(label, pairs, removing=True)

    def _apply_edge_mutation(self, label: str, pairs, removing: bool) -> tuple[str, ...]:
        if label.startswith(INVERSE_PREFIX):
            raise TranslationError(
                f"mutate the base relation {label[len(INVERSE_PREFIX):]!r} "
                f"instead of the inverse {label!r}")
        edge_pairs = {(src, trg) for src, trg in pairs}
        # The whole mutation — planning, validation, application, version
        # bump and cache purge — runs under the execution lock, so no
        # concurrent mutation or in-flight execution can interleave with a
        # half-applied change (the lock is re-entrant: the serving layer's
        # workers may already hold it).
        with self.execution_lock:
            return self._mutate_locked(label, edge_pairs, removing)

    def _mutate_locked(self, label: str, edge_pairs: set, removing: bool) -> tuple[str, ...]:
        if removing and label not in self.database:
            raise EvaluationError(
                f"cannot remove edges from unknown relation {label!r}")
        existing = self.database.get(label)
        inverse = INVERSE_PREFIX + label
        # Plan and validate every delta *before* touching the database, so a
        # schema mismatch anywhere leaves the session completely unchanged
        # (a partial mutation would desynchronize versions and caches).
        planned: list[tuple[str, Relation | None, Relation]] = []
        delta = Relation.from_pairs(edge_pairs, columns=(SRC, TRG))
        planned.append((label, existing, delta))
        if inverse in self.database or existing is None:
            inverse_delta = Relation.from_pairs(
                {(trg, src) for src, trg in edge_pairs}, columns=(SRC, TRG))
            planned.append((inverse, self.database.get(inverse), inverse_delta))
        facts = self.database.get("facts")
        if facts is not None and facts.columns == tuple(sorted((SRC, PRED, TRG))):
            # Rows align with the sorted schema ('pred', 'src', 'trg').
            fact_delta = Relation(facts.columns,
                                  [(label, src, trg) for src, trg in edge_pairs])
            planned.append(("facts", facts, fact_delta))
        for name, current, name_delta in planned:
            if current is not None and current.columns != name_delta.columns:
                raise SchemaError(
                    f"relation {name!r} has schema {current.columns}; the "
                    f"edge mutation API only supports {name_delta.columns} "
                    f"relations")
        touched: list[str] = []
        for name, current, name_delta in planned:
            base = (current if current is not None
                    else Relation.empty(name_delta.columns))
            self.database[name] = (base.difference(name_delta) if removing
                                   else base.union(name_delta))
            touched.append(name)
        # Refresh the statistics *before* bumping the versions: a concurrent
        # reader (the unlocked plan phase) that observes the new fingerprint
        # must also observe the new statistics, otherwise it could cache a
        # stale-ranked plan under a current-looking key.  The reverse
        # interleaving (old fingerprint, new statistics) only wastes a cache
        # slot that never hits again.
        for name in touched:
            self.catalog.refresh(name, self.database[name])
        self._schemas = schemas_of_database(self.database)
        self._database_version += 1
        for name in touched:
            self._relation_versions[name] = self._database_version
        self.plan_cache.invalidate_relations(touched)
        self.result_cache.invalidate_relations(touched)
        return tuple(touched)

    # -- Lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release the cluster's executor pools and the background worker."""
        with self._background_lock:
            if self._background is not None:
                self._background.shutdown(wait=True)
                self._background = None
        self.cluster.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- Introspection -----------------------------------------------------------------

    def explain(self, query: str | UCRPQ) -> str:
        """Return a human-readable account of the optimisation of a query."""
        return self.ucrpq(query).explain()

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(relations={len(self.database)}, "
                f"workers={self.cluster.num_workers}, "
                f"executor={self.cluster.executor.name!r}, "
                f"optimize={self.optimize_plans}, strategy={self.strategy!r})")
