"""The :class:`Session`: snapshot-isolated graphs, one staged query pipeline.

A session owns everything a query needs — the cluster, the rewriter, the
execution lock and one or more **named graphs**, each held as an
immutable, versioned :class:`~repro.data.snapshot.DatabaseSnapshot` —
and hands out **lazy query handles** through its front-ends:

* :meth:`Session.ucrpq` — the UCRPQ surface syntax (text or parsed AST),
* :meth:`Session.datalog` — the same queries compiled through the Datalog
  baseline front-end (left-linear recursion, magic sets),
* :meth:`Session.relation` — a programmatic path-expression builder,
* :meth:`Session.term` — raw mu-RA terms (the C7 non-regular workloads),
* :meth:`Session.prepare` — parameterized templates whose bindings share
  one plan-cache entry (see :mod:`repro.session.prepared`).

Every handle exposes the pipeline stages lazily (``.ast``, ``.term``,
``.normalized``, ``.plan()``, ``.explain()``) and executes only when a
terminal action (``collect()``, ``count()``, ``exists()``, ``stream()``,
``submit()``) is invoked::

    from repro import Session
    session = Session(graph, num_workers=4, executor="threads")
    query = session.ucrpq("?x,?y <- ?x knows+ ?y")   # nothing runs yet
    print(query.plan().cost)                          # parse+translate+rank
    rows = query.collect().relation                   # execute

**Data ownership.**  The database behind a session is never edited in
place.  :meth:`add_edges` / :meth:`remove_edges` (or a batched
:meth:`transaction`) build a *successor* snapshot by copy-on-write —
unchanged relations, and therefore their memoized hash indexes, are
shared across versions — and atomically swap the graph's head.  A query
handle pins the head snapshot the first time one of its stages runs, so
``collect()`` / ``stream()`` / a prepared ``bind()`` are repeatable reads
at a well-defined version even while writers commit.  Plan- and
result-cache keys carry the snapshot fingerprint, so mutations never
purge caches, and the plan phase and result-cache hits run entirely
outside the execution lock — only physical executions still serialize on
the cluster's executor backend.

**Multi-graph.**  :meth:`attach` registers additional named graphs and
:meth:`graph` returns a session view scoped to one of them (own head,
own version counters, own plan/result caches; shared cluster, rewriter
and execution lock), so one service instance serves many datasets.
:meth:`read_view` returns a view pinned to the current head for
long-running analyses.
"""

from __future__ import annotations

import contextvars
import time
from collections import ChainMap
from collections.abc import Iterable, Mapping
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..algebra.evaluate import Evaluator
from ..algebra.kernels import KernelProgramCache
from ..check.sanitizer import OrderedLock, ordered_lock, ordered_rlock
from ..algebra.terms import Term
from ..algebra.variables import free_variables
from ..cost.selection import RankedPlan, rank_plans
from ..data.columnar import columnar_enabled
from ..data.graph import INVERSE_PREFIX, PRED, SRC, TRG, LabeledGraph
from ..data.relation import Relation
from ..data.snapshot import DEFAULT_GRAPH, DatabaseSnapshot
from ..distributed.cluster import ClusterMetrics, SparkCluster
from ..distributed.executor import SERIAL, ExecutorBackend
from ..distributed.physical import (AUTO, DEFAULT_MEMORY_PER_TASK,
                                    DistributedQueryExecutor)
from ..errors import (DatasetError, EvaluationError, SchemaError,
                      TransactionError, TranslationError)
from ..obs import tracing
from ..obs.logs import get_logger, log_event
from ..obs.metrics import get_registry
from ..query.ast import UCRPQ
from ..query.parser import parse_query
from ..query.translate import translate_query
from ..rewriter.engine import MuRewriter
from ..rewriter.normalize import canonicalize
from ..service.plan_cache import (DEFAULT_PLAN_CACHE_SIZE, CachedPlan,
                                  PlanCache, PlanKey)
from ..service.result_cache import (DEFAULT_RESULT_CACHE_SIZE, ResultCache,
                                    ResultKey)
from ..service.view_maintenance import MaintenanceStats, ViewMaintainer
from .builder import PathBuilder
from .prepared import PreparedQuery
from .query import DatalogQuery, Query

#: Module logger (JSON-lines once ``repro.obs.configure_logging()`` ran).
_LOGGER = get_logger("repro.session")


@dataclass
class QueryResult:
    """Everything produced by one query execution."""

    relation: Relation
    selected_plan: Term
    original_plan: Term
    plans_explored: int
    estimated_cost: float
    physical_strategies: tuple[str, ...]
    metrics: ClusterMetrics
    elapsed_seconds: float
    query_classes: frozenset[str] = field(default_factory=frozenset)
    #: Version of the snapshot the execution read (``None`` only for
    #: results produced before this field existed).  The serving tier
    #: reports it so clients know exactly which committed state a
    #: response observed.
    snapshot_version: int | None = None

    def __len__(self) -> int:
        return len(self.relation)

    def summary(self) -> dict[str, object]:
        """Flat dictionary used by the benchmark reports."""
        summary = {
            "rows": len(self.relation),
            "plans_explored": self.plans_explored,
            "estimated_cost": round(self.estimated_cost, 1),
            "physical": ",".join(self.physical_strategies) or "central",
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "classes": ",".join(sorted(self.query_classes)),
        }
        summary.update(self.metrics.summary())
        return summary


@dataclass
class GraphState:
    """The mutable cell of one named graph: head pointer + caches.

    The *snapshots* are immutable; this cell is the only mutable thing —
    the head reference is swapped atomically under :attr:`commit_lock`
    by commits, and the version-keyed caches are appended to by readers.
    Session views of the same graph all share one ``GraphState``.
    """

    name: str
    head: DatabaseSnapshot
    plan_cache: PlanCache
    result_cache: ResultCache
    commit_lock: OrderedLock = field(
        default_factory=lambda: ordered_rlock("session.commit"))


class Transaction:
    """A batch of edge mutations committed as one snapshot.

    Mutations recorded through :meth:`add_edges` / :meth:`remove_edges`
    are buffered; :meth:`commit` validates and applies them all against
    the head at commit time and swaps in a **single** successor snapshot
    (one version bump), or applies nothing at all if any of them is
    invalid.  :meth:`rollback` discards the buffer.  As a context
    manager the transaction commits on a clean exit and rolls back when
    the body raises::

        with session.transaction() as txn:
            txn.add_edges("knows", [("a", "b")])
            txn.remove_edges("worksAt", [("a", "cnrs")])
        # one commit, one new snapshot version
    """

    def __init__(self, session: "Session"):
        self._session = session
        self._ops: list[tuple[str, set, bool]] = []
        self._outcome: str | None = None

    def add_edges(self, label: str,
                  pairs: Iterable[tuple[object, object]]) -> "Transaction":
        """Buffer an edge addition; applied at :meth:`commit`."""
        return self._buffer(label, pairs, removing=False)

    def remove_edges(self, label: str,
                     pairs: Iterable[tuple[object, object]]) -> "Transaction":
        """Buffer an edge removal; applied at :meth:`commit`."""
        return self._buffer(label, pairs, removing=True)

    def _buffer(self, label: str, pairs, removing: bool) -> "Transaction":
        if self._outcome is not None:
            raise TransactionError(
                f"this transaction was already {self._outcome}")
        self._session._check_mutable()
        _check_not_inverse(label)
        self._ops.append((label, {(s, t) for s, t in pairs}, removing))
        return self

    def commit(self) -> tuple[str, ...]:
        """Apply every buffered mutation as one atomic snapshot swap.

        Returns the names of the touched relations (empty when the whole
        batch is a no-op, in which case no new snapshot is created).  A
        validation failure applies nothing and leaves the transaction
        open, so the caller can still :meth:`rollback` (or fix the
        buffer's problem and retry through a new transaction).
        """
        if self._outcome is not None:
            raise TransactionError(
                f"this transaction was already {self._outcome}")
        touched = self._session._commit_ops(self._ops)
        self._outcome = "committed"
        return touched

    def rollback(self) -> None:
        """Discard the buffered mutations; the head is left untouched."""
        if self._outcome is not None:
            raise TransactionError(
                f"this transaction was already {self._outcome}")
        self._outcome = "rolled back"
        self._ops.clear()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, *exc_info: object) -> None:
        if self._outcome is not None:
            return
        if exc_type is not None:
            self.rollback()
        else:
            self.commit()

    def __repr__(self) -> str:
        state = self._outcome or "open"
        return f"Transaction(ops={len(self._ops)}, {state})"


def _is_unchanged(current: Relation | None, updated: Relation) -> bool:
    """Whether committing ``updated`` over ``current`` would change nothing.

    A missing relation that would be committed empty counts as unchanged
    (the batch created and then emptied it).  The length pre-check keeps
    the common changed case O(1); full row comparison only runs for
    equal-size relations.
    """
    if current is None:
        return len(updated) == 0
    return len(current) == len(updated) and current == updated


def _check_not_inverse(label: str) -> None:
    if label.startswith(INVERSE_PREFIX):
        raise TranslationError(
            f"mutate the base relation {label[len(INVERSE_PREFIX):]!r} "
            f"instead of the inverse {label!r}")


class Session:
    """A Dist-mu-RA session bound to named graph snapshots and one cluster.

    The session is the single owner of the staged pipeline state: per
    graph, the head :class:`~repro.data.snapshot.DatabaseSnapshot`, the
    plan cache (rewriter + cost-ranking decisions) and the result cache
    (whole memoized executions); shared across graphs, the cluster, the
    rewriter and the execution lock that serializes physical cluster
    use.  ``enable_plan_cache`` / ``enable_result_cache`` set the
    session-wide defaults; callers (the serving layer, individual
    actions) can override per call.
    """

    def __init__(self, data: "LabeledGraph | Mapping[str, Relation] | DatabaseSnapshot",
                 num_workers: int = 4,
                 optimize: bool = True,
                 strategy: str = AUTO,
                 executor: str | ExecutorBackend = SERIAL,
                 memory_per_task: int = DEFAULT_MEMORY_PER_TASK,
                 max_plans: int = 64,
                 max_rounds: int = 8,
                 *,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
                 result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
                 enable_plan_cache: bool = True,
                 enable_result_cache: bool = True,
                 view_maintenance: str = "sync"):
        if view_maintenance not in ("sync", "async", "off"):
            raise DatasetError(
                f"view_maintenance must be 'sync', 'async' or 'off', "
                f"got {view_maintenance!r}")
        self.cluster = SparkCluster(num_workers=num_workers, executor=executor)
        self.optimize_plans = optimize
        self.strategy = strategy
        self.memory_per_task = memory_per_task
        self.rewriter = MuRewriter(max_plans=max_plans, max_rounds=max_rounds)
        self.enable_plan_cache = enable_plan_cache
        self.enable_result_cache = enable_result_cache
        self._plan_cache_size = plan_cache_size
        self._result_cache_size = result_cache_size
        #: How cached results are maintained across commits: "sync" runs
        #: the :class:`~repro.service.view_maintenance.ViewMaintainer`
        #: under the commit lock (callers observe maintained entries as
        #: soon as the commit returns), "async" runs it on the background
        #: worker, "off" restores the stale-until-recomputed behaviour.
        self.view_maintenance = view_maintenance
        self.view_maintainer = ViewMaintainer()
        self._last_maintenance: MaintenanceStats | None = None
        #: Serializes physical cluster executions: the cluster's executor
        #: backend and metrics are single-caller by design.  The plan
        #: phase, result-cache hits and mutations all run outside it.
        self.execution_lock = ordered_rlock("session.execution")
        self._background: ThreadPoolExecutor | None = None
        self._background_lock = ordered_lock("session.background")
        #: Named graphs of the session.  Every session view of a graph
        #: shares its ``GraphState`` cell (head pointer + caches).
        self._graphs: dict[str, GraphState] = {}
        self._graphs_lock = ordered_lock("session.graphs")
        self._graph_views: dict[str, Session] = {}
        #: This object's scope: which graph it addresses, and (for read
        #: views) the snapshot it is pinned to instead of the live head.
        self._root: Session = self
        self._graph_name = DEFAULT_GRAPH
        self._pinned: DatabaseSnapshot | None = None
        self.attach(DEFAULT_GRAPH, data)

    # -- Graphs and snapshots --------------------------------------------------------

    def attach(self, name: str,
               data: "LabeledGraph | Mapping[str, Relation] | DatabaseSnapshot",
               ) -> DatabaseSnapshot:
        """Register ``data`` as the named graph ``name`` (version 0).

        Accepts a :class:`LabeledGraph`, a plain ``name -> Relation``
        mapping, or an existing :class:`DatabaseSnapshot`.  Each graph
        gets its own head, version counters and plan/result caches, so
        queries, mutations and cache entries of different graphs never
        interfere.  Returns the attached snapshot.
        """
        snapshot = self._as_snapshot(name, data)
        root = self._root
        with self._graphs_lock:
            if name in self._graphs:
                raise DatasetError(
                    f"a graph named {name!r} is already attached; "
                    f"detach() it first")
            self._graphs[name] = GraphState(
                name=name, head=snapshot,
                plan_cache=PlanCache(root._plan_cache_size),
                result_cache=ResultCache(root._result_cache_size))
        return snapshot

    def detach(self, name: str) -> None:
        """Forget the named graph (its caches and head are dropped).

        Snapshots already pinned by in-flight handles remain readable
        *as data* (they are immutable objects), but the name stops
        resolving: any further pipeline operation through the detached
        graph — including actions on handles that pinned before the
        detach — raises :class:`~repro.errors.DatasetError`, because
        the graph's cache and head cell are gone.  Detach is an
        administrative operation; quiesce the graph's traffic first.
        """
        if name == DEFAULT_GRAPH:
            raise DatasetError("the default graph cannot be detached")
        with self._graphs_lock:
            if name not in self._graphs:
                raise DatasetError(f"no graph named {name!r} is attached")
            del self._graphs[name]
            self._root._graph_views.pop(name, None)

    def graphs(self) -> tuple[str, ...]:
        """The sorted names of the attached graphs."""
        with self._graphs_lock:
            return tuple(sorted(self._graphs))

    def graph(self, name: str) -> "Session":
        """A session view scoped to the named graph.

        The view shares the cluster, the rewriter, the execution lock
        and the graph's ``GraphState`` cell with this session — it is a
        front-end scope, not a copy — so ``session.graph("yago")
        .ucrpq(...)`` plans, caches and executes against the "yago"
        head.  Views are memoized per name and safe to share across
        threads; closing a view is a no-op (the root session owns the
        shared resources).
        """
        if name == self._graph_name and self._pinned is None:
            return self
        self._require_graph(name)
        root = self._root
        with root._graphs_lock:
            view = root._graph_views.get(name)
            if view is None:
                view = _SessionView(root, name, pinned=None)
                root._graph_views[name] = view
            return view

    def read_view(self) -> "Session":
        """A read-only session view pinned to the current head snapshot.

        Every query planned or executed through the view — no matter
        when — reads the snapshot that was the head when ``read_view()``
        was called; mutations through the view raise
        :class:`~repro.errors.TransactionError`.  Useful for long
        analyses that must not observe concurrent commits.
        """
        return _SessionView(self._root, self._graph_name,
                            pinned=self.snapshot())

    @property
    def graph_name(self) -> str:
        """Name of the graph this session object is scoped to."""
        return self._graph_name

    def snapshot(self) -> DatabaseSnapshot:
        """The database this session object currently reads.

        For a live session (or graph view) this is the graph's head —
        the latest committed version; for a :meth:`read_view` it is the
        pinned snapshot.  The returned object is immutable: it can be
        queried, iterated, shipped or compared at leisure regardless of
        later commits.
        """
        if self._pinned is not None:
            return self._pinned
        return self._state.head

    @property
    def database(self) -> DatabaseSnapshot:
        """Legacy alias for :meth:`snapshot` (a read-only mapping).

        Pre-snapshot code read and mutated ``session.database`` as a
        plain dict.  The attribute now returns the immutable head
        snapshot — all read patterns (``session.database["knows"]``,
        ``len(...)``, ``.items()``) keep working; writers must go
        through :meth:`add_edges` / :meth:`remove_edges` /
        :meth:`transaction`.  See the migration table in ``README.md``.
        """
        return self.snapshot()

    @property
    def _state(self) -> GraphState:
        state = self._root._graphs.get(self._graph_name)
        if state is None:
            raise DatasetError(
                f"graph {self._graph_name!r} is no longer attached")
        return state

    def _require_graph(self, name: str) -> None:
        if name not in self._root._graphs:
            raise DatasetError(
                f"no graph named {name!r} is attached "
                f"(attached: {list(self.graphs())})")

    @staticmethod
    def _as_snapshot(name: str, data) -> DatabaseSnapshot:
        if isinstance(data, DatabaseSnapshot):
            # Re-label under the attach name (e.g. attaching a copy of
            # another graph's head), so diagnostics and every successor
            # snapshot report the graph they actually serve.
            return data.relabeled(name)
        if isinstance(data, LabeledGraph):
            return DatabaseSnapshot.from_graph(data, graph_name=name)
        return DatabaseSnapshot.from_relations(data, graph_name=name)

    # -- Cache plumbing --------------------------------------------------------------

    @property
    def plan_cache(self) -> PlanCache:
        """The plan cache of this session's graph."""
        return self._state.plan_cache

    @plan_cache.setter
    def plan_cache(self, cache: PlanCache) -> None:
        self._state.plan_cache = cache

    @property
    def result_cache(self) -> ResultCache:
        """The result cache of this session's graph."""
        return self._state.result_cache

    @result_cache.setter
    def result_cache(self, cache: ResultCache) -> None:
        self._state.result_cache = cache

    def configure_caches(self, plan_cache_size: int,
                         result_cache_size: int) -> None:
        """Install fresh plan/result caches of the given sizes everywhere.

        Replaces the caches of every attached graph and records the
        sizes for graphs attached later.  Used by the serving layer,
        which owns the caching configuration of the session it fronts.
        """
        root = self._root
        root._plan_cache_size = plan_cache_size
        root._result_cache_size = result_cache_size
        with root._graphs_lock:
            for state in root._graphs.values():
                state.plan_cache = PlanCache(plan_cache_size)
                state.result_cache = ResultCache(result_cache_size)

    @property
    def catalog(self):
        """The statistics catalog of the snapshot this session reads.

        Statistics are snapshot-scoped: they travel with the immutable
        snapshot so the unlocked plan phase always pairs a fingerprint
        with the statistics computed from the same data.
        """
        return self.snapshot().catalog

    # -- Front-ends -----------------------------------------------------------------

    def ucrpq(self, query: str | UCRPQ, strategy: str | None = None) -> Query:
        """Lazy handle for a UCRPQ (text or parsed AST).  Nothing runs yet."""
        if isinstance(query, str):
            return Query(self, text=query, strategy=strategy)
        return Query(self, ast=query, strategy=strategy)

    def datalog(self, query: str | UCRPQ, use_magic: bool = True) -> DatalogQuery:
        """The same UCRPQ, compiled through the Datalog baseline front-end."""
        if isinstance(query, str):
            return DatalogQuery(self, text=query, use_magic=use_magic)
        return DatalogQuery(self, ast=query, use_magic=use_magic)

    def term(self, term: Term,
             classes: frozenset[str] = frozenset({"C7"}),
             strategy: str | None = None) -> Query:
        """Lazy handle for a raw mu-RA term (non-regular C7 workloads)."""
        return Query(self, term=term, classes=classes, strategy=strategy)

    def relation(self, label: str) -> PathBuilder:
        """Start a programmatic path query from one edge label.

        ``session.relation("a").closure().concat("b").between("?x", "?y")``
        builds the same query as ``session.ucrpq("?x,?y <- ?x a+/b ?y")``.
        """
        return PathBuilder.label(self, label)

    def prepare(self, query: str | UCRPQ,
                params: tuple[str, ...] | None = None) -> PreparedQuery:
        """Prepare a parameterized template (placeholders ``:name``).

        Every :meth:`~repro.session.prepared.PreparedQuery.bind` after the
        first is a plan-cache hit: the template is explored and ranked
        once, and each binding substitutes its values into the selected
        plan (see :mod:`repro.session.prepared`).  Each ``bind()``
        returns a fresh handle that pins the head snapshot of *its*
        first stage run, so re-binding after a commit sees the new head
        while in-flight bindings keep their version.
        """
        return PreparedQuery(self, query, params=params)

    def as_query(self, query: "str | UCRPQ | Term | Query | DatalogQuery",
                 ) -> "Query | DatalogQuery":
        """Coerce any supported query form into a lazy query handle.

        Pre-built handles (:class:`Query` and :class:`DatalogQuery`) pass
        through unchanged after a same-session check, so the serving
        layer can carry front-end choice on the handle itself.
        """
        if isinstance(query, (Query, DatalogQuery)):
            if query.session._root is not self._root:
                raise TranslationError(
                    "the query handle belongs to a different session")
            return query
        if isinstance(query, Term):
            return self.term(query, classes=frozenset())
        return self.ucrpq(query)

    # -- Pipeline stages -----------------------------------------------------------

    def parse(self, query: str | UCRPQ) -> UCRPQ:
        """Parse UCRPQ text (ASTs pass through unchanged)."""
        return parse_query(query) if isinstance(query, str) else query

    def analyze(self, subject, *, frontend: str = "ucrpq",
                snapshot: DatabaseSnapshot | None = None):
        """Statically analyze a query against this session's database.

        ``subject`` may be query text (parsed per ``frontend``:
        ``"ucrpq"`` or ``"datalog"``), a parsed :class:`UCRPQ`, a Datalog
        :class:`~repro.baselines.datalog.ast.Program` or a raw mu-RA
        :class:`Term` — type dispatch matches :func:`repro.check.analyze`.
        Returns a :class:`~repro.check.DiagnosticReport`; never parses
        into the plan cache or executes anything.
        """
        from ..check import analyze
        snapshot = snapshot if snapshot is not None else self.snapshot()
        get_registry().counter("repro_analyze_total",
                               frontend=frontend).inc()
        return analyze(subject, database=snapshot, frontend=frontend)

    def translate(self, query: str | UCRPQ,
                  snapshot: DatabaseSnapshot | None = None) -> Term:
        """Parse (if needed) and translate a UCRPQ into a mu-RA term.

        Raises :class:`~repro.errors.TranslationError` for labels the
        snapshot does not have.  (Prepared templates never hit this with
        a ``:name`` placeholder: label parameters are substituted with
        their concrete labels before the template is translated.)
        """
        snapshot = snapshot if snapshot is not None else self.snapshot()
        parsed = self.parse(query)
        missing = sorted(label for label in parsed.labels()
                         if label not in snapshot)
        if missing:
            raise TranslationError(
                f"query references unknown edge labels {missing}")
        return translate_query(parsed)

    def optimize(self, term: Term,
                 snapshot: DatabaseSnapshot | None = None,
                 ) -> tuple[RankedPlan, list[RankedPlan]]:
        """Explore equivalent plans and rank them with the cost model.

        This is the raw (uncached) explore+rank; :meth:`resolve_plan` is
        the cached entry point the pipeline uses.  Ranking reads the
        snapshot's own statistics catalog, so the (lock-free) plan phase
        always costs a term against the exact data version it will read.
        """
        snapshot = snapshot if snapshot is not None else self.snapshot()
        plans = self.rewriter.explore(term, snapshot.schemas)
        ranked = rank_plans(plans, catalog=snapshot.catalog)
        return ranked[0], ranked

    def resolve_plan(self, term: Term, strategy: str | None = None, *,
                     use_cache: bool | None = None,
                     snapshot: DatabaseSnapshot | None = None,
                     ) -> tuple[CachedPlan, bool | None, PlanKey | None]:
        """The shared plan phase: cache lookup, explore+rank, cache store.

        Returns ``(plan, cache_hit, key)``.  ``cache_hit`` is ``None``
        when the cache was not consulted (caching disabled, or the
        optimizer is off and the term is used as-is).  This method is the
        single plan path for every front-end and for the serving layer, so
        their cache keys agree by construction.  It runs entirely outside
        the execution lock: the snapshot and its statistics are immutable,
        and the cache is internally synchronized.
        """
        snapshot = snapshot if snapshot is not None else self.snapshot()
        if not self.optimize_plans:
            selected = canonicalize(term)
            return CachedPlan(term=selected, cost=float("nan"),
                              plans_explored=1,
                              dependencies=free_variables(selected)), None, None
        use_cache = self.enable_plan_cache if use_cache is None else use_cache
        with tracing.span("session.resolve_plan",
                          graph=snapshot.graph_name) as plan_span:
            if use_cache:
                key = PlanKey.of(self, term, free_variables(term), strategy,
                                 snapshot=snapshot)
                cached = self.plan_cache.get(key)
                if cached is not None:
                    get_registry().counter("repro_plan_cache_total",
                                           outcome="hit").inc()
                    if plan_span.enabled:
                        plan_span.set_attribute("cache_hit", True)
                        if cached.estimated_cardinality is not None:
                            plan_span.set_attribute(
                                "estimated_rows", cached.estimated_cardinality)
                    return cached, True, key
            best, ranked = self.optimize(term, snapshot=snapshot)
            plan = CachedPlan(term=best.term, cost=best.cost,
                              plans_explored=len(ranked),
                              dependencies=free_variables(best.term),
                              estimated_cardinality=best.estimated_cardinality)
            if plan_span.enabled:
                if use_cache:
                    plan_span.set_attribute("cache_hit", False)
                plan_span.set_attribute("plans_explored", len(ranked))
                plan_span.set_attribute("estimated_rows",
                                        best.estimated_cardinality)
            if not use_cache:
                # No key either: callers use it for write-backs (the physical
                # strategies patch), which must not touch a disabled cache.
                return plan, None, None
            get_registry().counter("repro_plan_cache_total",
                                   outcome="miss").inc()
            self.plan_cache.put(key, plan)
            return plan, False, key

    def execute_plan(self, plan: CachedPlan, strategy: str | None = None,
                     classes: frozenset[str] = frozenset(), *,
                     use_result_cache: bool | None = None,
                     plan_key: PlanKey | None = None,
                     snapshot: DatabaseSnapshot | None = None,
                     ) -> tuple[QueryResult, bool | None]:
        """Execute a selected plan against one snapshot.

        Consults the result cache first — the key carries the snapshot
        fingerprint of the plan's inputs, so a hit is valid by
        construction and is served **without the execution lock**.  On a
        miss the plan runs on the cluster (executions serialize on the
        lock) and the result is memoized under the same fingerprint.
        Two concurrent misses on one key may both execute; they compute
        identical results and the second store is a harmless overwrite.
        Returns ``(result, result_cache_hit)``.
        """
        snapshot = snapshot if snapshot is not None else self.snapshot()
        use_cache = (self.enable_result_cache if use_result_cache is None
                     else use_result_cache)
        effective = strategy if strategy is not None else self.strategy
        with tracing.span("session.execute_plan", strategy=effective,
                          columnar=columnar_enabled(),
                          graph=snapshot.graph_name) as exec_span:
            result_key = ResultKey(
                plan_key=plan.term_key, strategy=effective,
                num_workers=self.cluster.num_workers,
                memory_per_task=self.memory_per_task,
                fingerprint=snapshot.fingerprint(plan.dependencies),
                graph=snapshot.graph_name)
            if use_cache:
                cached = self.result_cache.lookup(result_key)
                if cached is not None:
                    get_registry().counter("repro_result_cache_total",
                                           outcome="hit").inc()
                    if exec_span.enabled:
                        exec_span.set_attribute("result_cache_hit", True)
                        exec_span.set_attribute("rows", len(cached.relation))
                    return cached, True
            # The compiled kernel chains ride on the plan entry: a plan
            # cache hit re-executes with its programs already compiled.
            if plan.kernel_program is None:
                plan.kernel_program = KernelProgramCache()
            result = self.execute_term(plan.term, strategy=strategy,
                                       query_classes=classes, optimize=False,
                                       snapshot=snapshot,
                                       kernel_cache=plan.kernel_program)
            # Patch in what the plan phase knew and the cache-skipping
            # re-execution did not (plan count, estimated selection cost).
            result.plans_explored = plan.plans_explored
            result.estimated_cost = plan.cost
            if use_cache:
                get_registry().counter("repro_result_cache_total",
                                       outcome="miss").inc()
                self.result_cache.store(result_key, result)
            if plan_key is not None and not plan.physical_strategies:
                self.plan_cache.put(plan_key, plan.with_strategies(
                    result.physical_strategies))
            if exec_span.enabled:
                if use_cache:
                    exec_span.set_attribute("result_cache_hit", False)
                exec_span.set_attribute("rows", len(result.relation))
            return result, (False if use_cache else None)

    # -- Execution ------------------------------------------------------------------

    def execute_term(self, term: Term, strategy: str | None = None,
                     query_classes: frozenset[str] = frozenset(),
                     optimize: bool | None = None,
                     snapshot: DatabaseSnapshot | None = None,
                     kernel_cache: KernelProgramCache | None = None,
                     ) -> QueryResult:
        """Optimize (optionally) and execute a mu-RA term on one snapshot.

        ``optimize`` overrides the session default for this call; the
        staged pipeline passes ``False`` when it executes a plan it
        already selected (and cached), skipping the rewriter and ranking.
        Only the physical execution itself holds the execution lock —
        the snapshot is immutable, so concurrent commits never interfere
        with the broadcast data.
        """
        snapshot = snapshot if snapshot is not None else self.snapshot()
        started = time.perf_counter()
        original = term
        plans_explored = 1
        estimated_cost = float("nan")
        should_optimize = self.optimize_plans if optimize is None else optimize
        if should_optimize:
            best, ranked = self.optimize(term, snapshot=snapshot)
            term = best.term
            plans_explored = len(ranked)
            estimated_cost = best.cost
        effective = strategy if strategy is not None else self.strategy
        with tracing.span("execute.term", strategy=effective,
                          graph=snapshot.graph_name) as term_span:
            with self.execution_lock:
                self.cluster.reset_metrics()
                executor = DistributedQueryExecutor(
                    self.cluster, snapshot, strategy=effective,
                    memory_per_task=self.memory_per_task,
                    kernel_cache=kernel_cache)
                outcome = executor.execute(term)
                metrics = self.cluster.metrics
            if term_span.enabled:
                term_span.set_attribute("rows", len(outcome.relation))
                term_span.set_attribute(
                    "physical", ",".join(outcome.strategies) or "central")
        elapsed = time.perf_counter() - started
        registry = get_registry()
        registry.counter("repro_executions_total",
                         graph=snapshot.graph_name).inc()
        registry.histogram("repro_execution_seconds").observe(elapsed)
        metrics.publish(registry, graph=snapshot.graph_name)
        return QueryResult(
            relation=outcome.relation,
            selected_plan=term,
            original_plan=original,
            plans_explored=plans_explored,
            estimated_cost=estimated_cost,
            physical_strategies=outcome.strategies,
            metrics=metrics,
            elapsed_seconds=elapsed,
            query_classes=query_classes,
            snapshot_version=snapshot.version,
        )

    def evaluate_centralized(self, term: Term,
                             snapshot: DatabaseSnapshot | None = None,
                             ) -> Relation:
        """Reference single-node evaluation (used for testing and baselines)."""
        snapshot = snapshot if snapshot is not None else self.snapshot()
        return Evaluator(snapshot).evaluate(term)

    def datalog_edb(self, snapshot: DatabaseSnapshot | None = None,
                    ) -> dict[str, set[tuple]]:
        """Per-label EDB predicates of one snapshot (memoized on it).

        No lock is needed: the snapshot is immutable, so the extraction
        is repeatable, and the memo lives on the snapshot object itself —
        every pinned Datalog query of a version shares one EDB while
        later versions compute their own.
        """
        from ..baselines.datalog.translate import database_to_edb
        snapshot = snapshot if snapshot is not None else self.snapshot()
        return snapshot.derived("datalog_edb", database_to_edb)

    def submit_action(self, action) -> Future:
        """Run a terminal action on the session's background worker.

        Used by :meth:`Query.submit`; the worker is created lazily and
        shut down by :meth:`close`.  Executions still serialize on the
        session's execution lock, so background and foreground actions
        never oversubscribe the cluster.
        """
        root = self._root
        if root is not self:
            return root.submit_action(action)
        with self._background_lock:
            if self._background is None:
                self._background = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="session-submit")
            # The action runs in a copy of the submitting context: the
            # submitter's active tracer and open span travel with it, so
            # background work traces under the query that scheduled it.
            return self._background.submit(
                contextvars.copy_context().run, action)

    # -- Mutations and versioning ---------------------------------------------------

    @property
    def database_version(self) -> int:
        """Version of the snapshot this session reads (bumped per commit)."""
        return self.snapshot().version

    def relation_version(self, name: str) -> int:
        """Version at which relation ``name`` last changed (0 = unchanged)."""
        return self.snapshot().relation_version(name)

    def relation_versions(self, names: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """Sorted ``(name, version)`` fingerprint of the given relations.

        Unknown names are included with version 0, so a cache entry built
        before a relation existed stops matching once it appears.
        """
        return self.snapshot().fingerprint(names)

    def transaction(self) -> Transaction:
        """Start a mutation batch committed as one snapshot (see
        :class:`Transaction`)."""
        self._check_mutable()
        return Transaction(self)

    def add_edges(self, label: str,
                  pairs: Iterable[tuple[object, object]]) -> tuple[str, ...]:
        """Add ``(src, trg)`` edges to the ``label`` relation.

        Builds a copy-on-write successor snapshot — the inverse relation
        ``-label`` and the ``facts`` triple table (when the graph has
        them) are kept consistent, and the successor carries refreshed
        statistics for the touched relations — then atomically swaps the
        graph's head.  In-flight readers keep their pinned snapshots;
        caches are untouched (keys are version-qualified).  Adding only
        already-present pairs (or an empty iterable) is a **no-op**: no
        snapshot is created and no version is bumped.  Returns the names
        of the touched relations (empty for a no-op).
        """
        return self._apply_edge_mutation(label, pairs, removing=False)

    def remove_edges(self, label: str,
                     pairs: Iterable[tuple[object, object]]) -> tuple[str, ...]:
        """Remove ``(src, trg)`` edges from the ``label`` relation.

        Same snapshot-commit and no-op contract as :meth:`add_edges`
        (removing pairs that are not present changes nothing and bumps
        no version).
        """
        return self._apply_edge_mutation(label, pairs, removing=True)

    def _check_mutable(self) -> None:
        if self._pinned is not None:
            raise TransactionError(
                "this is a pinned read view; mutate through the live "
                "session (or session.graph(name)) instead")

    def _apply_edge_mutation(self, label: str, pairs, removing: bool) -> tuple[str, ...]:
        self._check_mutable()
        _check_not_inverse(label)
        edge_pairs = {(src, trg) for src, trg in pairs}
        return self._commit_ops([(label, edge_pairs, removing)])

    def _commit_ops(self, ops: list[tuple[str, set, bool]]) -> tuple[str, ...]:
        """Validate and apply a batch of mutations as one head swap.

        Writers serialize on the graph's commit lock; readers are never
        blocked — they keep using the old head (or their pinned
        snapshot) until the swap, which is a single reference
        assignment.  Every delta is validated *before* anything is
        applied, so a schema mismatch anywhere leaves the graph
        completely unchanged.
        """
        state = self._state
        with state.commit_lock:
            head = state.head
            changes: dict[str, Relation] = {}
            # Later ops in the batch observe earlier ones through the
            # overlay, so a transaction behaves like sequential edits
            # compressed into one commit.
            overlay = ChainMap(changes, head)
            for label, edge_pairs, removing in ops:
                # Unknown-relation removals must raise even with nothing
                # to remove (callers rely on it to catch typo'd names).
                if removing and label not in overlay:
                    raise EvaluationError(
                        f"cannot remove edges from unknown relation "
                        f"{label!r}")
                if not edge_pairs:
                    continue
                changes.update(self._plan_mutation(
                    overlay, label, edge_pairs, removing))
            # Ops in a batch can net out (add then remove the same pair):
            # drop every change whose final value equals the head's — and
            # phantom empty relations the batch both created and emptied —
            # so a no-op batch commits nothing at all.
            changes = {name: updated for name, updated in changes.items()
                       if not _is_unchanged(head.get(name), updated)}
            if not changes:
                return ()
            with tracing.span("session.commit", graph=state.name,
                              relations=",".join(sorted(changes))) as commit_span:
                successor = head.mutate(changes)
                state.head = successor
                if commit_span.enabled:
                    commit_span.set_attribute("version", successor.version)
                registry = get_registry()
                registry.counter("repro_commits_total",
                                 graph=state.name).inc()
                registry.gauge("repro_snapshot_version",
                               graph=state.name).set(successor.version)
                log_event(_LOGGER, "commit",
                          graph=state.name, version=successor.version,
                          relations=sorted(changes))
                # Maintain cached recursive results across the swap (still
                # under the commit lock in "sync" mode, so the next writer
                # sees a settled cache and readers of the new head can hit
                # maintained entries immediately).
                self._maintain_after_commit(state, head, successor)
            return tuple(changes)

    def _maintain_after_commit(self, state: GraphState,
                               old_head: DatabaseSnapshot,
                               new_head: DatabaseSnapshot) -> None:
        """Run (or schedule) view maintenance for one committed mutation.

        Dispatches on the root session's :attr:`view_maintenance` mode;
        an empty result cache costs nothing — commits on a cold graph
        stay pure dictionary work.
        """
        root = self._root
        if root.view_maintenance == "off":
            return
        # An empty cache makes the pass free, so the only gate needed is
        # the mode switch — note the session-level ``enable_result_cache``
        # flag is *not* consulted: the serving layer disables the session
        # flag and opts in per call, yet its cached entries still want
        # maintaining.
        cache = state.result_cache
        if len(cache) == 0:
            return
        maintainer = root.view_maintainer
        graph = state.name

        def run() -> MaintenanceStats:
            with tracing.span("maintenance.pass", graph=graph,
                              mode=root.view_maintenance) as pass_span:
                stats = maintainer.maintain_commit(cache, old_head, new_head)
                if pass_span.enabled:
                    pass_span.set_attribute("examined", stats.examined)
                    pass_span.set_attribute("maintained", stats.maintained)
            root._last_maintenance = stats
            return stats

        if root.view_maintenance == "async":
            root.submit_action(run)
        else:
            run()

    @property
    def last_maintenance(self) -> "MaintenanceStats | None":
        """Decision log of the most recent maintenance pass (or ``None``).

        Diagnostics only — benchmarks and tests use it to assert which
        maintenance path (resume, DRed, fallback) a commit exercised.
        """
        return self._root._last_maintenance

    def maintenance_backlog(self) -> int:
        """Background actions still queued on the session's worker.

        In ``async`` view-maintenance mode each commit queues one
        maintenance pass here; the service's health surface reports the
        depth so an operator can see maintenance falling behind writes.
        """
        root = self._root
        with root._background_lock:
            if root._background is None:
                return 0
            work_queue = getattr(root._background, "_work_queue", None)
            return work_queue.qsize() if work_queue is not None else 0

    @staticmethod
    def _plan_mutation(database: Mapping[str, Relation], label: str,
                       edge_pairs: set, removing: bool) -> dict[str, Relation]:
        """Compute the per-relation replacements of one edge mutation.

        Returns only the relations whose contents actually change — an
        empty dict means the mutation is a no-op (adding present pairs,
        removing absent ones) and must not produce a new snapshot.
        """
        if removing and label not in database:
            raise EvaluationError(
                f"cannot remove edges from unknown relation {label!r}")
        existing = database.get(label)
        inverse = INVERSE_PREFIX + label
        planned: list[tuple[str, Relation | None, Relation]] = []
        delta = Relation.from_pairs(edge_pairs, columns=(SRC, TRG))
        planned.append((label, existing, delta))
        if inverse in database or existing is None:
            inverse_delta = Relation.from_pairs(
                {(trg, src) for src, trg in edge_pairs}, columns=(SRC, TRG))
            planned.append((inverse, database.get(inverse), inverse_delta))
        facts = database.get("facts")
        if facts is not None and facts.columns == tuple(sorted((SRC, PRED, TRG))):
            # Rows align with the sorted schema ('pred', 'src', 'trg').
            fact_delta = Relation(facts.columns,
                                  [(label, src, trg) for src, trg in edge_pairs])
            planned.append(("facts", facts, fact_delta))
        for name, current, name_delta in planned:
            if current is not None and current.columns != name_delta.columns:
                raise SchemaError(
                    f"relation {name!r} has schema {current.columns}; the "
                    f"edge mutation API only supports {name_delta.columns} "
                    f"relations")
        changes: dict[str, Relation] = {}
        for name, current, name_delta in planned:
            base = (current if current is not None
                    else Relation.empty(name_delta.columns))
            updated = (base.difference(name_delta) if removing
                       else base.union(name_delta))
            # Union only grows and difference only shrinks, so equal
            # cardinality means equal contents: skip untouched relations.
            if current is None or len(updated) != len(base):
                changes[name] = updated
        return changes

    # -- Lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release the cluster's executor pools and the background worker."""
        with self._background_lock:
            if self._background is not None:
                self._background.shutdown(wait=True)
                self._background = None
        self.cluster.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- Introspection -----------------------------------------------------------------

    def explain(self, query: str | UCRPQ) -> str:
        """Return a human-readable account of the optimisation of a query."""
        return self.ucrpq(query).explain()

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        pinned = ", pinned" if self._pinned is not None else ""
        return (f"{type(self).__name__}(graph={snapshot.graph_name!r}, "
                f"version={snapshot.version}{pinned}, "
                f"relations={len(snapshot)}, "
                f"workers={self.cluster.num_workers}, "
                f"executor={self.cluster.executor.name!r}, "
                f"optimize={self.optimize_plans}, strategy={self.strategy!r})")


class _SessionView(Session):
    """A scoped facade over a root session: one graph, optionally pinned.

    A view owns only its scope (which graph it addresses, and — for read
    views — the snapshot it is pinned to); *every other attribute read
    falls through to the root session live*, so configuration changed on
    the root after the view was created (strategy, cache flags, memory
    budget) is always observed.  Views are what :meth:`Session.graph`
    and :meth:`Session.read_view` return; the root session owns the
    shared resources, so closing a view is deliberately a no-op.
    """

    def __init__(self, root: Session, graph_name: str,
                 pinned: DatabaseSnapshot | None):
        # Deliberately no super().__init__: the view stores its scope
        # only and reads everything else through the root (__getattr__).
        self._root = root
        self._graph_name = graph_name
        self._pinned = pinned

    def __getattr__(self, name: str):
        # Only called for attributes not found on the instance/class:
        # i.e. the root session's engine state.  Guard the scope slots
        # so a half-constructed view cannot recurse.
        if name in ("_root", "_graph_name", "_pinned"):
            raise AttributeError(name)
        return getattr(self._root, name)

    def close(self) -> None:
        """No-op: the root session owns the cluster and worker pools."""
