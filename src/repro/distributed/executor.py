"""Pluggable executor backends for per-partition cluster tasks.

The simulated :class:`~repro.distributed.cluster.SparkCluster` historically
ran every partition's work serially on the driver thread.  This module makes
the execution backend swappable, in the spirit of PostBOUND's pluggable
optimizer stages:

* ``serial`` — tasks run one after the other on the calling thread (the
  original behaviour, still the default),
* ``threads`` — tasks run on a :class:`~concurrent.futures.ThreadPoolExecutor`
  with one thread per simulated worker,
* ``processes`` — tasks run on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  side-stepping the GIL for CPU-bound local fixpoints.  Task payloads are
  shipped with ``cloudpickle`` when available (plain closures cannot cross a
  process boundary otherwise); without it, payloads that plain ``pickle``
  cannot serialise fall back to in-process execution rather than failing.

Every task is timed with :func:`time.thread_time` — the CPU time consumed by
the task itself, excluding time spent waiting for the GIL or the scheduler —
so the cluster can account a faithful *simulated* makespan for the wave of
tasks regardless of how much physical parallelism the host machine offers
(see :meth:`SparkCluster.record_task_wave`).
"""

from __future__ import annotations

import contextvars
import pickle
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from ..check.sanitizer import report_unpicklable_task
from ..errors import DistributionError
from ..obs.logs import get_logger, log_event
from ..obs.tracing import (
    SpanRecord,
    TraceHandoff,
    current_handoff,
    current_tracer,
    run_traced_task,
)

try:  # Optional: lets the process backend ship arbitrary closures.
    import cloudpickle
except ImportError:  # pragma: no cover - depends on the environment
    cloudpickle = None

_LOGGER = get_logger("repro.distributed")

#: Executor backend names accepted by :func:`make_executor`.
SERIAL = "serial"
THREADS = "threads"
PROCESSES = "processes"
EXECUTOR_BACKENDS = (SERIAL, THREADS, PROCESSES)


@dataclass(frozen=True)
class TaskOutcome:
    """The return value of one task plus its measured CPU time."""

    value: Any
    #: CPU seconds consumed by the task (``time.thread_time`` based), used
    #: by the cluster to model per-worker wall time and stragglers.
    seconds: float
    #: Finished span records produced by the task when it ran in another
    #: process under a :class:`~repro.obs.tracing.TraceHandoff`; empty for
    #: in-process backends (their spans land in the live tracer directly).
    spans: tuple[SpanRecord, ...] = ()


def _timed_call(fn: Callable[..., Any], args: tuple,
                handoff: TraceHandoff | None = None) -> TaskOutcome:
    """Run ``fn(*args)`` measuring the CPU time it consumes."""
    started = time.thread_time()
    value, spans = run_traced_task(fn, args, handoff)
    return TaskOutcome(value=value, seconds=time.thread_time() - started,
                       spans=spans)


def _timed_cloudpickle_call(payload: bytes,
                            handoff: TraceHandoff | None = None,
                            ) -> TaskOutcome:
    """Process-pool entry point for closures shipped with cloudpickle."""
    fn, args = cloudpickle.loads(payload)
    return _timed_call(fn, args, handoff)


def _adopt_spans(outcomes: list[TaskOutcome],
                 handoff: TraceHandoff | None) -> list[TaskOutcome]:
    """Graft spans a traced task produced in another process into the
    caller's live tracer."""
    if handoff is not None:
        tracer = current_tracer()
        for outcome in outcomes:
            if outcome.spans:
                tracer.adopt(outcome.spans, handoff)
    return outcomes


class ExecutorBackend:
    """How one wave of independent per-partition tasks is executed."""

    name: str = "abstract"
    #: Number of tasks the backend can run simultaneously; the cluster uses
    #: it to compute the simulated makespan of a task wave.
    parallelism: int = 1

    def map_tasks(self, fn: Callable[..., Any],
                  args_list: Sequence[tuple]) -> list[TaskOutcome]:
        """Run ``fn(*args)`` for every args tuple, preserving order.

        An exception raised by any task propagates to the caller (the first
        one in submission order for the pooled backends).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources; the backend must not be used afterwards."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(parallelism={self.parallelism})"


class SerialExecutor(ExecutorBackend):
    """Run every task in order on the calling thread."""

    name = SERIAL
    parallelism = 1

    def map_tasks(self, fn: Callable[..., Any],
                  args_list: Sequence[tuple]) -> list[TaskOutcome]:
        return [_timed_call(fn, args) for args in args_list]


class ThreadExecutor(ExecutorBackend):
    """Run tasks on a thread pool with one thread per simulated worker."""

    name = THREADS

    def __init__(self, max_workers: int):
        if max_workers <= 0:
            raise DistributionError("a thread executor needs at least one worker")
        self.parallelism = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-worker")
        return self._pool

    def map_tasks(self, fn: Callable[..., Any],
                  args_list: Sequence[tuple]) -> list[TaskOutcome]:
        pool = self._ensure_pool()
        # Each task runs in a fresh copy of the submitting context, so a
        # span open here parents the worker's spans — and concurrent waves
        # cannot leak spans into each other.
        futures = [
            pool.submit(contextvars.copy_context().run, _timed_call, fn, args)
            for args in args_list
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessExecutor(ExecutorBackend):
    """Run tasks on a process pool (real parallelism for CPU-bound loops)."""

    name = PROCESSES

    def __init__(self, max_workers: int):
        if max_workers <= 0:
            raise DistributionError("a process executor needs at least one worker")
        self.parallelism = max_workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.parallelism)
        return self._pool

    def map_tasks(self, fn: Callable[..., Any],
                  args_list: Sequence[tuple]) -> list[TaskOutcome]:
        # ``None`` whenever tracing is off, keeping the pickled payload
        # identical to the untraced one; when on, the children record into
        # local tracers and return their spans with the outcome.
        handoff = current_handoff()
        if cloudpickle is not None:
            try:
                payloads = [cloudpickle.dumps((fn, args)) for args in args_list]
            except Exception:
                payloads = None
            if payloads is not None:
                pool = self._ensure_pool()
                futures = [pool.submit(_timed_cloudpickle_call, payload,
                                       handoff)
                           for payload in payloads]
                return _adopt_spans([future.result() for future in futures],
                                    handoff)
        if self._plain_picklable(fn, args_list):
            pool = self._ensure_pool()
            futures = [pool.submit(_timed_call, fn, args, handoff)
                       for args in args_list]
            return _adopt_spans([future.result() for future in futures],
                                handoff)
        # Payloads that cannot cross a process boundary (closures over
        # unpicklable state) degrade to in-process execution instead of
        # failing the query.  The calling context is intact here, so spans
        # land in the live tracer without any handoff.  Under the sanitizer
        # the silent degradation is a reportable violation.
        report_unpicklable_task(fn, len(args_list))
        log_event(_LOGGER, "process executor falling back to in-process "
                           "execution (unpicklable task payload)",
                  tasks=len(args_list))
        return [_timed_call(fn, args) for args in args_list]

    @staticmethod
    def _plain_picklable(fn: Callable[..., Any],
                         args_list: Sequence[tuple]) -> bool:
        # Waves are homogeneous (same fn, args differing only in the
        # partition payload), so probing the first task is representative
        # and avoids serialising the whole wave twice.
        probe = (fn, args_list[0]) if args_list else (fn,)
        try:
            pickle.dumps(probe)
        except Exception:
            return False
        return True

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(executor: str | ExecutorBackend,
                  max_workers: int) -> ExecutorBackend:
    """Build an executor backend from a name (or pass a backend through)."""
    if isinstance(executor, ExecutorBackend):
        return executor
    if executor == SERIAL:
        return SerialExecutor()
    if executor == THREADS:
        return ThreadExecutor(max_workers)
    if executor == PROCESSES:
        return ProcessExecutor(max_workers)
    raise DistributionError(
        f"unknown executor backend {executor!r}; "
        f"known backends: {list(EXECUTOR_BACKENDS)}")
