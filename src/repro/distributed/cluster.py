"""Simulated Spark cluster: driver, workers and communication accounting.

The original system runs on a Spark cluster; the claims of the paper are
about *where* the recursion loop runs (driver vs. workers) and *how much
data crosses the network* per iteration.  This module provides the
substrate for reproducing those claims in-process:

* a :class:`SparkCluster` with a configurable number of workers,
* :class:`ClusterMetrics` counting shuffles, shuffled tuples, broadcasts,
  launched tasks, and iteration counts (global driver iterations vs. local
  worker iterations),
* an optional *communication cost model* turning those counters into a
  simulated time penalty so that plans that shuffle at every iteration are
  measurably slower, as on a real cluster.

The execution itself is faithful to the dataflow: work is performed
partition by partition, and any operation that would need a repartition on
Spark goes through :meth:`SparkCluster.record_shuffle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DistributionError

#: Default number of workers, mirroring the 4-machine cluster of the paper.
DEFAULT_NUM_WORKERS = 4

#: Default per-tuple cost (in simulated seconds) of a network shuffle.  The
#: value is intentionally tiny: it nudges reported times in the direction a
#: real network would, without drowning the actual computation time.  The
#: delay is *accounted*, never slept: executions stay fast and the benchmark
#: harness adds :attr:`SparkCluster.simulated_communication_delay` to the
#: wall-clock time it reports.
DEFAULT_SHUFFLE_COST_PER_TUPLE = 2e-6
#: Default fixed cost of initiating a shuffle (barrier + scheduling).
DEFAULT_SHUFFLE_LATENCY = 0.02


@dataclass
class ClusterMetrics:
    """Counters describing one distributed execution."""

    shuffles: int = 0
    tuples_shuffled: int = 0
    broadcasts: int = 0
    tuples_broadcast: int = 0
    tasks_launched: int = 0
    global_iterations: int = 0
    local_iterations: int = 0
    tuples_processed_per_worker: dict[int, int] = field(default_factory=dict)
    duplicates_eliminated: int = 0
    final_union_skipped: bool = False
    partitioning: str = "none"
    #: Tuples exchanged between the Spark worker and its local PostgreSQL
    #: instance (Pplw^pg only): constant part sent + results iterated back.
    tuples_marshalled: int = 0

    def record_worker_tuples(self, worker_id: int, count: int) -> None:
        current = self.tuples_processed_per_worker.get(worker_id, 0)
        self.tuples_processed_per_worker[worker_id] = current + count

    @property
    def total_tuples_processed(self) -> int:
        return sum(self.tuples_processed_per_worker.values())

    @property
    def max_worker_load(self) -> int:
        if not self.tuples_processed_per_worker:
            return 0
        return max(self.tuples_processed_per_worker.values())

    def skew(self) -> float:
        """Load imbalance: max worker load divided by the mean load."""
        loads = list(self.tuples_processed_per_worker.values())
        if not loads or sum(loads) == 0:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean else 1.0

    def communication_cost(self, per_tuple: float = 1.0, per_shuffle: float = 0.0) -> float:
        """Abstract communication cost: shuffled tuples weighted by volume."""
        return (self.tuples_shuffled + self.tuples_broadcast) * per_tuple \
            + self.shuffles * per_shuffle

    def summary(self) -> dict[str, object]:
        """A dictionary view used by the benchmark reports."""
        return {
            "shuffles": self.shuffles,
            "tuples_shuffled": self.tuples_shuffled,
            "broadcasts": self.broadcasts,
            "tuples_broadcast": self.tuples_broadcast,
            "tasks_launched": self.tasks_launched,
            "global_iterations": self.global_iterations,
            "local_iterations": self.local_iterations,
            "duplicates_eliminated": self.duplicates_eliminated,
            "final_union_skipped": self.final_union_skipped,
            "partitioning": self.partitioning,
            "tuples_marshalled": self.tuples_marshalled,
            "total_tuples_processed": self.total_tuples_processed,
            "skew": round(self.skew(), 3),
        }


@dataclass(frozen=True)
class Worker:
    """One worker node of the simulated cluster."""

    worker_id: int

    def __repr__(self) -> str:
        return f"Worker({self.worker_id})"


class SparkCluster:
    """The simulated cluster a distributed execution runs on."""

    def __init__(self, num_workers: int = DEFAULT_NUM_WORKERS,
                 shuffle_cost_per_tuple: float = DEFAULT_SHUFFLE_COST_PER_TUPLE,
                 shuffle_latency: float = DEFAULT_SHUFFLE_LATENCY):
        if num_workers <= 0:
            raise DistributionError("a cluster needs at least one worker")
        self.num_workers = num_workers
        self.workers = tuple(Worker(worker_id) for worker_id in range(num_workers))
        self.shuffle_cost_per_tuple = shuffle_cost_per_tuple
        self.shuffle_latency = shuffle_latency
        self.metrics = ClusterMetrics()
        self._simulated_delay = 0.0

    # -- Metric recording ------------------------------------------------------

    def reset_metrics(self) -> None:
        """Clear the metrics before a new execution."""
        self.metrics = ClusterMetrics()
        self._simulated_delay = 0.0

    def record_shuffle(self, tuple_count: int) -> None:
        """Record one repartitioning of ``tuple_count`` tuples."""
        self.metrics.shuffles += 1
        self.metrics.tuples_shuffled += tuple_count
        self._simulated_delay += (self.shuffle_latency
                                  + tuple_count * self.shuffle_cost_per_tuple)

    def record_broadcast(self, tuple_count: int) -> None:
        """Record the broadcast of a relation to every worker."""
        self.metrics.broadcasts += 1
        self.metrics.tuples_broadcast += tuple_count * self.num_workers
        self._simulated_delay += (tuple_count * self.num_workers
                                  * self.shuffle_cost_per_tuple)

    def record_tasks(self, count: int) -> None:
        self.metrics.tasks_launched += count

    def record_worker_tuples(self, worker_id: int, count: int) -> None:
        self.metrics.record_worker_tuples(worker_id, count)

    @property
    def simulated_communication_delay(self) -> float:
        """Total simulated network delay accumulated so far (seconds)."""
        return self._simulated_delay

    def __repr__(self) -> str:
        return f"SparkCluster(num_workers={self.num_workers})"
