"""Simulated Spark cluster: driver, workers and communication accounting.

The original system runs on a Spark cluster; the claims of the paper are
about *where* the recursion loop runs (driver vs. workers) and *how much
data crosses the network* per iteration.  This module provides the
substrate for reproducing those claims in-process:

* a :class:`SparkCluster` with a configurable number of workers,
* :class:`ClusterMetrics` counting shuffles, shuffled tuples, broadcasts,
  launched tasks, and iteration counts (global driver iterations vs. local
  worker iterations),
* an optional *communication cost model* turning those counters into a
  simulated time penalty so that plans that shuffle at every iteration are
  measurably slower, as on a real cluster.

The execution itself is faithful to the dataflow: work is performed
partition by partition, and any operation that would need a repartition on
Spark goes through :meth:`SparkCluster.record_shuffle`.

Per-partition work is submitted to a pluggable
:class:`~repro.distributed.executor.ExecutorBackend` (``serial``,
``threads`` or ``processes``) through :meth:`SparkCluster.run_tasks`.
Every task wave is accounted the same way shuffles are: each task reports
the CPU time it consumed, the cluster packs those times onto the available
worker slots, and the difference between that simulated makespan and the
wave's measured wall time becomes :attr:`SparkCluster.simulated_executor_adjustment`
— so reported times reflect the parallel schedule of a real cluster even
when the host offers less physical parallelism than the simulation.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..check.sanitizer import ordered_lock
from ..errors import DistributionError
from .executor import SERIAL, ExecutorBackend, TaskOutcome, make_executor

#: Default number of workers, mirroring the 4-machine cluster of the paper.
DEFAULT_NUM_WORKERS = 4

#: Default per-tuple cost (in simulated seconds) of a network shuffle.  The
#: value is intentionally tiny: it nudges reported times in the direction a
#: real network would, without drowning the actual computation time.  The
#: delay is *accounted*, never slept: executions stay fast and the benchmark
#: harness adds :attr:`SparkCluster.simulated_communication_delay` to the
#: wall-clock time it reports.
DEFAULT_SHUFFLE_COST_PER_TUPLE = 2e-6
#: Default fixed cost of initiating a shuffle (barrier + scheduling).
DEFAULT_SHUFFLE_LATENCY = 0.02


def _max_over_mean(loads) -> float:
    """Imbalance factor of a load distribution (1.0 when perfectly even)."""
    loads = list(loads)
    total = sum(loads)
    if not loads or total == 0:
        return 1.0
    return max(loads) * len(loads) / total


@dataclass
class ClusterMetrics:
    """Counters describing one distributed execution."""

    shuffles: int = 0
    tuples_shuffled: int = 0
    broadcasts: int = 0
    tuples_broadcast: int = 0
    tasks_launched: int = 0
    global_iterations: int = 0
    local_iterations: int = 0
    tuples_processed_per_worker: dict[int, int] = field(default_factory=dict)
    duplicates_eliminated: int = 0
    final_union_skipped: bool = False
    partitioning: str = "none"
    #: Tuples exchanged between the Spark worker and its local PostgreSQL
    #: instance (Pplw^pg only): constant part sent + results iterated back.
    tuples_marshalled: int = 0
    #: Name of the executor backend the cluster ran tasks on.
    executor: str = SERIAL
    #: Number of task waves (one wave = one batch of per-partition tasks).
    task_waves: int = 0
    #: CPU seconds of task work accumulated per worker slot.
    task_seconds_per_worker: dict[int, float] = field(default_factory=dict)
    #: CPU seconds of the single slowest task seen (the straggler).
    slowest_task_seconds: float = 0.0
    #: Storage-layer hash indexes built during the execution vs. served
    #: from a relation's memoized cache (see Relation.index_on): a high
    #: reuse count is the signature of the delta-aware storage engine —
    #: loop-invariant relations are hashed once, then only probed.
    index_builds: int = 0
    index_reuses: int = 0

    def record_worker_tuples(self, worker_id: int, count: int) -> None:
        current = self.tuples_processed_per_worker.get(worker_id, 0)
        self.tuples_processed_per_worker[worker_id] = current + count

    def publish(self, registry, graph: str = "") -> None:
        """Accumulate this execution's counters into a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        Called by the session after each execution, so the per-execution
        (reset) counters here become monotonic totals there.
        """
        for name, amount in (
            ("repro_shuffles_total", self.shuffles),
            ("repro_tuples_shuffled_total", self.tuples_shuffled),
            ("repro_broadcasts_total", self.broadcasts),
            ("repro_tuples_broadcast_total", self.tuples_broadcast),
            ("repro_tasks_launched_total", self.tasks_launched),
            ("repro_fixpoint_global_iterations_total", self.global_iterations),
            ("repro_fixpoint_local_iterations_total", self.local_iterations),
            ("repro_tuples_marshalled_total", self.tuples_marshalled),
            ("repro_index_builds_total", self.index_builds),
            ("repro_index_reuses_total", self.index_reuses),
        ):
            if amount:
                registry.counter(name, graph=graph).inc(amount)

    @property
    def total_tuples_processed(self) -> int:
        return sum(self.tuples_processed_per_worker.values())

    @property
    def max_worker_load(self) -> int:
        if not self.tuples_processed_per_worker:
            return 0
        return max(self.tuples_processed_per_worker.values())

    def skew(self) -> float:
        """Load imbalance: max worker load divided by the mean load."""
        return _max_over_mean(self.tuples_processed_per_worker.values())

    @property
    def max_worker_seconds(self) -> float:
        """Wall time of the busiest worker slot (CPU seconds of its tasks)."""
        if not self.task_seconds_per_worker:
            return 0.0
        return max(self.task_seconds_per_worker.values())

    @property
    def total_task_seconds(self) -> float:
        """CPU seconds summed over every task of the execution."""
        return sum(self.task_seconds_per_worker.values())

    def compute_skew(self) -> float:
        """Straggler factor: busiest worker's seconds over the mean."""
        return _max_over_mean(self.task_seconds_per_worker.values())

    def communication_cost(self, per_tuple: float = 1.0, per_shuffle: float = 0.0) -> float:
        """Abstract communication cost: shuffled tuples weighted by volume."""
        return (self.tuples_shuffled + self.tuples_broadcast) * per_tuple \
            + self.shuffles * per_shuffle

    def summary(self) -> dict[str, object]:
        """A dictionary view used by the benchmark reports."""
        return {
            "shuffles": self.shuffles,
            "tuples_shuffled": self.tuples_shuffled,
            "broadcasts": self.broadcasts,
            "tuples_broadcast": self.tuples_broadcast,
            "tasks_launched": self.tasks_launched,
            "global_iterations": self.global_iterations,
            "local_iterations": self.local_iterations,
            "duplicates_eliminated": self.duplicates_eliminated,
            "final_union_skipped": self.final_union_skipped,
            "partitioning": self.partitioning,
            "tuples_marshalled": self.tuples_marshalled,
            "total_tuples_processed": self.total_tuples_processed,
            "skew": round(self.skew(), 3),
            "executor": self.executor,
            "task_waves": self.task_waves,
            "max_worker_seconds": round(self.max_worker_seconds, 6),
            "total_task_seconds": round(self.total_task_seconds, 6),
            "slowest_task_seconds": round(self.slowest_task_seconds, 6),
            "compute_skew": round(self.compute_skew(), 3),
            "index_builds": self.index_builds,
            "index_reuses": self.index_reuses,
        }


@dataclass(frozen=True)
class Worker:
    """One worker node of the simulated cluster."""

    worker_id: int

    def __repr__(self) -> str:
        return f"Worker({self.worker_id})"


class SparkCluster:
    """The simulated cluster a distributed execution runs on."""

    def __init__(self, num_workers: int = DEFAULT_NUM_WORKERS,
                 shuffle_cost_per_tuple: float = DEFAULT_SHUFFLE_COST_PER_TUPLE,
                 shuffle_latency: float = DEFAULT_SHUFFLE_LATENCY,
                 executor: str | ExecutorBackend = SERIAL):
        if num_workers <= 0:
            raise DistributionError("a cluster needs at least one worker")
        self.num_workers = num_workers
        self.workers = tuple(Worker(worker_id) for worker_id in range(num_workers))
        self.shuffle_cost_per_tuple = shuffle_cost_per_tuple
        self.shuffle_latency = shuffle_latency
        self.executor = make_executor(executor, max_workers=num_workers)
        self.metrics = ClusterMetrics(executor=self.executor.name)
        self._simulated_delay = 0.0
        self._executor_adjustment = 0.0
        # Metrics are normally mutated on the driver thread only (tasks are
        # pure and report back via their return values); the lock guards the
        # record_* entry points for task code that calls them anyway.
        self._lock = ordered_lock("cluster.metrics")

    # -- Task execution --------------------------------------------------------

    def run_tasks(self, fn: Callable, args_list: Sequence[tuple]) -> list[TaskOutcome]:
        """Run one wave of independent tasks on the executor backend.

        Returns the per-task outcomes in submission order and accounts the
        wave in the metrics (task count, per-worker seconds, straggler, and
        the simulated-makespan adjustment).
        """
        wave_started = time.perf_counter()
        outcomes = self.executor.map_tasks(fn, args_list)
        wave_elapsed = time.perf_counter() - wave_started
        self.record_task_wave([outcome.seconds for outcome in outcomes],
                              wave_elapsed)
        return outcomes

    def _wave_makespan(self, task_seconds: Sequence[float]) -> float:
        """Simulated completion time of a task wave on this cluster.

        With one execution lane per worker (the usual configuration) task
        *i* runs on worker ``i % num_workers`` — the same attribution
        :meth:`record_task_wave` uses — and the wave ends when the busiest
        worker finishes.  An executor narrower than the cluster (custom
        backends) packs the queue greedily onto its lanes instead; a serial
        executor is a single lane, so the wave costs the sum of its tasks.
        """
        lanes = min(self.num_workers, max(1, self.executor.parallelism))
        if lanes <= 1:
            return sum(task_seconds)
        if self.executor.parallelism >= self.num_workers:
            bins = [0.0] * self.num_workers
            for index, seconds in enumerate(task_seconds):
                bins[index % self.num_workers] += seconds
            return max(bins)
        loads = [0.0] * lanes
        for seconds in task_seconds:
            index = loads.index(min(loads))
            loads[index] += seconds
        return max(loads)

    # -- Metric recording ------------------------------------------------------

    def reset_metrics(self) -> None:
        """Clear the metrics before a new execution."""
        with self._lock:
            self.metrics = ClusterMetrics(executor=self.executor.name)
            self._simulated_delay = 0.0
            self._executor_adjustment = 0.0

    def record_shuffle(self, tuple_count: int) -> None:
        """Record one repartitioning of ``tuple_count`` tuples."""
        with self._lock:
            self.metrics.shuffles += 1
            self.metrics.tuples_shuffled += tuple_count
            self._simulated_delay += (self.shuffle_latency
                                      + tuple_count * self.shuffle_cost_per_tuple)

    def record_broadcast(self, tuple_count: int) -> None:
        """Record the broadcast of a relation to every worker."""
        with self._lock:
            self.metrics.broadcasts += 1
            self.metrics.tuples_broadcast += tuple_count * self.num_workers
            self._simulated_delay += (tuple_count * self.num_workers
                                      * self.shuffle_cost_per_tuple)

    def record_tasks(self, count: int) -> None:
        with self._lock:
            self.metrics.tasks_launched += count

    def record_task_wave(self, task_seconds: Sequence[float],
                         wave_elapsed: float | None = None) -> None:
        """Account one wave of tasks: counters, per-worker time, makespan.

        ``wave_elapsed`` is the wall time the wave actually took on the host;
        the difference between the simulated makespan and that measurement is
        accumulated into :attr:`simulated_executor_adjustment` so reported
        times reflect the cluster's schedule rather than the host's.
        """
        makespan = self._wave_makespan(task_seconds)
        with self._lock:
            self.metrics.tasks_launched += len(task_seconds)
            self.metrics.task_waves += 1
            for index, seconds in enumerate(task_seconds):
                slot = index % self.num_workers
                current = self.metrics.task_seconds_per_worker.get(slot, 0.0)
                self.metrics.task_seconds_per_worker[slot] = current + seconds
                if seconds > self.metrics.slowest_task_seconds:
                    self.metrics.slowest_task_seconds = seconds
            measured = (wave_elapsed if wave_elapsed is not None
                        else sum(task_seconds))
            self._executor_adjustment += makespan - measured

    def record_worker_tuples(self, worker_id: int, count: int) -> None:
        with self._lock:
            self.metrics.record_worker_tuples(worker_id, count)

    def record_index_event(self, built: bool) -> None:
        """Record one storage-layer index interaction (build or cache hit)."""
        with self._lock:
            if built:
                self.metrics.index_builds += 1
            else:
                self.metrics.index_reuses += 1

    @property
    def simulated_communication_delay(self) -> float:
        """Total simulated network delay accumulated so far (seconds)."""
        return self._simulated_delay

    @property
    def simulated_executor_adjustment(self) -> float:
        """Simulated-makespan correction for the task waves run so far.

        Negative when the executor (or the cost model) packed the tasks
        tighter than the host machine could physically run them; roughly
        zero when the host's parallelism matched the simulated cluster's.
        """
        return self._executor_adjustment

    @property
    def reported_time_adjustment(self) -> float:
        """What the benchmark harness adds to the measured wall time."""
        return self._simulated_delay + self._executor_adjustment

    def close(self) -> None:
        """Shut down the executor backend (pools hold OS resources)."""
        self.executor.close()

    def __enter__(self) -> "SparkCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"SparkCluster(num_workers={self.num_workers}, "
                f"executor={self.executor.name!r})")
