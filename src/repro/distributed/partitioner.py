"""Fixpoint splitting and stable-column partitioning.

Proposition 3 of the paper (fixpoint splitting) allows the constant part
``R`` of a fixpoint to be split into chunks ``R1..Rn``, each worker running
its own local fixpoint ``mu(X = Ri U phi)``; the results are then unioned.
Any split is correct; the *stable-column* partitioning of Section III-B is
the one that additionally makes the local results pairwise disjoint, so the
final duplicate-eliminating union can be skipped.

:func:`plan_partitioning` decides, statically from the algebraic term,
whether a stable column exists and therefore which strategy to use;
:func:`split_constant_part` applies the decision to the concrete data.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..algebra.schema import Schema
from ..algebra.stability import stable_columns
from ..algebra.terms import Fixpoint
from ..data.relation import Relation
from ..errors import EvaluationError, SchemaError
from .cluster import SparkCluster

#: Partitioning strategies reported in metrics and benchmark tables.
STABLE_COLUMN = "stable-column"
ROUND_ROBIN = "round-robin"


@dataclass(frozen=True)
class PartitioningDecision:
    """How the constant part of a fixpoint will be split across workers."""

    strategy: str
    key_columns: tuple[str, ...]
    #: True when the per-worker fixpoints are guaranteed pairwise disjoint,
    #: in which case the final union does not need to eliminate duplicates.
    disjoint: bool

    @classmethod
    def round_robin(cls) -> "PartitioningDecision":
        return cls(strategy=ROUND_ROBIN, key_columns=(), disjoint=False)

    @classmethod
    def stable(cls, columns: tuple[str, ...]) -> "PartitioningDecision":
        return cls(strategy=STABLE_COLUMN, key_columns=columns, disjoint=True)


def plan_partitioning(fixpoint: Fixpoint,
                      base_schemas: Mapping[str, Schema],
                      env: Mapping[str, Schema] | None = None) -> PartitioningDecision:
    """Choose the partitioning strategy for one fixpoint.

    When the stable-column analysis finds at least one stable column, the
    constant part is hash-partitioned on the full set of stable columns
    (two tuples agreeing on them always land on the same worker), which
    guarantees disjoint local results.  Otherwise the split falls back to
    round-robin and the final union keeps its duplicate elimination.
    """
    try:
        stable = stable_columns(fixpoint, base_schemas, env)
    except (SchemaError, EvaluationError):
        stable = frozenset()
    if stable:
        return PartitioningDecision.stable(tuple(sorted(stable)))
    return PartitioningDecision.round_robin()


def split_constant_part(constant: Relation, cluster: SparkCluster,
                        decision: PartitioningDecision) -> list[Relation]:
    """Split the evaluated constant part according to a partitioning decision."""
    if decision.strategy == STABLE_COLUMN and decision.key_columns:
        usable = [c for c in decision.key_columns if c in constant.columns]
        if usable:
            return constant.split_by_columns(tuple(usable), cluster.num_workers)
    return constant.split_round_robin(cluster.num_workers)
