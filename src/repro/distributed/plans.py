"""The distributed fixpoint execution plans: Pgld, Pplw^s and Pplw^pg.

Section III of the paper contrasts two ways of distributing a fixpoint on a
Spark cluster:

* **Pgld** (global loop on the driver): the natural Spark implementation of
  Algorithm 1.  The driver runs the loop; every iteration evaluates the
  variable part as distributed Dataset operations and performs the union /
  set-difference with ``distinct()``, which costs at least one shuffle per
  iteration.
* **Pplw** (parallel local loops on the workers): the constant part is
  split across workers (Proposition 3 — fixpoint splitting) and every
  worker runs its *own complete fixpoint locally*, with no data exchange
  during the recursion.  A single shuffle may remain for the final union,
  and even that one disappears when the split used a stable column
  (Section III-B).  Two physical variants exist: ``Pplw^s`` runs the local
  loops with Spark operations over a SetRDD and broadcast joins, while
  ``Pplw^pg`` delegates each local loop to the worker's PostgreSQL-like
  engine (:class:`~repro.distributed.local_engine.LocalSQLEngine`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..algebra.conditions import decompose
from ..algebra.evaluate import Evaluator
from ..algebra.kernels import (KernelProgramCache, bind_program,
                               try_columnar_fixpoint)
from ..algebra.terms import (AntiProject, Antijoin, Filter, Fixpoint, Join,
                             Rename, RelVar, Term, Union)
from ..algebra.variables import free_variables, is_constant_in
from ..data import storage
from ..data.columnar import ColumnarRelation, snapshot_dictionary
from ..data.relation import Relation
from ..data.snapshot import adopt_database, database_schemas
from ..data.storage import DeltaAccumulator
from ..errors import DistributionError, EvaluationError
from ..obs import tracing
from . import local_engine as local_engine_module
from .cluster import SparkCluster
from .local_engine import LocalSQLEngine
from .partitioner import (PartitioningDecision, plan_partitioning,
                          split_constant_part)
from .rdd import DistributedRelation, SetRDD

#: Plan identifiers used in metrics, reports and the selection heuristic.
PGLD = "pgld"
PPLW_SPARK = "plw-spark"
PPLW_POSTGRES = "plw-postgres"

#: Safety bound on driver-side global iterations.
MAX_GLOBAL_ITERATIONS = 1_000_000


class DistributedFixpointPlan:
    """Base class of the three physical fixpoint plans."""

    name: str = "abstract"

    def __init__(self, cluster: SparkCluster, database: Mapping[str, Relation],
                 partitioning_override: PartitioningDecision | None = None,
                 kernel_cache: KernelProgramCache | None = None):
        self.cluster = cluster
        # The shared value dictionary rides on the snapshot; captured here
        # because adopt_database may hand back a plain mapping.
        self._dictionary = snapshot_dictionary(database)
        #: Compiled-kernel cache shared with the plan cache entry that
        #: selected this plan; ``None`` falls back to the process default.
        self.kernel_cache = kernel_cache
        # Immutable snapshots are adopted as-is (broadcasts then ship the
        # snapshot's own relations, hash indexes included); mutable
        # mappings are defensively copied, as before.
        self.database = adopt_database(database)
        #: When set, bypass the stable-column analysis and use this decision
        #: instead (used by the partitioning ablation benchmark).
        self.partitioning_override = partitioning_override

    def execute(self, fixpoint: Fixpoint) -> Relation:
        """Evaluate ``fixpoint`` against the plan's database."""
        raise NotImplementedError

    # -- Shared helpers ----------------------------------------------------------

    def _central_evaluator(self) -> Evaluator:
        return Evaluator(self.database, kernel_cache=self.kernel_cache)

    def _check_closed(self, fixpoint: Fixpoint) -> None:
        unknown = free_variables(fixpoint) - set(self.database)
        if unknown:
            raise DistributionError(
                f"fixpoint references unknown relations {sorted(unknown)}")

    def _partitioning(self, fixpoint: Fixpoint) -> PartitioningDecision:
        if self.partitioning_override is not None:
            return self.partitioning_override
        schemas = database_schemas(self.database)
        return plan_partitioning(fixpoint, schemas)

    def _warm_broadcast_index(self, relation: Relation,
                              common: tuple[str, ...]) -> None:
        """Index a broadcast relation on the join columns, once.

        The relation comes from the evaluator's constant cache, so it is
        the same object on every iteration: the first call builds the hash
        index, later calls find it memoized — recorded in the cluster
        metrics so benchmarks can show the reuse.
        """
        if not common or not storage.caching_enabled():
            return
        self.cluster.record_index_event(built=not relation.has_index(common))
        relation.index_on(common)


class GlobalLoopOnDriver(DistributedFixpointPlan):
    """``Pgld``: the driver iterates, the workers evaluate each step.

    Every iteration ends with a global set difference and a global union,
    both of which repartition the data (``distinct()`` on Spark), so the
    number of shuffles grows linearly with the recursion depth.
    """

    name = PGLD

    def execute(self, fixpoint: Fixpoint) -> Relation:
        self._check_closed(fixpoint)
        decomposition = decompose(fixpoint)
        evaluator = self._central_evaluator()
        constant = evaluator.evaluate(decomposition.constant_part)
        if decomposition.variable_part is None:
            return constant
        variable_part = decomposition.variable_part
        var = fixpoint.var
        # Compile-and-bind once on the driver; per iteration each partition
        # runs the kernel chain (encode -> step -> decode) as one task.
        # ``None`` falls back to tuple-at-a-time distributed evaluation.
        bound = bind_program(self.kernel_cache, var, variable_part,
                             constant.columns, self._dictionary,
                             evaluator.evaluate_constant)
        kernel_step = self._kernel_partition_task(bound) if bound else None
        accumulated = DistributedRelation.from_relation(self.cluster, constant)
        delta = accumulated
        iterations = 0
        traced = tracing.tracing_enabled()
        while not delta.is_empty():
            iterations += 1
            if iterations > MAX_GLOBAL_ITERATIONS:
                raise EvaluationError(
                    f"global loop on {var!r} did not converge "
                    f"within {MAX_GLOBAL_ITERATIONS} iterations")
            self.cluster.metrics.global_iterations += 1
            iteration_span = tracing.span(
                "fixpoint.iteration", var=var, iteration=iterations,
                delta=delta.count(),
                engine="columnar" if kernel_step else "row") \
                if traced else tracing.NOOP_SPAN
            with iteration_span:
                if kernel_step is not None:
                    # Same communication pattern as the row path: the
                    # constant operands go out per iteration (broadcast),
                    # their indexes are built once and reused after.
                    for size in bound.broadcast_sizes:
                        self.cluster.record_broadcast(size)
                    if iterations == 1:
                        for _ in range(bound.index_builds):
                            self.cluster.record_index_event(built=True)
                        for _ in range(bound.index_reuses):
                            self.cluster.record_index_event(built=False)
                    else:
                        for _ in range(bound.indexed_ops):
                            self.cluster.record_index_event(built=False)
                    produced = delta.map_partitions(kernel_step)
                else:
                    produced = self._evaluate_distributed(variable_part, var,
                                                          delta, evaluator)
                # new = phi(new) \ X    (global set difference: shuffle)
                delta = produced.subtract_distinct(accumulated)
                # X = X U new           (union + distinct: shuffle)
                accumulated = accumulated.union_distinct(delta)
                if traced:
                    iteration_span.set_attribute("produced", produced.count())
                    iteration_span.set_attribute("total", accumulated.count())
        return accumulated.collect()

    def _kernel_partition_task(self, bound):
        """One partition's iteration step as a shippable closure.

        Encode, kernel chain, decode — all inside the task.  Under the
        process backend the closure (dictionary and bound indexes
        included) travels via cloudpickle; a worker's dictionary copy may
        intern codes for values the driver has not seen, which is sound
        because the partition is decoded with that same copy before
        anything returns.
        """
        dictionary = self._dictionary
        step = bound.step

        def run(partition: Relation, _worker_id: int) -> Relation:
            batch = step(partition.columnar(dictionary).batch())
            return ColumnarRelation(batch.columns, batch.arrays,
                                    dictionary).to_relation()
        return run

    # -- Distributed evaluation of the variable part -------------------------------

    def _evaluate_distributed(self, term: Term, var: str,
                              dataset: DistributedRelation,
                              evaluator: Evaluator) -> DistributedRelation:
        """Evaluate a term where ``var`` is bound to a distributed dataset.

        Operators applied to the recursive side become per-partition tasks;
        joins against recursion-constant relations are broadcast joins; the
        recursion-constant subterms themselves are evaluated once on the
        driver.
        """
        if isinstance(term, RelVar) and term.name == var:
            return dataset
        if is_constant_in(term, var):
            relation = evaluator.evaluate_constant(term)
            return DistributedRelation.from_relation(self.cluster, relation)
        if isinstance(term, Filter):
            child = self._evaluate_distributed(term.child, var, dataset, evaluator)
            return child.filter(term.predicate)
        if isinstance(term, Rename):
            child = self._evaluate_distributed(term.child, var, dataset, evaluator)
            return child.map_partitions(
                lambda partition, _: partition.rename(term.old, term.new))
        if isinstance(term, AntiProject):
            child = self._evaluate_distributed(term.child, var, dataset, evaluator)
            return child.map_partitions(
                lambda partition, _: partition.antiproject(term.columns))
        if isinstance(term, Join):
            return self._binary(term, var, dataset, evaluator,
                                broadcast="join")
        if isinstance(term, Antijoin):
            return self._binary(term, var, dataset, evaluator,
                                broadcast="antijoin")
        if isinstance(term, Union):
            left = self._evaluate_distributed(term.left, var, dataset, evaluator)
            right = self._evaluate_distributed(term.right, var, dataset, evaluator)
            merged = [mine.union(theirs)
                      for mine, theirs in zip(left.partitions, right.partitions)]
            return DistributedRelation(self.cluster, merged)
        if isinstance(term, Fixpoint):
            # A nested fixpoint that is not constant in var would be mutual
            # recursion, which Fcond excludes; reaching this means the term
            # is malformed.
            raise DistributionError(
                "nested fixpoints depending on the outer recursive variable "
                "are not supported (mutual recursion)")
        raise DistributionError(
            f"cannot distribute term of type {type(term).__name__}")

    def _binary(self, term: Join | Antijoin, var: str,
                dataset: DistributedRelation, evaluator: Evaluator,
                broadcast: str) -> DistributedRelation:
        left_constant = is_constant_in(term.left, var)
        right_constant = is_constant_in(term.right, var)
        if left_constant == right_constant:
            raise DistributionError(
                "exactly one operand of a join/antijoin may depend on the "
                "recursive variable (Fcond linearity)")
        recursive_side = term.right if left_constant else term.left
        constant_side = term.left if left_constant else term.right
        recursive_dataset = self._evaluate_distributed(recursive_side, var,
                                                       dataset, evaluator)
        # The constant side is memoized on the evaluator: every iteration
        # broadcasts (and probes the index of) the very same relation.
        constant_relation = evaluator.evaluate_constant(constant_side)
        common = tuple(c for c in recursive_dataset.columns
                       if c in constant_relation.columns)
        if broadcast == "join":
            self._warm_broadcast_index(constant_relation, common)
            return recursive_dataset.join_broadcast(constant_relation)
        if not left_constant:
            self._warm_broadcast_index(constant_relation, common)
            return recursive_dataset.antijoin_broadcast(constant_relation)
        raise DistributionError(
            "the recursive variable may not appear on the right of an "
            "antijoin (Fcond positivity)")


@dataclass(frozen=True)
class LocalLoopOutcome:
    """What one worker's local fixpoint task reports back to the driver.

    The tasks run on the executor backend — possibly in another thread or
    process — so everything they observe (iteration counts, marshalled
    tuples) travels back as data instead of being written into the shared
    :class:`~repro.distributed.cluster.ClusterMetrics` mid-flight.
    """

    relation: Relation
    iterations: int
    tuples_marshalled: int = 0
    index_builds: int = 0
    index_reuses: int = 0


def run_spark_local_loop(fixpoint: Fixpoint, database: Mapping[str, Relation],
                         chunk: Relation, max_iterations: int) -> LocalLoopOutcome:
    """One worker's ``Pplw^s`` local fixpoint (semi-naive, Spark-style ops).

    Module-level so process-pool executors can ship it by name; ``database``
    holds only the broadcast relations the variable part needs.  The result
    grows in a delta accumulator and joins against the broadcast relations
    go through their memoized indexes — under the threads backend the
    broadcast relations are shared objects, so one build serves every
    worker's loop.
    """
    decomposition = decompose(fixpoint)
    evaluator = Evaluator(database)
    traced = tracing.tracing_enabled()
    loop_span = tracing.span("fixpoint.local_loop", var=fixpoint.var,
                             variant="spark",
                             seed=len(chunk)) if traced else tracing.NOOP_SPAN
    with loop_span:
        # The columnar kernels run the whole local loop when they support
        # the shape; the process-default program cache gives in-process
        # task reuse (compile once, bind per chunk).
        kernel_result = try_columnar_fixpoint(
            None, fixpoint.var, decomposition.variable_part, chunk,
            snapshot_dictionary(database), evaluator.evaluate_constant,
            max_iterations,
            f"local fixpoint on {fixpoint.var!r} did not converge "
            f"within {max_iterations} iterations")
        if kernel_result is not None:
            if traced:
                loop_span.set_attribute("iterations", kernel_result.iterations)
                loop_span.set_attribute("total", len(kernel_result.relation))
            return LocalLoopOutcome(relation=kernel_result.relation,
                                    iterations=kernel_result.iterations,
                                    index_builds=kernel_result.index_builds,
                                    index_reuses=kernel_result.index_reuses)
        accumulator = DeltaAccumulator(chunk)
        delta = chunk
        env: dict[str, Relation] = {}
        iterations = 0
        while delta:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError(
                    f"local fixpoint on {fixpoint.var!r} did not converge "
                    f"within {max_iterations} iterations")
            env[fixpoint.var] = delta
            iteration_span = tracing.span(
                "fixpoint.iteration", var=fixpoint.var, iteration=iterations,
                delta=len(delta)) if traced else tracing.NOOP_SPAN
            with iteration_span:
                produced = evaluator.evaluate(decomposition.variable_part,
                                              env=env)
                delta = accumulator.absorb(produced)
                if traced:
                    iteration_span.set_attribute("produced", len(produced))
                    iteration_span.set_attribute("total", len(accumulator))
        if traced:
            loop_span.set_attribute("iterations", iterations)
            loop_span.set_attribute("total", len(accumulator))
    return LocalLoopOutcome(relation=accumulator.relation(),
                            iterations=iterations,
                            index_builds=evaluator.stats.index_builds,
                            index_reuses=evaluator.stats.index_reuses)


def run_postgres_local_loop(fixpoint: Fixpoint, database: Mapping[str, Relation],
                            chunk: Relation, max_iterations: int) -> LocalLoopOutcome:
    """One worker's ``Pplw^pg`` local fixpoint, delegated to the local engine."""
    engine = LocalSQLEngine(database, max_iterations=max_iterations)
    marshalled = len(chunk)
    with tracing.span("fixpoint.local_loop", var=fixpoint.var,
                      variant="postgres", seed=len(chunk)) as loop_span:
        result = engine.evaluate_fixpoint(fixpoint, seed_override=chunk)
        loop_span.set_attribute("iterations", engine.stats.iterations)
        loop_span.set_attribute("total", len(result))
    marshalled += len(result)
    return LocalLoopOutcome(relation=result, iterations=engine.stats.iterations,
                            tuples_marshalled=marshalled,
                            index_builds=engine.stats.index_builds,
                            index_reuses=engine.stats.index_reuses)


class ParallelLocalLoops(DistributedFixpointPlan):
    """Common machinery of the two ``Pplw`` variants.

    Splits the constant part (by stable column when possible), broadcasts
    the recursion-constant relations of the variable part, and submits one
    local-fixpoint task per worker to the cluster's executor backend — the
    tasks share no state, which is exactly the paper's claim that the local
    loops run without coordination.  Subclasses pick the task function.
    """

    #: Module-level function computing one worker's local fixpoint.
    local_loop_task = None

    def execute(self, fixpoint: Fixpoint) -> Relation:
        self._check_closed(fixpoint)
        decomposition = decompose(fixpoint)
        evaluator = self._central_evaluator()
        constant = evaluator.evaluate(decomposition.constant_part)
        if decomposition.variable_part is None:
            return constant
        decision = self._partitioning(fixpoint)
        self.cluster.metrics.partitioning = decision.strategy
        chunks = split_constant_part(constant, self.cluster, decision)
        broadcast_names = self._broadcast_variable_part(
            decomposition.variable_part, fixpoint.var)
        # The worker tasks receive exactly the broadcast relations: the
        # constant part arrives pre-evaluated as the chunk, so this is what
        # a real cluster would put on the wire (and what the process
        # backend pickles per task).
        shipped = {name: self.database[name] for name in broadcast_names}
        max_iterations = local_engine_module.MAX_LOCAL_ITERATIONS
        outcomes = self.cluster.run_tasks(
            type(self).local_loop_task,
            [(fixpoint, shipped, chunk, max_iterations) for chunk in chunks])
        local_results: list[Relation] = []
        for worker_id, outcome in enumerate(outcomes):
            loop: LocalLoopOutcome = outcome.value
            self.cluster.record_worker_tuples(worker_id, len(loop.relation))
            self.cluster.metrics.local_iterations += loop.iterations
            self.cluster.metrics.tuples_marshalled += loop.tuples_marshalled
            self.cluster.metrics.index_builds += loop.index_builds
            self.cluster.metrics.index_reuses += loop.index_reuses
            local_results.append(loop.relation)
        return self._final_union(local_results, constant.columns, decision)

    # -- Shared steps ----------------------------------------------------------------

    def _broadcast_variable_part(self, variable_part: Term,
                                 var: str) -> list[str]:
        """Record the broadcast of every base relation used by the recursion.

        Returns the broadcast relation names; the caller ships exactly
        those to the worker tasks, keeping the communication accounting
        and the actual task payload in lockstep.
        """
        broadcast_names = sorted(name
                                 for name in free_variables(variable_part) - {var}
                                 if name in self.database)
        for name in broadcast_names:
            self.cluster.record_broadcast(len(self.database[name]))
        return broadcast_names

    def _final_union(self, locals_: list[Relation], columns: tuple[str, ...],
                     decision: PartitioningDecision) -> Relation:
        set_rdd = SetRDD(self.cluster, [
            chunk if chunk.columns == columns else Relation(columns, chunk.rows)
            for chunk in locals_
        ])
        if decision.disjoint:
            # Stable-column partitioning: the local fixpoints are pairwise
            # disjoint, no duplicate elimination (and no shuffle) is needed.
            self.cluster.metrics.final_union_skipped = True
            return set_rdd.collect_no_dedup()
        total = set_rdd.count()
        self.cluster.record_shuffle(total)
        collected = set_rdd.collect()
        self.cluster.metrics.duplicates_eliminated += total - len(collected)
        return collected


class ParallelLocalLoopsSpark(ParallelLocalLoops):
    """``Pplw^s``: local loops implemented with Spark operations.

    Each worker iterates on its own SetRDD partition; joins against the
    broadcast relations and partition-wise union / set-difference never
    exchange data with other workers.
    """

    name = PPLW_SPARK
    local_loop_task = staticmethod(run_spark_local_loop)


class ParallelLocalLoopsPostgres(ParallelLocalLoops):
    """``Pplw^pg``: each worker delegates its local loop to PostgreSQL.

    The worker's chunk becomes a view in the local engine, the fixpoint is
    executed there (benefitting from prebuilt indexes), and the result is
    iterated back — the marshalling in both directions is accounted for in
    the metrics, because it is what penalises this plan when intermediate
    data is small (Fig. 5).
    """

    name = PPLW_POSTGRES
    local_loop_task = staticmethod(run_postgres_local_loop)


#: Registry used by the physical plan generator and the benchmarks.
PLAN_CLASSES = {
    PGLD: GlobalLoopOnDriver,
    PPLW_SPARK: ParallelLocalLoopsSpark,
    PPLW_POSTGRES: ParallelLocalLoopsPostgres,
}


def make_plan(name: str, cluster: SparkCluster,
              database: Mapping[str, Relation],
              kernel_cache: KernelProgramCache | None = None,
              ) -> DistributedFixpointPlan:
    """Instantiate a fixpoint plan by name (``pgld``, ``plw-spark``, ``plw-postgres``)."""
    try:
        plan_class = PLAN_CLASSES[name]
    except KeyError as exc:
        raise DistributionError(
            f"unknown physical plan {name!r}; known plans: {sorted(PLAN_CLASSES)}"
        ) from exc
    return plan_class(cluster, database, kernel_cache=kernel_cache)
