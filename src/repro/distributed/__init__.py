"""Distributed runtime: simulated cluster, RDDs, physical fixpoint plans."""

from .cluster import (DEFAULT_NUM_WORKERS, ClusterMetrics, SparkCluster,
                      Worker)
from .local_engine import (LocalExecutionStats, LocalSQLEngine,
                           fixpoint_to_sql)
from .partitioner import (ROUND_ROBIN, STABLE_COLUMN, PartitioningDecision,
                          plan_partitioning, split_constant_part)
from .physical import (AUTO, DEFAULT_MEMORY_PER_TASK, DistributedQueryExecutor,
                       ExecutionOutcome, PhysicalPlan, PhysicalPlanGenerator)
from .plans import (PGLD, PLAN_CLASSES, PPLW_POSTGRES, PPLW_SPARK,
                    DistributedFixpointPlan, GlobalLoopOnDriver,
                    ParallelLocalLoops, ParallelLocalLoopsPostgres,
                    ParallelLocalLoopsSpark, make_plan)
from .rdd import DistributedRelation, SetRDD

__all__ = [
    "AUTO",
    "ClusterMetrics",
    "DEFAULT_MEMORY_PER_TASK",
    "DEFAULT_NUM_WORKERS",
    "DistributedFixpointPlan",
    "DistributedQueryExecutor",
    "DistributedRelation",
    "ExecutionOutcome",
    "GlobalLoopOnDriver",
    "LocalExecutionStats",
    "LocalSQLEngine",
    "PGLD",
    "PLAN_CLASSES",
    "PPLW_POSTGRES",
    "PPLW_SPARK",
    "ParallelLocalLoops",
    "ParallelLocalLoopsPostgres",
    "ParallelLocalLoopsSpark",
    "PartitioningDecision",
    "PhysicalPlan",
    "PhysicalPlanGenerator",
    "ROUND_ROBIN",
    "STABLE_COLUMN",
    "SetRDD",
    "SparkCluster",
    "Worker",
    "fixpoint_to_sql",
    "make_plan",
    "plan_partitioning",
    "split_constant_part",
]
