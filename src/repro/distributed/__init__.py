"""Distributed runtime: simulated cluster, RDDs, physical fixpoint plans."""

from .cluster import (DEFAULT_NUM_WORKERS, ClusterMetrics, SparkCluster,
                      Worker)
from .executor import (EXECUTOR_BACKENDS, PROCESSES, SERIAL, THREADS,
                       ExecutorBackend, ProcessExecutor, SerialExecutor,
                       TaskOutcome, ThreadExecutor, make_executor)
from .local_engine import (LocalExecutionStats, LocalSQLEngine,
                           fixpoint_to_sql)
from .partitioner import (ROUND_ROBIN, STABLE_COLUMN, PartitioningDecision,
                          plan_partitioning, split_constant_part)
from .physical import (AUTO, DEFAULT_MEMORY_PER_TASK, DistributedQueryExecutor,
                       ExecutionOutcome, PhysicalPlan, PhysicalPlanGenerator)
from .plans import (PGLD, PLAN_CLASSES, PPLW_POSTGRES, PPLW_SPARK,
                    DistributedFixpointPlan, GlobalLoopOnDriver,
                    ParallelLocalLoops, ParallelLocalLoopsPostgres,
                    ParallelLocalLoopsSpark, make_plan)
from .rdd import DistributedRelation, SetRDD

__all__ = [
    "AUTO",
    "ClusterMetrics",
    "DEFAULT_MEMORY_PER_TASK",
    "DEFAULT_NUM_WORKERS",
    "DistributedFixpointPlan",
    "DistributedQueryExecutor",
    "DistributedRelation",
    "EXECUTOR_BACKENDS",
    "ExecutionOutcome",
    "ExecutorBackend",
    "GlobalLoopOnDriver",
    "LocalExecutionStats",
    "LocalSQLEngine",
    "PGLD",
    "PLAN_CLASSES",
    "PPLW_POSTGRES",
    "PPLW_SPARK",
    "PROCESSES",
    "ParallelLocalLoops",
    "ParallelLocalLoopsPostgres",
    "ParallelLocalLoopsSpark",
    "PartitioningDecision",
    "PhysicalPlan",
    "PhysicalPlanGenerator",
    "ProcessExecutor",
    "ROUND_ROBIN",
    "SERIAL",
    "STABLE_COLUMN",
    "SerialExecutor",
    "SetRDD",
    "SparkCluster",
    "THREADS",
    "TaskOutcome",
    "ThreadExecutor",
    "Worker",
    "fixpoint_to_sql",
    "make_executor",
    "make_plan",
    "plan_partitioning",
    "split_constant_part",
]
