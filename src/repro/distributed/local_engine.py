"""Per-worker local relational engine (the PostgreSQL stand-in).

In the ``Pplw^pg`` physical plan, every Spark worker delegates its local
fixpoint to a PostgreSQL instance running next to it: the worker's chunk of
the constant part is exposed as a view, the mu-RA fixpoint is translated to
a recursive SQL query, and the rows are iterated back into Spark.

This module provides the equivalent component for the reproduction:
:class:`LocalSQLEngine` is a single-node engine that

* registers base relations as *tables* and builds **hash indexes** on the
  join columns it needs — once, before the recursion starts,
* evaluates the fixpoint with the semi-naive algorithm, using the prebuilt
  indexes to extend the delta at every iteration (this is what makes it
  faster than the generic evaluator when the intermediate data is large,
  reproducing the crossover of Fig. 5),
* can render the fixpoint as an indicative ``WITH RECURSIVE`` SQL string
  (:func:`fixpoint_to_sql`), mirroring the translation step of the paper.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..algebra.conditions import Decomposition, decompose
from ..algebra.kernels import KernelProgramCache, try_columnar_fixpoint
from ..algebra.printer import term_to_string
from ..algebra.terms import (AntiProject, Antijoin, Filter, Fixpoint, Join,
                             Literal, Rename, RelVar, Term, Union)
from ..algebra.variables import is_constant_in
from ..data.columnar import snapshot_dictionary
from ..data.relation import Relation
from ..data.storage import DeltaAccumulator, HashIndex
from ..errors import DistributionError, EvaluationError

#: Safety bound on local fixpoint iterations.
MAX_LOCAL_ITERATIONS = 1_000_000


@dataclass
class LocalExecutionStats:
    """Counters reported by one local fixpoint execution."""

    iterations: int = 0
    tuples_produced: int = 0
    index_builds: int = 0
    index_reuses: int = 0
    indexed_probes: int = 0
    tables_registered: int = 0


class LocalSQLEngine:
    """A single-node relational engine with prebuilt join indexes."""

    def __init__(self, database: Mapping[str, Relation],
                 max_iterations: int | None = None,
                 kernel_cache: KernelProgramCache | None = None):
        # Captured before the dict() copy: snapshots carry the shared
        # per-graph value dictionary, plain mappings get a private one.
        self._dictionary = snapshot_dictionary(database)
        self._kernel_cache = kernel_cache
        self.database = dict(database)
        #: Iteration bound for the semi-naive loop; ``None`` defers to the
        #: module-level :data:`MAX_LOCAL_ITERATIONS` at evaluation time.
        self.max_iterations = max_iterations
        self.stats = LocalExecutionStats()
        self.stats.tables_registered = len(self.database)
        self._constant_cache: dict[Term, Relation] = {}

    # -- Public API -----------------------------------------------------------

    def register_table(self, name: str, relation: Relation) -> None:
        """Register (or replace) a table; mirrors creating a view in Postgres."""
        self.database[name] = relation
        self.stats.tables_registered += 1

    def evaluate_fixpoint(self, fixpoint: Fixpoint,
                          seed_override: Relation | None = None) -> Relation:
        """Evaluate a fixpoint locally with the semi-naive algorithm.

        ``seed_override`` replaces the evaluated constant part; the
        distributed runtime uses it to run the fixpoint on one worker's
        chunk of the constant part (the "view" of the paper).
        """
        decomposition = decompose(fixpoint)
        seed = (seed_override if seed_override is not None
                else self._evaluate(decomposition.constant_part, {}))
        if decomposition.variable_part is None:
            return seed
        return self._semi_naive(decomposition, seed)

    def evaluate(self, term: Term) -> Relation:
        """Evaluate an arbitrary term (fixpoints handled recursively)."""
        return self._evaluate(term, {})

    # -- Semi-naive loop with indexed joins -------------------------------------

    def _semi_naive(self, decomposition: Decomposition, seed: Relation) -> Relation:
        var = decomposition.var
        variable_part = decomposition.variable_part
        limit = (self.max_iterations if self.max_iterations is not None
                 else MAX_LOCAL_ITERATIONS)
        kernel_result = try_columnar_fixpoint(
            self._kernel_cache, var, variable_part, seed, self._dictionary,
            self._evaluate_constant, limit,
            f"local fixpoint on {var!r} did not converge "
            f"within {limit} iterations")
        if kernel_result is not None:
            self.stats.iterations += kernel_result.iterations
            self.stats.tuples_produced += len(kernel_result.relation)
            self.stats.index_builds += kernel_result.index_builds
            self.stats.index_reuses += kernel_result.index_reuses
            self.stats.indexed_probes += kernel_result.probes
            return kernel_result.relation
        accumulator = DeltaAccumulator(seed)
        delta = seed
        env: dict[str, Relation] = {}
        iterations = 0
        schema_checked = False
        while delta:
            iterations += 1
            if iterations > limit:
                raise EvaluationError(
                    f"local fixpoint on {var!r} did not converge "
                    f"within {limit} iterations")
            env[var] = delta
            produced = self._evaluate(variable_part, env)
            if not schema_checked:
                if produced.columns != seed.columns:
                    raise EvaluationError(
                        f"local fixpoint on {var!r}: variable part schema "
                        f"{produced.columns} differs from seed schema "
                        f"{seed.columns}")
                schema_checked = True
            delta = accumulator.absorb(produced)
        result = accumulator.relation()
        self.stats.iterations += iterations
        self.stats.tuples_produced += len(result)
        return result

    # -- Term evaluation ----------------------------------------------------------

    def _evaluate(self, term: Term, env: dict[str, Relation]) -> Relation:
        if isinstance(term, RelVar):
            if term.name in env:
                return env[term.name]
            if term.name in self.database:
                return self.database[term.name]
            raise EvaluationError(f"unknown table {term.name!r} in local engine")
        if isinstance(term, Literal):
            return term.relation
        if isinstance(term, Filter):
            return self._evaluate(term.child, env).filter(term.predicate)
        if isinstance(term, Rename):
            return self._evaluate(term.child, env).rename(term.old, term.new)
        if isinstance(term, AntiProject):
            return self._evaluate(term.child, env).antiproject(term.columns)
        if isinstance(term, Union):
            return self._evaluate(term.left, env).union(self._evaluate(term.right, env))
        if isinstance(term, Antijoin):
            return self._evaluate(term.left, env).antijoin(
                self._evaluate(term.right, env))
        if isinstance(term, Join):
            return self._evaluate_join(term, env)
        if isinstance(term, Fixpoint):
            return self.evaluate_fixpoint(term)
        raise EvaluationError(
            f"local engine cannot evaluate {type(term).__name__}")

    def _evaluate_join(self, term: Join, env: dict[str, Relation]) -> Relation:
        """Joins against recursion-constant operands use a cached hash index."""
        recursive_vars = set(env)
        left_constant = all(is_constant_in(term.left, var) for var in recursive_vars)
        right_constant = all(is_constant_in(term.right, var) for var in recursive_vars)
        if recursive_vars and left_constant != right_constant:
            constant_side = term.left if left_constant else term.right
            variable_side = term.right if left_constant else term.left
            constant_relation = self._evaluate_constant(constant_side)
            variable_relation = self._evaluate(variable_side, env)
            common = tuple(c for c in variable_relation.columns
                           if c in constant_relation.columns)
            if common:
                return self._indexed_join(variable_relation,
                                          constant_relation, common)
            return variable_relation.natural_join(constant_relation)
        left = self._evaluate(term.left, env)
        right = self._evaluate(term.right, env)
        return left.natural_join(right)

    def _evaluate_constant(self, term: Term) -> Relation:
        if term not in self._constant_cache:
            self._constant_cache[term] = self._evaluate(term, {})
        return self._constant_cache[term]

    def _indexed_join(self, probe: Relation, build_relation: Relation,
                      key_columns: tuple[str, ...]) -> Relation:
        index = self._index_for(build_relation, key_columns)
        probe_indices = [probe.columns.index(column) for column in key_columns]
        output_columns = tuple(sorted(set(probe.columns) | set(build_relation.columns)))
        plan = []
        for column in output_columns:
            if column in probe.columns:
                plan.append((0, probe.columns.index(column)))
            else:
                plan.append((1, build_relation.columns.index(column)))
        rows = set()
        for row in probe.rows:
            key = tuple(row[i] for i in probe_indices)
            for match in index.probe(key):
                rows.add(tuple(row[i] if side == 0 else match[i]
                               for side, i in plan))
            self.stats.indexed_probes += 1
        return Relation._from_trusted(output_columns, rows)

    def _index_for(self, relation: Relation,
                   key_columns: tuple[str, ...]) -> HashIndex:
        """Return the shared per-relation index, counting builds vs reuses.

        The index lives *on the relation object* (see
        :meth:`repro.data.relation.Relation.index_on`), not in an
        engine-private cache: it cannot outlive its data — the
        stale-index-after-GC-address-reuse failure mode of the earlier
        ``id()``-keyed cache is structurally impossible — and any other
        layer joining the same relation reuses the same table.
        """
        if relation.has_index(key_columns):
            self.stats.index_reuses += 1
        else:
            self.stats.index_builds += 1
        return relation.index_on(key_columns)


# -- SQL rendering ----------------------------------------------------------------


def fixpoint_to_sql(fixpoint: Fixpoint, view_name: str = "constant_part") -> str:
    """Render a fixpoint as an indicative ``WITH RECURSIVE`` query.

    The rendering is documentation-oriented (it shows what is shipped to the
    per-worker engine); it is not parsed back.
    """
    if not isinstance(fixpoint, Fixpoint):
        raise DistributionError("fixpoint_to_sql expects a fixpoint term")
    decomposition = decompose(fixpoint)
    variable = decomposition.variable_part
    variable_text = term_to_string(variable) if variable is not None else "<none>"
    return (
        f"WITH RECURSIVE {fixpoint.var} AS (\n"
        f"    SELECT * FROM {view_name}\n"
        f"  UNION\n"
        f"    -- variable part: {variable_text}\n"
        f"    SELECT * FROM step({fixpoint.var})\n"
        f")\n"
        f"SELECT * FROM {fixpoint.var};"
    )
