"""Partitioned datasets: the RDD / Dataset / SetRDD abstractions.

Three Spark abstractions matter for the paper's execution plans:

* **Dataset** — relational data partitioned across workers, with
  shuffle-based operators (``distinct``, shuffle unions) used by the
  ``Pgld`` global-loop plan,
* **broadcast joins** — joining every partition against a relation copied
  to every worker, used inside the local loops of ``Pplw``,
* **SetRDD** — the BigDatalog abstraction reused by ``Pplw^s``: every
  partition is a *set*, and union / set-difference are computed partition
  wise, without any shuffle.

:class:`DistributedRelation` implements the first two and
:class:`SetRDD` extends it with the partition-wise operators.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..data.predicates import Predicate
from ..data.relation import Relation
from ..errors import DistributionError
from .cluster import SparkCluster


def _apply_partition_task(fn: Callable[[Relation, int], Relation],
                          partition: Relation, worker_id: int) -> Relation:
    """Module-level task body so pooled executors can address it by name."""
    return fn(partition, worker_id)


class DistributedRelation:
    """A relation split into one partition per worker."""

    def __init__(self, cluster: SparkCluster, partitions: list[Relation]):
        if len(partitions) != cluster.num_workers:
            raise DistributionError(
                f"expected {cluster.num_workers} partitions, got {len(partitions)}"
            )
        schemas = {partition.columns for partition in partitions}
        if len(schemas) != 1:
            raise DistributionError(
                f"all partitions must share one schema, got {sorted(schemas)}"
            )
        self.cluster = cluster
        self.partitions = list(partitions)
        self.columns = partitions[0].columns

    # -- Constructors ----------------------------------------------------------

    @classmethod
    def from_relation(cls, cluster: SparkCluster, relation: Relation,
                      key_columns: Iterable[str] | None = None) -> "DistributedRelation":
        """Distribute a relation over the cluster.

        With ``key_columns`` the relation is hash-partitioned on those
        columns (co-partitioning rows that agree on them); otherwise a
        round-robin split balances the partition sizes.
        """
        if key_columns is not None:
            partitions = relation.split_by_columns(tuple(key_columns),
                                                   cluster.num_workers)
        else:
            partitions = relation.split_round_robin(cluster.num_workers)
        return cls(cluster, partitions)

    # -- Basic accessors --------------------------------------------------------

    def count(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def partition_sizes(self) -> list[int]:
        return [len(partition) for partition in self.partitions]

    def collect(self) -> Relation:
        """Bring every partition back to the driver (deduplicating)."""
        rows: set = set()
        for partition in self.partitions:
            rows.update(partition.rows)
        return Relation._from_trusted(self.columns, rows)

    def is_empty(self) -> bool:
        return all(len(partition) == 0 for partition in self.partitions)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(partitions={self.partition_sizes()}, "
                f"columns={list(self.columns)})")

    # -- Narrow (per-partition) transformations ---------------------------------

    def map_partitions(self, fn: Callable[[Relation, int], Relation]) -> "DistributedRelation":
        """Apply a function to every partition (one task per partition).

        The tasks are independent, so they are submitted as one wave to the
        cluster's executor backend and run concurrently when the backend
        allows it.
        """
        outcomes = self.cluster.run_tasks(
            _apply_partition_task,
            [(fn, partition, worker_id)
             for worker_id, partition in enumerate(self.partitions)])
        new_partitions = []
        for worker_id, outcome in enumerate(outcomes):
            self.cluster.record_worker_tuples(worker_id, len(outcome.value))
            new_partitions.append(outcome.value)
        return type(self)(self.cluster, new_partitions)

    def filter(self, predicate: Predicate) -> "DistributedRelation":
        return self.map_partitions(lambda partition, _: partition.filter(predicate))

    def join_broadcast(self, relation: Relation) -> "DistributedRelation":
        """Natural-join every partition with a broadcast relation."""
        self.cluster.record_broadcast(len(relation))
        return self.map_partitions(
            lambda partition, _: partition.natural_join(relation))

    def antijoin_broadcast(self, relation: Relation) -> "DistributedRelation":
        self.cluster.record_broadcast(len(relation))
        return self.map_partitions(
            lambda partition, _: partition.antijoin(relation))

    # -- Wide (shuffle) transformations -------------------------------------------

    def repartition(self, key_columns: Iterable[str] | None = None) -> "DistributedRelation":
        """Reshuffle the data across workers (a full shuffle)."""
        collected = self.collect()
        self.cluster.record_shuffle(collected and len(collected) or 0)
        return type(self).from_relation(self.cluster, collected,
                                        key_columns=key_columns)

    def distinct(self) -> "DistributedRelation":
        """Global duplicate elimination: requires a shuffle by row hash."""
        total = self.count()
        self.cluster.record_shuffle(total)
        collected = self.collect()
        self.cluster.metrics.duplicates_eliminated += total - len(collected)
        return type(self).from_relation(self.cluster, collected)

    def union_distinct(self, other: "DistributedRelation") -> "DistributedRelation":
        """Spark-style union followed by ``distinct()`` (one shuffle)."""
        self._require_same_layout(other)
        merged = [mine.union(theirs)
                  for mine, theirs in zip(self.partitions, other.partitions)]
        return type(self)(self.cluster, merged).distinct()

    def subtract_distinct(self, other: "DistributedRelation") -> "DistributedRelation":
        """Global set difference: shuffles both sides by row hash."""
        self._require_same_layout(other)
        self.cluster.record_shuffle(self.count() + other.count())
        mine = self.collect()
        theirs = other.collect()
        return type(self).from_relation(self.cluster, mine.difference(theirs))

    # -- Internal ------------------------------------------------------------------

    def _require_same_layout(self, other: "DistributedRelation") -> None:
        if self.cluster is not other.cluster:
            raise DistributionError("datasets live on different clusters")
        if self.columns != other.columns:
            raise DistributionError(
                f"incompatible schemas {self.columns} and {other.columns}")


class SetRDD(DistributedRelation):
    """An RDD whose partitions are sets, with partition-wise set algebra.

    This is the abstraction BigDatalog introduced and that ``Pplw^s``
    reuses: because every worker runs its own local fixpoint, union and set
    difference never need to look at other partitions, so they are computed
    partition by partition without any shuffle.
    """

    def union_partitionwise(self, other: "DistributedRelation") -> "SetRDD":
        self._require_same_layout(other)
        merged = [mine.union(theirs)
                  for mine, theirs in zip(self.partitions, other.partitions)]
        return SetRDD(self.cluster, merged)

    def difference_partitionwise(self, other: "DistributedRelation") -> "SetRDD":
        self._require_same_layout(other)
        reduced = [mine.difference(theirs)
                   for mine, theirs in zip(self.partitions, other.partitions)]
        return SetRDD(self.cluster, reduced)

    def collect_no_dedup(self) -> Relation:
        """Concatenate partitions assuming they are pairwise disjoint.

        Valid when the data was partitioned on a stable column: the local
        fixpoints are then provably disjoint (Section III-B), so the final
        union does not need to eliminate duplicates.
        """
        rows: set = set()
        for partition in self.partitions:
            rows.update(partition.rows)
        return Relation._from_trusted(self.columns, rows)
