"""Physical plan generation, selection and distributed query execution.

The ``PhysicalPlanGenerator`` of Dist-mu-RA takes the selected logical plan
and decides how its fixpoints will be executed on the cluster:

* ``Pgld`` is generated as the baseline,
* the two ``Pplw`` variants are generated, and the choice between them
  follows the heuristic of Section III-D: when the datasets appearing in
  the variable part of the fixpoint exceed the memory available to a task,
  delegate the local loops to the per-worker PostgreSQL-like engine
  (``Pplw^pg``); otherwise keep them as Spark operations over broadcast
  relations (``Pplw^s``).

:class:`DistributedQueryExecutor` evaluates a full mu-RA term: its
outermost fixpoints are executed with the selected distributed plan, the
surrounding non-recursive operators are evaluated as ordinary (Catalyst-
optimised, in the real system) dataset operations.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from ..algebra.conditions import decompose
from ..algebra.evaluate import Evaluator
from ..algebra.kernels import KernelProgramCache
from ..algebra.terms import Fixpoint, Literal, Term
from ..algebra.variables import free_variables
from ..data.relation import Relation
from ..data.snapshot import adopt_database, database_schemas
from ..errors import PlanSelectionError
from ..obs import tracing
from .cluster import SparkCluster
from .partitioner import PartitioningDecision, plan_partitioning
from .plans import (PGLD, PLAN_CLASSES, PPLW_POSTGRES, PPLW_SPARK,
                    DistributedFixpointPlan, make_plan)

#: Default per-task memory budget, expressed in tuples (the simulation's
#: unit of data volume).  Mirrors the "memory available for a task" of the
#: selection heuristic.
DEFAULT_MEMORY_PER_TASK = 200_000

#: Strategy name meaning "let the heuristic decide".
AUTO = "auto"


@dataclass(frozen=True)
class PhysicalPlan:
    """The physical execution decision for one fixpoint."""

    strategy: str
    fixpoint: Fixpoint
    partitioning: PartitioningDecision
    variable_part_size: int

    def describe(self) -> str:
        return (f"{self.strategy} (partitioning={self.partitioning.strategy}, "
                f"variable-part size={self.variable_part_size})")


@dataclass
class ExecutionOutcome:
    """Result of one distributed execution, with its physical decisions."""

    relation: Relation
    physical_plans: list[PhysicalPlan] = field(default_factory=list)
    #: Name of the executor backend the cluster ran the plan's tasks on.
    executor: str = "serial"

    @property
    def strategies(self) -> tuple[str, ...]:
        return tuple(plan.strategy for plan in self.physical_plans)


class PhysicalPlanGenerator:
    """Generate and select physical plans for the fixpoints of a term."""

    def __init__(self, cluster: SparkCluster, database: Mapping[str, Relation],
                 memory_per_task: int = DEFAULT_MEMORY_PER_TASK,
                 kernel_cache: KernelProgramCache | None = None):
        self.cluster = cluster
        self.database = adopt_database(database)
        self.memory_per_task = memory_per_task
        self.kernel_cache = kernel_cache
        self._schemas = database_schemas(self.database)

    # -- Plan generation ---------------------------------------------------------

    def candidate_strategies(self) -> tuple[str, ...]:
        """All physical strategies the generator can emit."""
        return (PGLD, PPLW_SPARK, PPLW_POSTGRES)

    def generate(self, fixpoint: Fixpoint) -> list[PhysicalPlan]:
        """Generate one physical plan per strategy for a fixpoint."""
        partitioning = plan_partitioning(fixpoint, self._schemas)
        size = self.variable_part_size(fixpoint)
        return [PhysicalPlan(strategy=strategy, fixpoint=fixpoint,
                             partitioning=partitioning, variable_part_size=size)
                for strategy in self.candidate_strategies()]

    def select(self, fixpoint: Fixpoint) -> PhysicalPlan:
        """Select the physical plan for one fixpoint (heuristic of §III-D)."""
        partitioning = plan_partitioning(fixpoint, self._schemas)
        size = self.variable_part_size(fixpoint)
        strategy = PPLW_POSTGRES if size > self.memory_per_task else PPLW_SPARK
        return PhysicalPlan(strategy=strategy, fixpoint=fixpoint,
                            partitioning=partitioning, variable_part_size=size)

    def variable_part_size(self, fixpoint: Fixpoint) -> int:
        """Total size of the datasets appearing in the variable part.

        This is the quantity the selection heuristic compares against the
        per-task memory: the constant subterms of the variable part are the
        relations that ``Pplw^s`` would broadcast (or ``Pplw^pg`` would
        query from the local engine) at every iteration.
        """
        decomposition = decompose(fixpoint)
        if decomposition.variable_part is None:
            return 0
        names = free_variables(decomposition.variable_part) - {fixpoint.var}
        return sum(len(self.database[name]) for name in names
                   if name in self.database)

    # -- Execution ----------------------------------------------------------------

    def plan_for(self, strategy: str) -> DistributedFixpointPlan:
        if strategy not in PLAN_CLASSES:
            raise PlanSelectionError(
                f"unknown strategy {strategy!r}; known: {sorted(PLAN_CLASSES)}")
        return make_plan(strategy, self.cluster, self.database,
                         kernel_cache=self.kernel_cache)


class DistributedQueryExecutor:
    """Evaluate a mu-RA term with distributed fixpoint execution."""

    def __init__(self, cluster: SparkCluster, database: Mapping[str, Relation],
                 strategy: str = AUTO,
                 memory_per_task: int = DEFAULT_MEMORY_PER_TASK,
                 kernel_cache: KernelProgramCache | None = None):
        self.cluster = cluster
        self.database = adopt_database(database)
        self.strategy = strategy
        self.kernel_cache = kernel_cache
        self.generator = PhysicalPlanGenerator(cluster, self.database,
                                               memory_per_task=memory_per_task,
                                               kernel_cache=kernel_cache)

    def execute(self, term: Term) -> ExecutionOutcome:
        """Execute ``term``: distributed fixpoints, central surrounding ops."""
        physical_plans: list[PhysicalPlan] = []
        rewritten = self._execute_fixpoints(term, physical_plans)
        evaluator = Evaluator(self.database, kernel_cache=self.kernel_cache)
        relation = evaluator.evaluate(rewritten)
        return ExecutionOutcome(relation=relation, physical_plans=physical_plans,
                                executor=self.cluster.executor.name)

    # -- Internals ------------------------------------------------------------------

    def _execute_fixpoints(self, term: Term,
                           physical_plans: list[PhysicalPlan]) -> Term:
        """Replace every outermost fixpoint by the relation it evaluates to."""
        if isinstance(term, Fixpoint):
            physical = self._decide(term)
            physical_plans.append(physical)
            plan = self.generator.plan_for(physical.strategy)
            if not tracing.tracing_enabled():
                relation = plan.execute(term)
            else:
                with tracing.span(
                        "fixpoint", var=term.var, strategy=physical.strategy,
                        partitioning=physical.partitioning.strategy,
                        ) as fixpoint_span:
                    estimate = self._estimate_cardinality(term)
                    if estimate is not None:
                        fixpoint_span.set_attribute("estimated_rows", estimate)
                    relation = plan.execute(term)
                    fixpoint_span.set_attribute("actual_rows", len(relation))
                    if estimate:
                        fixpoint_span.set_attribute(
                            "drift", round(len(relation) / estimate, 4))
            return Literal(relation, name=f"fixpoint[{physical.strategy}]")
        children = term.children()
        if not children:
            return term
        new_children = tuple(self._execute_fixpoints(child, physical_plans)
                             for child in children)
        if new_children != children:
            term = term.with_children(new_children)
        return term

    def _estimate_cardinality(self, fixpoint: Fixpoint) -> int | None:
        """Cost-model estimate for one fixpoint, or ``None`` when the
        estimator cannot price it.

        Only called when tracing is enabled (EXPLAIN ANALYZE's
        estimate-vs-actual drift) — the disabled path never pays for it.
        """
        from ..cost.cardinality import CardinalityEstimator
        try:
            return CardinalityEstimator(self.database).cardinality(fixpoint)
        except Exception:
            return None

    def _decide(self, fixpoint: Fixpoint) -> PhysicalPlan:
        if self.strategy == AUTO:
            return self.generator.select(fixpoint)
        partitioning = plan_partitioning(
            fixpoint, database_schemas(self.database))
        return PhysicalPlan(strategy=self.strategy, fixpoint=fixpoint,
                            partitioning=partitioning,
                            variable_part_size=self.generator.variable_part_size(
                                fixpoint))
