"""Benchmark harness: system adapters, run records, table rendering."""

from .harness import (BIG_DATALOG, DIST_MU_RA, FAILED, GRAPHX, OK, UNSUPPORTED,
                      MeasuredRun, run_bigdatalog, run_distmura, run_graphx)
from .reporting import (comparison_table, latency_table, render_table,
                        series_table, speedup_summary)

__all__ = [
    "BIG_DATALOG",
    "DIST_MU_RA",
    "FAILED",
    "GRAPHX",
    "MeasuredRun",
    "OK",
    "UNSUPPORTED",
    "comparison_table",
    "latency_table",
    "render_table",
    "run_bigdatalog",
    "run_distmura",
    "run_graphx",
    "series_table",
    "speedup_summary",
]
