"""Rendering of benchmark results as the paper's tables and series.

Every benchmark prints, in addition to the pytest-benchmark timing table, a
compact textual table equivalent to the corresponding figure of the paper:
one row per query (or parameter value), one column per system, each cell a
time or a failure cross.  ``EXPERIMENTS.md`` records those tables next to
the paper's reported shapes.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from .harness import MeasuredRun


def comparison_table(runs: Iterable[MeasuredRun], title: str,
                     row_key: str = "query_id") -> str:
    """Format runs as a rows-by-system table (one row per query/dataset)."""
    runs = list(runs)
    systems: list[str] = []
    for run in runs:
        if run.system not in systems:
            systems.append(run.system)
    cells: dict[str, dict[str, str]] = defaultdict(dict)
    row_order: list[str] = []
    for run in runs:
        key = getattr(run, row_key)
        if key not in row_order:
            row_order.append(key)
        cells[key][run.system] = run.cell()
    header = [row_key] + systems
    widths = [max(len(header[0]), *(len(str(key)) for key in row_order) or [1])]
    widths += [max(len(system), 10) for system in systems]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for key in row_order:
        row = [str(key).ljust(widths[0])]
        for system, width in zip(systems, widths[1:]):
            row.append(cells[key].get(system, "-").ljust(width))
        lines.append("  ".join(row))
    return "\n".join(lines)


def series_table(points: Sequence[tuple[object, dict[str, float | str]]],
                 title: str, x_label: str = "x") -> str:
    """Format an (x -> {series: value}) sweep as a table (Fig. 5/14 style)."""
    series_names: list[str] = []
    for _, values in points:
        for name in values:
            if name not in series_names:
                series_names.append(name)
    header = [x_label] + series_names
    widths = [max(len(str(x)) for x, _ in points or [("x", {})])]
    widths[0] = max(widths[0], len(x_label))
    widths += [max(len(name), 10) for name in series_names]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(name.ljust(width) for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for x, values in points:
        row = [str(x).ljust(widths[0])]
        for name, width in zip(series_names, widths[1:]):
            value = values.get(name, "-")
            text = f"{value:.3f}" if isinstance(value, float) else str(value)
            row.append(text.ljust(width))
        lines.append("  ".join(row))
    return "\n".join(lines)


def speedup_summary(runs: Iterable[MeasuredRun], baseline_system: str,
                    contender_system: str) -> str:
    """Summarise who wins and by what factor (the shape the paper reports)."""
    runs = list(runs)
    by_query: dict[str, dict[str, MeasuredRun]] = defaultdict(dict)
    for run in runs:
        by_query[run.query_id][run.system] = run
    wins = losses = baseline_failures = contender_failures = 0
    speedups: list[float] = []
    for query_id, results in sorted(by_query.items()):
        baseline = results.get(baseline_system)
        contender = results.get(contender_system)
        if baseline is None or contender is None:
            continue
        if not baseline.succeeded:
            baseline_failures += 1
        if not contender.succeeded:
            contender_failures += 1
        if baseline.succeeded and contender.succeeded and contender.seconds > 0:
            ratio = baseline.seconds / contender.seconds
            speedups.append(ratio)
            if ratio >= 1.0:
                wins += 1
            else:
                losses += 1
    lines = [
        f"{contender_system} vs {baseline_system}:",
        f"  queries where {contender_system} is at least as fast: {wins}",
        f"  queries where {baseline_system} is faster: {losses}",
        f"  {baseline_system} failures: {baseline_failures}, "
        f"{contender_system} failures: {contender_failures}",
    ]
    if speedups:
        geometric_mean = 1.0
        for ratio in speedups:
            geometric_mean *= ratio
        geometric_mean **= (1.0 / len(speedups))
        lines.append(f"  geometric-mean speedup of {contender_system}: "
                     f"{geometric_mean:.2f}x")
    return "\n".join(lines)
