"""Rendering of benchmark results as the paper's tables and series.

Every benchmark prints, in addition to the pytest-benchmark timing table, a
compact textual table equivalent to the corresponding figure of the paper:
one row per query (or parameter value), one column per system, each cell a
time or a failure cross.  ``EXPERIMENTS.md`` records those tables next to
the paper's reported shapes.

All tables go through one shared renderer (:func:`render_table`), so the
figure tables, the parameter sweeps and the serving-layer latency tables
(:func:`latency_table`, with p50/p95/p99 columns) share one format.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from ..percentiles import DEFAULT_PERCENTILES
from ..percentiles import percentiles as percentiles_of
from .harness import MeasuredRun


def render_table(title: str, header: Sequence[str],
                 rows: Sequence[Sequence[str]],
                 min_width: int = 10) -> str:
    """Render a titled, column-aligned text table (the shared formatter).

    Column widths fit the widest cell (with ``min_width`` as a floor for
    every column but the first, matching the historical figure tables).
    """
    widths = [len(name) for name in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    widths = [widths[0]] + [max(width, min_width) for width in widths[1:]]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(name.ljust(width)
                           for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def comparison_table(runs: Iterable[MeasuredRun], title: str,
                     row_key: str = "query_id") -> str:
    """Format runs as a rows-by-system table (one row per query/dataset)."""
    runs = list(runs)
    systems: list[str] = []
    for run in runs:
        if run.system not in systems:
            systems.append(run.system)
    cells: dict[str, dict[str, str]] = defaultdict(dict)
    row_order: list[str] = []
    for run in runs:
        key = getattr(run, row_key)
        if key not in row_order:
            row_order.append(key)
        cells[key][run.system] = run.cell()
    rows = [[str(key)] + [cells[key].get(system, "-") for system in systems]
            for key in row_order]
    return render_table(title, [row_key] + systems, rows)


def series_table(points: Sequence[tuple[object, dict[str, float | str]]],
                 title: str, x_label: str = "x") -> str:
    """Format an (x -> {series: value}) sweep as a table (Fig. 5/14 style)."""
    series_names: list[str] = []
    for _, values in points:
        for name in values:
            if name not in series_names:
                series_names.append(name)
    rows = []
    for x, values in points:
        row = [str(x)]
        for name in series_names:
            value = values.get(name, "-")
            row.append(f"{value:.3f}" if isinstance(value, float) else str(value))
        rows.append(row)
    return render_table(title, [x_label] + series_names, rows)


def latency_table(rows: Sequence[tuple[str, Sequence[float]]], title: str,
                  row_label: str = "series",
                  percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                  unit: str = "s") -> str:
    """Format latency distributions with count/mean/percentile/max columns.

    ``rows`` maps a label to its raw latency samples; percentiles are
    fractions (0.95 renders as the ``p95`` column).  Used by the serving
    throughput benchmark and reusable by any table reporting latency
    spreads rather than single times.
    """
    fractions = tuple(percentiles)
    header = [row_label, "count", f"mean_{unit}"]
    header += [f"p{fraction * 100:g}_{unit}" for fraction in fractions]
    header += [f"max_{unit}"]
    table_rows = []
    for label, samples in rows:
        samples = list(samples)
        if samples:
            mean = sum(samples) / len(samples)
            spread = percentiles_of(samples, fractions)
            cells = [f"{mean:.4f}"]
            cells += [f"{spread[fraction]:.4f}" for fraction in fractions]
            cells += [f"{max(samples):.4f}"]
        else:
            cells = ["-"] * (len(fractions) + 2)
        table_rows.append([label, str(len(samples))] + cells)
    return render_table(title, header, table_rows)


def speedup_summary(runs: Iterable[MeasuredRun], baseline_system: str,
                    contender_system: str) -> str:
    """Summarise who wins and by what factor (the shape the paper reports)."""
    runs = list(runs)
    by_query: dict[str, dict[str, MeasuredRun]] = defaultdict(dict)
    for run in runs:
        by_query[run.query_id][run.system] = run
    wins = losses = baseline_failures = contender_failures = 0
    speedups: list[float] = []
    for _query_id, results in sorted(by_query.items()):
        baseline = results.get(baseline_system)
        contender = results.get(contender_system)
        if baseline is None or contender is None:
            continue
        if not baseline.succeeded:
            baseline_failures += 1
        if not contender.succeeded:
            contender_failures += 1
        if baseline.succeeded and contender.succeeded and contender.seconds > 0:
            ratio = baseline.seconds / contender.seconds
            speedups.append(ratio)
            if ratio >= 1.0:
                wins += 1
            else:
                losses += 1
    lines = [
        f"{contender_system} vs {baseline_system}:",
        f"  queries where {contender_system} is at least as fast: {wins}",
        f"  queries where {baseline_system} is faster: {losses}",
        f"  {baseline_system} failures: {baseline_failures}, "
        f"{contender_system} failures: {contender_failures}",
    ]
    if speedups:
        geometric_mean = 1.0
        for ratio in speedups:
            geometric_mean *= ratio
        geometric_mean **= (1.0 / len(speedups))
        lines.append(f"  geometric-mean speedup of {contender_system}: "
                     f"{geometric_mean:.2f}x")
    return "\n".join(lines)
