"""Benchmark harness: run one query on one system with failure semantics.

The paper's charts report, for every (system, query, dataset) combination,
either an evaluation time or a failure (timeout / out-of-memory, drawn as a
red cross).  The harness reproduces that protocol:

* :func:`run_distmura`, :func:`run_bigdatalog`, :func:`run_graphx` adapt the
  three systems to a common interface,
* every run returns a :class:`MeasuredRun` carrying the time, result size,
  status (``ok`` / ``failed`` / ``unsupported``) and the simulator counters,
* budgets (maximum derived facts, maximum Pregel messages) play the role of
  the paper's memory limits: exceeding them marks the run ``failed``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..baselines.datalog import BigDatalogEngine
from ..baselines.pregel import GraphXRPQEngine
from ..data.graph import LabeledGraph
from ..errors import ReproError
from ..session import Session
from ..workloads.common import WorkloadQuery

#: Run statuses reported in the benchmark tables.
OK = "ok"
FAILED = "failed"
UNSUPPORTED = "unsupported"

#: System names used in the tables (matching the paper's legends).
DIST_MU_RA = "Dist-mu-RA"
BIG_DATALOG = "BigDatalog"
GRAPHX = "GraphX"


@dataclass
class MeasuredRun:
    """One cell of a benchmark table."""

    system: str
    query_id: str
    dataset: str
    seconds: float
    rows: int
    status: str = OK
    detail: str = ""
    metrics: dict[str, object] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.status == OK

    def cell(self) -> str:
        """Render the run the way the paper's charts do (time or a cross)."""
        if self.status == OK:
            return f"{self.seconds:.3f}s"
        if self.status == UNSUPPORTED:
            return "n/a"
        return "X"


def run_distmura(graph: LabeledGraph, query: WorkloadQuery,
                 strategy: str | None = None, num_workers: int = 4,
                 optimize: bool = True, dataset: str | None = None,
                 executor: str = "serial",
                 engine: Session | None = None) -> MeasuredRun:
    """Run one workload query with Dist-mu-RA.

    ``executor`` selects the cluster's task backend (``serial``, ``threads``
    or ``processes``); it is ignored when a prebuilt ``engine`` (any
    :class:`Session`) is passed.  Every run goes through the lazy Session
    pipeline with the plan/result caches forced off *per call* — even on a
    prebuilt session whose caches are enabled — so measured times always
    include the full parse + explore + rank + execute path.
    """
    dataset = dataset or graph.name
    owns_engine = engine is None
    engine = engine if engine is not None else Session(
        graph, num_workers=num_workers, optimize=optimize, executor=executor,
        enable_plan_cache=False, enable_result_cache=False)
    started = time.perf_counter()
    try:
        result, _, _ = query.as_query(engine).run_once(
            strategy, use_plan_cache=False, use_result_cache=False)
        # Reported time = wall clock of the simulation + the modelled network
        # delay of the shuffles/broadcasts the plan performed + the simulated
        # task-schedule adjustment (the cluster only accounts both, it never
        # sleeps; the adjustment replaces the host's task timing by the
        # cluster's parallel makespan — see SparkCluster.record_task_wave).
        # Measured inside the try block so pool shutdown stays out of it.
        elapsed = max(time.perf_counter() - started
                      + engine.cluster.reported_time_adjustment, 1e-9)
    except ReproError as error:
        return MeasuredRun(system=DIST_MU_RA, query_id=query.qid, dataset=dataset,
                           seconds=time.perf_counter() - started, rows=0,
                           status=FAILED, detail=str(error))
    finally:
        if owns_engine:
            engine.close()
    return MeasuredRun(
        system=DIST_MU_RA, query_id=query.qid, dataset=dataset,
        seconds=elapsed, rows=len(result.relation),
        metrics=result.summary(),
    )


def run_bigdatalog(graph: LabeledGraph, query: WorkloadQuery,
                   num_workers: int = 4, max_facts: int | None = 3_000_000,
                   dataset: str | None = None,
                   datalog_program=None, goal_columns: tuple[str, ...] = ("src", "trg"),
                   ) -> MeasuredRun:
    """Run one workload query with the BigDatalog baseline.

    UCRPQ queries are translated automatically; C7 queries must pass their
    Datalog ``datalog_program`` explicitly (built by the workload module).
    """
    dataset = dataset or graph.name
    engine = BigDatalogEngine(graph, num_workers=num_workers, max_facts=max_facts)
    started = time.perf_counter()
    try:
        if query.is_ucrpq:
            result = engine.run_query(query.text)
            rows = len(result.relation)
            metrics = {"iterations": result.iterations,
                       "facts_derived": result.facts_derived}
            metrics.update(engine.cluster.metrics.summary())
        elif datalog_program is not None:
            relation = engine.run_program(datalog_program, goal_columns)
            rows = len(relation)
            metrics = {}
        else:
            return MeasuredRun(system=BIG_DATALOG, query_id=query.qid,
                               dataset=dataset, seconds=0.0, rows=0,
                               status=UNSUPPORTED,
                               detail="no Datalog program provided")
    except ReproError as error:
        return MeasuredRun(system=BIG_DATALOG, query_id=query.qid, dataset=dataset,
                           seconds=time.perf_counter() - started, rows=0,
                           status=FAILED, detail=str(error))
    # Same accounting as for Dist-mu-RA: wall clock plus modelled network
    # delay of the broadcasts/shuffles the evaluation would have performed.
    elapsed = (time.perf_counter() - started
               + engine.cluster.simulated_communication_delay)
    return MeasuredRun(system=BIG_DATALOG, query_id=query.qid, dataset=dataset,
                       seconds=elapsed, rows=rows,
                       metrics=metrics)


def run_graphx(graph: LabeledGraph, query: WorkloadQuery, num_workers: int = 4,
               max_messages: int | None = 3_000_000,
               dataset: str | None = None) -> MeasuredRun:
    """Run one workload query with the GraphX/Pregel baseline."""
    dataset = dataset or graph.name
    if not query.is_ucrpq:
        # Non-regular recursion is not expressible as an RPQ traversal.
        return MeasuredRun(system=GRAPHX, query_id=query.qid, dataset=dataset,
                           seconds=0.0, rows=0, status=UNSUPPORTED,
                           detail="non-regular query")
    engine = GraphXRPQEngine(graph, num_workers=num_workers,
                             max_messages=max_messages)
    started = time.perf_counter()
    try:
        result = engine.run_query(query.text)
    except ReproError as error:
        return MeasuredRun(system=GRAPHX, query_id=query.qid, dataset=dataset,
                           seconds=time.perf_counter() - started, rows=0,
                           status=FAILED, detail=str(error))
    return MeasuredRun(system=GRAPHX, query_id=query.qid, dataset=dataset,
                       seconds=time.perf_counter() - started,
                       rows=len(result.relation),
                       metrics={"supersteps": result.supersteps,
                                "messages": result.messages_sent})
