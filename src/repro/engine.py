"""The deprecated eager engine facade over the Session API.

:class:`DistMuRA` predates the staged :class:`~repro.session.Session`
pipeline and is kept as a thin compatibility subclass: construction,
mutations, ``translate`` / ``optimize`` / ``execute_term`` and the
introspection helpers are the Session's own; only the eager
:meth:`DistMuRA.query` entry point is specific to the facade (and
deprecation-warned).  New code should use the front-ends directly::

    from repro import Session

    session = Session(graph, num_workers=4, executor="threads")
    result = session.ucrpq("?x,?y <- ?x isLocatedIn+/dealsWith+ ?y").collect()

Two legacy defaults are preserved so existing callers observe byte-for-
byte identical behaviour: the facade disables the session-level plan and
result caches (the eager engine re-optimized on every call), which the
serving layer re-enables with its own configuration.
"""

from __future__ import annotations

from ._compat import warn_once
from .session.session import QueryResult, Session

__all__ = ["DistMuRA", "QueryResult", "Session"]


class DistMuRA(Session):
    """Deprecated eager facade: a Session whose caches default to off."""

    def __init__(self, *args, **options):
        options.setdefault("enable_plan_cache", False)
        options.setdefault("enable_result_cache", False)
        super().__init__(*args, **options)

    def query(self, query, strategy: str | None = None) -> QueryResult:
        """Run a UCRPQ end to end (parse, optimize, distribute, execute).

        .. deprecated:: 1.3
           Use ``session.ucrpq(query).collect(strategy=...)`` (lazy,
           cache-aware, inspectable) instead.
        """
        warn_once(
            "DistMuRA.query() is deprecated; build a lazy handle with "
            "Session.ucrpq(...)/.term(...) and call .collect() on it")
        return self.as_query(query).collect(strategy=strategy)
