"""The Dist-mu-RA engine facade.

:class:`DistMuRA` wires together the components described in Section IV of
the paper (and implemented by the sub-packages of this library)::

    UCRPQ ──Query2Mu──> mu-RA term ──MuRewriter──> equivalent logical plans
          ──CostEstimator──> selected logical plan
          ──PhysicalPlanGenerator──> Pgld / Pplw^s / Pplw^pg
          ──SparkExecutor / PgSQLExecutor──> result relation + metrics

Typical use::

    from repro import DistMuRA
    from repro.datasets import yago_like_graph

    engine = DistMuRA(yago_like_graph(scale=1000), num_workers=4,
                      executor="threads")
    result = engine.query("?x,?y <- ?x isLocatedIn+/dealsWith+ ?y")
    print(len(result.relation), result.physical_strategies, result.metrics.shuffles)

The ``executor`` argument selects the backend per-partition tasks run on
(``serial``, ``threads`` or ``processes`` — see
:mod:`repro.distributed.executor`); thread/process pools are released with
:meth:`DistMuRA.close` or by using the engine as a context manager.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from dataclasses import dataclass, field

from collections.abc import Iterable

from .algebra.evaluate import Evaluator
from .algebra.schema import schemas_of_database
from .algebra.terms import Term
from .cost.selection import RankedPlan, rank_plans
from .data.graph import INVERSE_PREFIX, PRED, SRC, TRG, LabeledGraph
from .data.relation import Relation
from .data.stats import StatisticsCatalog
from .distributed.cluster import ClusterMetrics, SparkCluster
from .distributed.executor import SERIAL, ExecutorBackend
from .distributed.physical import (AUTO, DEFAULT_MEMORY_PER_TASK,
                                   DistributedQueryExecutor)
from .errors import EvaluationError, SchemaError, TranslationError
from .query.ast import UCRPQ
from .query.classes import classify_query
from .query.parser import parse_query
from .query.translate import translate_query
from .rewriter.engine import MuRewriter


@dataclass
class QueryResult:
    """Everything produced by one query execution."""

    relation: Relation
    selected_plan: Term
    original_plan: Term
    plans_explored: int
    estimated_cost: float
    physical_strategies: tuple[str, ...]
    metrics: ClusterMetrics
    elapsed_seconds: float
    query_classes: frozenset[str] = field(default_factory=frozenset)

    def __len__(self) -> int:
        return len(self.relation)

    def summary(self) -> dict[str, object]:
        """Flat dictionary used by the benchmark reports."""
        summary = {
            "rows": len(self.relation),
            "plans_explored": self.plans_explored,
            "estimated_cost": round(self.estimated_cost, 1),
            "physical": ",".join(self.physical_strategies) or "central",
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "classes": ",".join(sorted(self.query_classes)),
        }
        summary.update(self.metrics.summary())
        return summary


class DistMuRA:
    """A Dist-mu-RA session bound to one database and one simulated cluster."""

    def __init__(self, data: LabeledGraph | Mapping[str, Relation],
                 num_workers: int = 4,
                 optimize: bool = True,
                 strategy: str = AUTO,
                 executor: str | ExecutorBackend = SERIAL,
                 memory_per_task: int = DEFAULT_MEMORY_PER_TASK,
                 max_plans: int = 64,
                 max_rounds: int = 8):
        if isinstance(data, LabeledGraph):
            self.database: dict[str, Relation] = data.relations()
        else:
            self.database = dict(data)
        self.cluster = SparkCluster(num_workers=num_workers, executor=executor)
        self.optimize_plans = optimize
        self.strategy = strategy
        self.memory_per_task = memory_per_task
        self.rewriter = MuRewriter(max_plans=max_plans, max_rounds=max_rounds)
        self._schemas = schemas_of_database(self.database)
        #: Persistent statistics used by the cost-based plan ranking.  The
        #: mutation API refreshes the touched entries, so estimates always
        #: reflect the current data (see :meth:`add_edges`).
        self.catalog = StatisticsCatalog(self.database)
        #: Monotonic counters tracking mutations: the database version is
        #: bumped on every mutation, and each touched relation records the
        #: version it was last changed at.  The serving layer keys its
        #: result cache on these counters.
        self._database_version = 0
        self._relation_versions: dict[str, int] = dict.fromkeys(self.database, 0)

    # -- Pipeline stages -----------------------------------------------------------

    def translate(self, query: str | UCRPQ) -> Term:
        """Parse (if needed) and translate a UCRPQ into a mu-RA term."""
        parsed = parse_query(query) if isinstance(query, str) else query
        missing = sorted(label for label in parsed.labels()
                         if label not in self.database)
        if missing:
            raise TranslationError(
                f"query references unknown edge labels {missing}")
        return translate_query(parsed)

    def optimize(self, term: Term) -> tuple[RankedPlan, list[RankedPlan]]:
        """Explore equivalent plans and rank them with the cost model.

        Ranking reads the session's persistent :attr:`catalog`, so cost
        estimates follow mutations instead of being recomputed from the
        full database on every call.
        """
        plans = self.rewriter.explore(term, self._schemas)
        ranked = rank_plans(plans, catalog=self.catalog)
        return ranked[0], ranked

    # -- Execution ------------------------------------------------------------------

    def execute_term(self, term: Term, strategy: str | None = None,
                     query_classes: frozenset[str] = frozenset(),
                     optimize: bool | None = None) -> QueryResult:
        """Optimize (optionally) and execute a mu-RA term.

        ``optimize`` overrides the session default for this call; the
        serving layer passes ``False`` when it executes a plan it already
        selected (and cached), skipping the rewriter and the cost ranking.
        """
        started = time.perf_counter()
        original = term
        plans_explored = 1
        estimated_cost = float("nan")
        should_optimize = self.optimize_plans if optimize is None else optimize
        if should_optimize:
            best, ranked = self.optimize(term)
            term = best.term
            plans_explored = len(ranked)
            estimated_cost = best.cost
        self.cluster.reset_metrics()
        executor = DistributedQueryExecutor(
            self.cluster, self.database,
            strategy=strategy if strategy is not None else self.strategy,
            memory_per_task=self.memory_per_task)
        outcome = executor.execute(term)
        elapsed = time.perf_counter() - started
        return QueryResult(
            relation=outcome.relation,
            selected_plan=term,
            original_plan=original,
            plans_explored=plans_explored,
            estimated_cost=estimated_cost,
            physical_strategies=outcome.strategies,
            metrics=self.cluster.metrics,
            elapsed_seconds=elapsed,
            query_classes=query_classes,
        )

    def query(self, query: str | UCRPQ, strategy: str | None = None) -> QueryResult:
        """Run a UCRPQ end to end (parse, optimize, distribute, execute)."""
        parsed = parse_query(query) if isinstance(query, str) else query
        term = self.translate(parsed)
        return self.execute_term(term, strategy=strategy,
                                 query_classes=classify_query(parsed))

    def evaluate_centralized(self, term: Term) -> Relation:
        """Reference single-node evaluation (used for testing and baselines)."""
        return Evaluator(self.database).evaluate(term)

    # -- Mutations and versioning ---------------------------------------------------

    @property
    def database_version(self) -> int:
        """Monotonic counter bumped by every mutation of the session."""
        return self._database_version

    def relation_version(self, name: str) -> int:
        """Version at which relation ``name`` last changed (0 = unchanged)."""
        return self._relation_versions.get(name, 0)

    def relation_versions(self, names: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """Sorted ``(name, version)`` snapshot of the given relations.

        Unknown names are included with version 0, so a cache entry built
        before a relation existed is invalidated when it appears.
        """
        return tuple((name, self.relation_version(name))
                     for name in sorted(set(names)))

    def add_edges(self, label: str,
                  pairs: Iterable[tuple[object, object]]) -> tuple[str, ...]:
        """Add ``(src, trg)`` edges to the ``label`` relation.

        The inverse relation ``-label`` and the ``facts`` triple table (when
        the database has them) are kept consistent, the touched relations'
        statistics are refreshed in :attr:`catalog`, and the database
        version is bumped.  Returns the names of the touched relations.
        """
        return self._apply_edge_mutation(label, pairs, removing=False)

    def remove_edges(self, label: str,
                     pairs: Iterable[tuple[object, object]]) -> tuple[str, ...]:
        """Remove ``(src, trg)`` edges from the ``label`` relation.

        Same consistency and invalidation contract as :meth:`add_edges`.
        """
        return self._apply_edge_mutation(label, pairs, removing=True)

    def _apply_edge_mutation(self, label: str, pairs, removing: bool) -> tuple[str, ...]:
        if label.startswith(INVERSE_PREFIX):
            raise TranslationError(
                f"mutate the base relation {label[len(INVERSE_PREFIX):]!r} "
                f"instead of the inverse {label!r}")
        edge_pairs = {(src, trg) for src, trg in pairs}
        if removing and label not in self.database:
            raise EvaluationError(
                f"cannot remove edges from unknown relation {label!r}")
        edge_columns = tuple(sorted((SRC, TRG)))
        existing = self.database.get(label)
        inverse = INVERSE_PREFIX + label
        # Plan and validate every delta *before* touching the database, so a
        # schema mismatch anywhere leaves the session completely unchanged
        # (a partial mutation would desynchronize versions and caches).
        planned: list[tuple[str, Relation | None, Relation]] = []
        delta = Relation.from_pairs(edge_pairs, columns=(SRC, TRG))
        planned.append((label, existing, delta))
        if inverse in self.database or existing is None:
            inverse_delta = Relation.from_pairs(
                {(trg, src) for src, trg in edge_pairs}, columns=(SRC, TRG))
            planned.append((inverse, self.database.get(inverse), inverse_delta))
        facts = self.database.get("facts")
        if facts is not None and facts.columns == tuple(sorted((SRC, PRED, TRG))):
            # Rows align with the sorted schema ('pred', 'src', 'trg').
            fact_delta = Relation(facts.columns,
                                  [(label, src, trg) for src, trg in edge_pairs])
            planned.append(("facts", facts, fact_delta))
        for name, current, name_delta in planned:
            if current is not None and current.columns != name_delta.columns:
                raise SchemaError(
                    f"relation {name!r} has schema {current.columns}; the "
                    f"edge mutation API only supports {name_delta.columns} "
                    f"relations")
        touched: list[str] = []
        for name, current, name_delta in planned:
            base = (current if current is not None
                    else Relation.empty(name_delta.columns))
            self.database[name] = (base.difference(name_delta) if removing
                                   else base.union(name_delta))
            touched.append(name)
        # Refresh the statistics *before* bumping the versions: a concurrent
        # reader (the service's unlocked plan phase) that observes the new
        # fingerprint must also observe the new statistics, otherwise it
        # could cache a stale-ranked plan under a current-looking key.  The
        # reverse interleaving (old fingerprint, new statistics) only wastes
        # a cache slot that never hits again.
        for name in touched:
            self.catalog.refresh(name, self.database[name])
        self._schemas = schemas_of_database(self.database)
        self._database_version += 1
        for name in touched:
            self._relation_versions[name] = self._database_version
        return tuple(touched)

    # -- Lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release the cluster's executor pools (threads/processes)."""
        self.cluster.close()

    def __enter__(self) -> "DistMuRA":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- Introspection -----------------------------------------------------------------

    def explain(self, query: str | UCRPQ) -> str:
        """Return a human-readable account of the optimisation of a query."""
        parsed = parse_query(query) if isinstance(query, str) else query
        term = self.translate(parsed)
        best, ranked = self.optimize(term)
        lines = [
            f"query: {parsed}",
            f"classes: {','.join(sorted(classify_query(parsed))) or 'none'}",
            f"plans explored: {len(ranked)}",
            f"selected cost: {best.cost:.1f}",
            f"selected plan: {best.term}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"DistMuRA(relations={len(self.database)}, "
                f"workers={self.cluster.num_workers}, "
                f"executor={self.cluster.executor.name!r}, "
                f"optimize={self.optimize_plans}, strategy={self.strategy!r})")
