"""Canonical normalization of terms for plan-space deduplication.

The term builders generate *fresh* internal column names (``_m12``) and
fresh fixpoint variable names (``X_7``) so that independently built terms
never clash.  The downside is that two syntactically identical plans built
at different times differ in those generated names, which would make the
plan-space exploration believe they are different plans (and explode).

:func:`canonicalize` renames, deterministically and consistently:

* every generated column name (any name starting with ``_``) to ``_n0``,
  ``_n1``, ... in pre-order first-encounter order, and
* every fixpoint variable to ``%X0``, ``%X1``, ... in pre-order.

Two plans that differ only by generated names therefore normalise to the
same term, which is what the engine uses as the plan identity.

:func:`cache_key` turns that identity into a *stable string*: because the
canonical form erases every session-specific generated name, the same query
translated in two different sessions (or twice in one session, with the
fresh-name counters at different positions) maps to the same key.  The
serving layer's plan and result caches are keyed on it.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping

from ..algebra.printer import term_to_string
from ..algebra.terms import (AntiProject, Filter, Fixpoint, Rename, Term)
from ..algebra.variables import substitute
from ..algebra.terms import RelVar
from ..algebra.visitors import walk

#: Prefix identifying machine-generated column names.
GENERATED_COLUMN_PREFIX = "_"
#: Prefix used for canonical fixpoint variable names.
CANONICAL_VARIABLE_PREFIX = "%X"


def substitute_columns(term: Term, mapping: Mapping[str, str]) -> Term:
    """Rename column names wherever they appear syntactically in a term.

    Only operator annotations are rewritten (renames, anti-projections and
    filter predicates); relation variables and literals are left untouched
    because generated names never appear in base relations.
    """
    if not mapping:
        return term

    def rename(column: str) -> str:
        return mapping.get(column, column)

    def rewrite(node: Term) -> Term:
        if isinstance(node, Rename):
            return Rename(rename(node.old), rename(node.new), node.child)
        if isinstance(node, AntiProject):
            return AntiProject(tuple(rename(c) for c in node.columns), node.child)
        if isinstance(node, Filter):
            # Apply the mapping simultaneously (it may contain swaps): go
            # through unique temporaries so sequential renames cannot chain.
            predicate = node.predicate
            temporaries = {old: f"__tmp_subst_{index}__"
                           for index, old in enumerate(mapping)}
            for old, temporary in temporaries.items():
                predicate = predicate.rename(old, temporary)
            for old, new in mapping.items():
                predicate = predicate.rename(temporaries[old], new)
            return Filter(predicate, node.child)
        return node

    return _transform_bottom_up(term, rewrite)


def canonicalize(term: Term) -> Term:
    """Return the canonical form of ``term`` (see module docstring)."""
    term = _canonicalize_variables(term)
    return _canonicalize_columns(term)


def cache_key(term: Term) -> str:
    """Return a stable string identity of ``term`` for caching.

    The key is the printed canonical form: independent of the state of the
    fresh-name counters, of the session, and of ``PYTHONHASHSEED`` (it is a
    plain string, not a hash), so it can safely key caches that outlive a
    session or are shared between sessions.
    """
    return term_to_string(canonicalize(term))


def _canonicalize_variables(term: Term) -> Term:
    counter = itertools.count()

    def rename_fixpoints(node: Term) -> Term:
        if isinstance(node, Fixpoint):
            canonical = f"{CANONICAL_VARIABLE_PREFIX}{next(counter)}"
            if node.var != canonical:
                body = substitute(node.body, node.var, RelVar(canonical))
                node = Fixpoint(canonical, body, direction=node.direction)
        children = node.children()
        if not children:
            return node
        new_children = tuple(rename_fixpoints(child) for child in children)
        if new_children != children:
            node = node.with_children(new_children)
        return node

    return rename_fixpoints(term)


def _canonicalize_columns(term: Term) -> Term:
    mapping: dict[str, str] = {}
    counter = itertools.count()
    for node in walk(term):
        for column in _generated_columns_of(node):
            if column not in mapping:
                mapping[column] = f"_n{next(counter)}"
    # Drop identity renamings to avoid useless work.
    mapping = {old: new for old, new in mapping.items() if old != new}
    return substitute_columns(term, mapping)


def _generated_columns_of(node: Term) -> list[str]:
    columns: list[str] = []
    if isinstance(node, Rename):
        columns.extend([node.old, node.new])
    elif isinstance(node, AntiProject):
        columns.extend(node.columns)
    elif isinstance(node, Filter):
        columns.extend(sorted(node.predicate.columns()))
    return [c for c in columns if c.startswith(GENERATED_COLUMN_PREFIX)]


def _transform_bottom_up(term: Term, fn) -> Term:
    children = term.children()
    if children:
        new_children = tuple(_transform_bottom_up(child, fn) for child in children)
        if new_children != children:
            term = term.with_children(new_children)
    return fn(term)
