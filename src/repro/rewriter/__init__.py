"""The MuRewriter: logical rewriting of mu-RA terms."""

from .classic import (MergeAntiProjects, MergeFilters, PushFilterThroughAntiProject,
                      PushFilterThroughAntijoin, PushFilterThroughJoin,
                      PushFilterThroughRename, PushFilterThroughUnion,
                      classic_rules)
from .engine import (DEFAULT_MAX_PLANS, DEFAULT_MAX_ROUNDS, MuRewriter,
                     default_rules, explore_plans)
from .fixpoint_rules import (MergeClosures, PushAntiProjectIntoFixpoint,
                             PushFilterIntoFixpoint, PushJoinIntoClosure,
                             ReverseClosure, fixpoint_rules)
from .normalize import canonicalize, substitute_columns
from .patterns import ClosureShape, ComposeShape, match_closure, match_compose
from .rules import RewriteContext, RewriteRule

__all__ = [
    "ClosureShape",
    "ComposeShape",
    "DEFAULT_MAX_PLANS",
    "DEFAULT_MAX_ROUNDS",
    "MergeAntiProjects",
    "MergeClosures",
    "MergeFilters",
    "MuRewriter",
    "PushAntiProjectIntoFixpoint",
    "PushFilterIntoFixpoint",
    "PushFilterThroughAntiProject",
    "PushFilterThroughAntijoin",
    "PushFilterThroughJoin",
    "PushFilterThroughRename",
    "PushFilterThroughUnion",
    "PushJoinIntoClosure",
    "ReverseClosure",
    "RewriteContext",
    "RewriteRule",
    "canonicalize",
    "classic_rules",
    "default_rules",
    "explore_plans",
    "fixpoint_rules",
    "match_closure",
    "match_compose",
    "substitute_columns",
]
