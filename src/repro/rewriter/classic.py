"""Classic relational-algebra rewrite rules (non fixpoint-specific).

These are the textbook rules the MuRewriter uses to move filters and
anti-projections around so that the fixpoint-specific rules can then fire:
a filter written above a whole path expression must first travel down
through compositions (anti-projection + join + renamings) before it can be
pushed inside a closure.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..algebra.terms import (AntiProject, Antijoin, Filter, Join, Rename,
                             Term, Union)
from ..data.predicates import And
from ..errors import EvaluationError, SchemaError
from .rules import RewriteContext, RewriteRule


class PushFilterThroughJoin(RewriteRule):
    """``sigma_p(A |><| B)`` becomes ``sigma_p(A) |><| B`` (or the mirror)."""

    name = "push-filter-through-join"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if not isinstance(node, Filter) or not isinstance(node.child, Join):
            return
        join = node.child
        columns = node.predicate.columns()
        for side in ("left", "right"):
            operand = getattr(join, side)
            try:
                schema = context.schema_of(operand)
            except (SchemaError, EvaluationError):
                continue
            if columns <= set(schema):
                if side == "left":
                    yield Join(Filter(node.predicate, join.left), join.right)
                else:
                    yield Join(join.left, Filter(node.predicate, join.right))


class PushFilterThroughUnion(RewriteRule):
    """``sigma_p(A U B)`` becomes ``sigma_p(A) U sigma_p(B)``."""

    name = "push-filter-through-union"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if isinstance(node, Filter) and isinstance(node.child, Union):
            union = node.child
            yield Union(Filter(node.predicate, union.left),
                        Filter(node.predicate, union.right))


class PushFilterThroughAntijoin(RewriteRule):
    """``sigma_p(A |> B)`` becomes ``sigma_p(A) |> B``."""

    name = "push-filter-through-antijoin"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if isinstance(node, Filter) and isinstance(node.child, Antijoin):
            antijoin = node.child
            yield Antijoin(Filter(node.predicate, antijoin.left), antijoin.right)


class PushFilterThroughRename(RewriteRule):
    """``sigma_p(rho_a->b(A))`` becomes ``rho_a->b(sigma_p[b->a](A))``."""

    name = "push-filter-through-rename"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if isinstance(node, Filter) and isinstance(node.child, Rename):
            rename = node.child
            rewritten = node.predicate.rename(rename.new, rename.old)
            yield Rename(rename.old, rename.new, Filter(rewritten, rename.child))


class PushFilterThroughAntiProject(RewriteRule):
    """``sigma_p(antiproj_c(A))`` becomes ``antiproj_c(sigma_p(A))``.

    Always valid: the filter cannot reference the dropped columns since they
    are absent from its input schema.
    """

    name = "push-filter-through-antiproject"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if isinstance(node, Filter) and isinstance(node.child, AntiProject):
            antiproject = node.child
            yield AntiProject(antiproject.columns,
                              Filter(node.predicate, antiproject.child))


class MergeFilters(RewriteRule):
    """``sigma_p(sigma_q(A))`` becomes ``sigma_{p and q}(A)``."""

    name = "merge-filters"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if isinstance(node, Filter) and isinstance(node.child, Filter):
            inner = node.child
            yield Filter(And(node.predicate, inner.predicate), inner.child)


class MergeAntiProjects(RewriteRule):
    """``antiproj_c1(antiproj_c2(A))`` becomes ``antiproj_{c1 U c2}(A)``."""

    name = "merge-antiprojects"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if isinstance(node, AntiProject) and isinstance(node.child, AntiProject):
            inner = node.child
            combined = tuple(sorted(set(node.columns) | set(inner.columns)))
            yield AntiProject(combined, inner.child)


def classic_rules() -> list[RewriteRule]:
    """The default set of classic rules, in the order the engine tries them."""
    return [
        PushFilterThroughJoin(),
        PushFilterThroughUnion(),
        PushFilterThroughAntijoin(),
        PushFilterThroughRename(),
        PushFilterThroughAntiProject(),
        MergeFilters(),
        MergeAntiProjects(),
    ]
