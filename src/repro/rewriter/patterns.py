"""Structural pattern matching on graph-navigation terms.

The UCRPQ translator emits terms with a very regular shape: relational
composition is always ``antiproj_m(rho_trg->m(left) |><| rho_src->m(right))``
and transitive closures are fixpoints whose variable part is a composition
of the recursive variable with a step relation.  The fixpoint-specific
rewrite rules (reversal, join pushing, fixpoint merging) need to recognise
those shapes; this module centralises the matchers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.builders import LEFT_TO_RIGHT, RIGHT_TO_LEFT
from ..algebra.conditions import decompose
from ..algebra.terms import (AntiProject, Fixpoint, Join, Rename, RelVar,
                             Term)
from ..algebra.variables import is_constant_in
from ..data.graph import SRC, TRG
from .normalize import canonicalize


@dataclass(frozen=True)
class ComposeShape:
    """A term of the form ``compose(left, right)`` over (src, trg) columns."""

    left: Term
    right: Term
    middle: str


@dataclass(frozen=True)
class ClosureShape:
    """A fixpoint whose variable part appends a step relation on one side.

    * ``direction == "left-to-right"`` means the variable part is
      ``compose(X, step)`` (the ``src`` column is stable),
    * ``direction == "right-to-left"`` means it is ``compose(step, X)``
      (the ``trg`` column is stable).

    ``seed`` is the constant part; the closure is *pure* when the seed and
    the step denote the same relation (that is the ``a+`` case, for which
    evaluation direction can be reversed).
    """

    fixpoint: Fixpoint
    var: str
    seed: Term
    step: Term
    direction: str

    @property
    def is_pure(self) -> bool:
        return canonicalize(self.seed) == canonicalize(self.step)


def match_compose(term: Term, src: str = SRC, trg: str = TRG) -> ComposeShape | None:
    """Match ``antiproj_m(rho_trg->m(A) |><| rho_src->m(B))`` and return A, B."""
    if not isinstance(term, AntiProject) or len(term.columns) != 1:
        return None
    middle = term.columns[0]
    join = term.child
    if not isinstance(join, Join):
        return None
    for first, second in ((join.left, join.right), (join.right, join.left)):
        left = _match_rename_to(first, trg, middle)
        right = _match_rename_to(second, src, middle)
        if left is not None and right is not None:
            return ComposeShape(left=left, right=right, middle=middle)
    return None


def match_closure(fixpoint: Fixpoint, src: str = SRC, trg: str = TRG) -> ClosureShape | None:
    """Match a fixpoint whose single variable branch composes X with a step."""
    if not isinstance(fixpoint, Fixpoint):
        return None
    try:
        decomposition = decompose(fixpoint)
    except Exception:  # malformed fixpoints simply do not match
        return None
    if decomposition.variable_part is None:
        return None
    if len(decomposition.variable_branches) != 1:
        return None
    branch = decomposition.variable_branches[0]
    compose_shape = match_compose(branch, src=src, trg=trg)
    if compose_shape is None:
        return None
    var = fixpoint.var
    left_is_var = isinstance(compose_shape.left, RelVar) and compose_shape.left.name == var
    right_is_var = isinstance(compose_shape.right, RelVar) and compose_shape.right.name == var
    if left_is_var and not right_is_var:
        step = compose_shape.right
        direction = LEFT_TO_RIGHT
    elif right_is_var and not left_is_var:
        step = compose_shape.left
        direction = RIGHT_TO_LEFT
    else:
        return None
    if not is_constant_in(step, var):
        return None
    if not is_constant_in(decomposition.constant_part, var):
        return None
    return ClosureShape(
        fixpoint=fixpoint,
        var=var,
        seed=decomposition.constant_part,
        step=step,
        direction=direction,
    )


def _match_rename_to(term: Term, old: str, new: str) -> Term | None:
    """Match ``rho_old->new(child)`` and return the child."""
    if isinstance(term, Rename) and term.old == old and term.new == new:
        return term.child
    return None
