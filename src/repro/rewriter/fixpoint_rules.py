"""Fixpoint-specific rewrite rules.

These are the rules that distinguish mu-RA from classic relational algebra
(Section IV of the paper) and that Datalog engines cannot reproduce:

* :class:`ReverseClosure` — evaluate ``a+`` left-to-right or right-to-left,
* :class:`PushFilterIntoFixpoint` — filter the constant part instead of the
  whole fixpoint (valid on stable columns),
* :class:`PushJoinIntoClosure` — start the recursion from an already-joined
  seed instead of materialising the whole closure and joining afterwards,
* :class:`MergeClosures` — evaluate ``a+/b+`` as a single fixpoint that
  grows the path on both ends, avoiding the materialisation of either
  closure,
* :class:`PushAntiProjectIntoFixpoint` — drop unused columns before the
  recursion instead of after it.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..algebra.builders import (LEFT_TO_RIGHT, RIGHT_TO_LEFT, compose,
                                fresh_fixpoint_variable)
from ..algebra.conditions import decompose
from ..algebra.terms import (AntiProject, Antijoin, Filter, Fixpoint, Join,
                             Rename, RelVar, Term, Union)
from ..algebra.variables import is_constant_in
from ..algebra.visitors import walk
from ..errors import EvaluationError, SchemaError
from .patterns import match_closure, match_compose
from .rules import RewriteContext, RewriteRule


class ReverseClosure(RewriteRule):
    """Reverse the evaluation direction of a *pure* transitive closure.

    ``mu(X = E U compose(X, E))`` and ``mu(X = E U compose(E, X))`` both
    compute ``E+``; switching between them changes which column (src or trg)
    is stable, and therefore which filters and joins can subsequently be
    pushed inside the fixpoint.
    """

    name = "reverse-closure"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if not isinstance(node, Fixpoint):
            return
        shape = match_closure(node)
        if shape is None or not shape.is_pure:
            return
        var = fresh_fixpoint_variable()
        recursive = RelVar(var)
        if shape.direction == LEFT_TO_RIGHT:
            step = compose(shape.step, recursive)
            direction = RIGHT_TO_LEFT
        else:
            step = compose(recursive, shape.step)
            direction = LEFT_TO_RIGHT
        yield Fixpoint(var, Union(shape.seed, step), direction=direction)


class PushFilterIntoFixpoint(RewriteRule):
    """``sigma_p(mu(X = R U phi))`` becomes ``mu(X = sigma_p(R) U phi)``.

    Sound when every column referenced by the filter is *stable*: each tuple
    of the fixpoint carries, at a stable column, the value of the constant-
    part tuple it derives from, so filtering before or after the recursion
    selects exactly the same tuples (Section III-B of the paper).
    """

    name = "push-filter-into-fixpoint"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if not isinstance(node, Filter) or not isinstance(node.child, Fixpoint):
            return
        fixpoint = node.child
        try:
            stable = context.stable_columns_of(fixpoint)
        except (SchemaError, EvaluationError):
            return
        if not node.predicate.columns() <= stable:
            return
        decomposition = decompose(fixpoint)
        filtered_constant = Filter(node.predicate, decomposition.constant_part)
        yield decomposition.rebuild(constant_part=filtered_constant)


class PushJoinIntoClosure(RewriteRule):
    """Push a composition into a closure-shaped fixpoint.

    For a left-to-right closure ``F = mu(X = S U compose(X, E))`` (which
    denotes ``S . E*``), the composition ``compose(C, F) = C . S . E*`` can
    be evaluated as ``mu(X = compose(C, S) U compose(X, E))``: the recursion
    starts from the joined seed instead of materialising ``F`` and joining
    afterwards.  Symmetrically for right-to-left closures composed on the
    right.  This is the "pushing joins into fixpoints" rule of the paper.
    """

    name = "push-join-into-closure"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        shape = match_compose(node)
        if shape is None:
            return
        # compose(C, F) with F a left-to-right closure.
        if isinstance(shape.right, Fixpoint):
            closure = match_closure(shape.right)
            if closure is not None and closure.direction == LEFT_TO_RIGHT:
                if is_constant_in(shape.left, closure.var):
                    var = fresh_fixpoint_variable()
                    seed = compose(shape.left, closure.seed)
                    step = compose(RelVar(var), closure.step)
                    yield Fixpoint(var, Union(seed, step), direction=LEFT_TO_RIGHT)
        # compose(F, C) with F a right-to-left closure.
        if isinstance(shape.left, Fixpoint):
            closure = match_closure(shape.left)
            if closure is not None and closure.direction == RIGHT_TO_LEFT:
                if is_constant_in(shape.right, closure.var):
                    var = fresh_fixpoint_variable()
                    seed = compose(closure.seed, shape.right)
                    step = compose(closure.step, RelVar(var))
                    yield Fixpoint(var, Union(seed, step), direction=RIGHT_TO_LEFT)


class MergeClosures(RewriteRule):
    """Merge a concatenation of two pure closures into a single fixpoint.

    ``compose(A+, B+)`` is rewritten as::

        mu(X = compose(A, B) U compose(A, X) U compose(X, B))

    which grows paths by prepending an ``A`` edge or appending a ``B`` edge,
    without ever materialising ``A+`` or ``B+`` — the optimisation the paper
    identifies as impossible for Datalog engines.
    """

    name = "merge-closures"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        shape = match_compose(node)
        if shape is None:
            return
        if not isinstance(shape.left, Fixpoint) or not isinstance(shape.right, Fixpoint):
            return
        left = match_closure(shape.left)
        right = match_closure(shape.right)
        if left is None or right is None:
            return
        if not left.is_pure or not right.is_pure:
            return
        var = fresh_fixpoint_variable()
        recursive = RelVar(var)
        seed = compose(left.step, right.step)
        prepend = compose(left.step, recursive)
        append = compose(recursive, right.step)
        body = Union(seed, Union(prepend, append))
        yield Fixpoint(var, body, direction="merged")


class PushAntiProjectIntoFixpoint(RewriteRule):
    """``antiproj_c(mu(X = R U phi))`` becomes ``mu(X = antiproj_c(R) U phi)``.

    Sound when the dropped columns are stable *and* play no role in the
    variable part: they are not mentioned by its renamings, filters or
    anti-projections, and they do not occur in the schema of any constant
    operand of a join/union/antijoin inside the variable part (otherwise
    dropping them would change which columns the natural joins equate, or
    break union compatibility).
    """

    name = "push-antiproject-into-fixpoint"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        if not isinstance(node, AntiProject) or not isinstance(node.child, Fixpoint):
            return
        fixpoint = node.child
        dropped = set(node.columns)
        try:
            stable = context.stable_columns_of(fixpoint)
            schema = context.schema_of(fixpoint)
        except (SchemaError, EvaluationError):
            return
        if not dropped <= stable:
            return
        if dropped >= set(schema):
            # Dropping every column would leave a zero-column fixpoint;
            # handling it buys nothing, so do not rewrite.
            return
        decomposition = decompose(fixpoint)
        if decomposition.variable_part is None:
            return
        if not self._columns_unused(decomposition.variable_part, fixpoint.var,
                                    dropped, context):
            return
        reduced_constant = AntiProject(tuple(sorted(dropped)),
                                       decomposition.constant_part)
        yield decomposition.rebuild(constant_part=reduced_constant)

    def _columns_unused(self, variable_part: Term, var: str, dropped: set[str],
                        context: RewriteContext) -> bool:
        for node in walk(variable_part):
            # Annotations only matter on the recursive path: a rename/filter
            # applied to a constant operand never sees the dropped X columns.
            on_recursive_path = not is_constant_in(node, var)
            if isinstance(node, Rename) and on_recursive_path:
                if node.old in dropped or node.new in dropped:
                    return False
            elif isinstance(node, AntiProject) and on_recursive_path:
                if dropped & set(node.columns):
                    return False
            elif isinstance(node, Filter) and on_recursive_path:
                if dropped & node.predicate.columns():
                    return False
            elif isinstance(node, (Join, Union, Antijoin)):
                for operand in (node.left, node.right):
                    if not is_constant_in(operand, var):
                        continue
                    try:
                        operand_schema = context.schema_of(operand)
                    except (SchemaError, EvaluationError):
                        return False
                    if dropped & set(operand_schema):
                        return False
        return True


def fixpoint_rules() -> list[RewriteRule]:
    """The default set of fixpoint rules, in the order the engine tries them."""
    return [
        ReverseClosure(),
        PushFilterIntoFixpoint(),
        PushJoinIntoClosure(),
        MergeClosures(),
        PushAntiProjectIntoFixpoint(),
    ]
