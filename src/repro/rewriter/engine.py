"""Plan-space exploration: the MuRewriter component.

Starting from one mu-RA term, the engine repeatedly applies every rewrite
rule at every position, collecting the semantically equivalent terms it
discovers.  Plans are identified up to canonical renaming of generated
column/variable names (see :mod:`repro.rewriter.normalize`), which keeps
the space finite and small in practice.

The exploration is breadth-first and bounded both in the number of rounds
and in the total number of plans, so it always terminates quickly even on
the largest workload queries (the paper reports on the order of a hundred
equivalent plans for the most complex Yago query).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from ..algebra.schema import Schema
from ..algebra.terms import Fixpoint, Term
from ..errors import EvaluationError, SchemaError
from .classic import classic_rules
from .fixpoint_rules import fixpoint_rules
from .normalize import canonicalize
from .rules import RewriteContext, RewriteRule

#: Default bound on the number of equivalent plans kept.
DEFAULT_MAX_PLANS = 160
#: Default bound on the number of breadth-first rounds.
DEFAULT_MAX_ROUNDS = 12


def default_rules() -> list[RewriteRule]:
    """All rewrite rules, classic ones first."""
    return classic_rules() + fixpoint_rules()


class MuRewriter:
    """Explore the space of plans equivalent to a mu-RA term."""

    def __init__(self, rules: Iterable[RewriteRule] | None = None,
                 max_plans: int = DEFAULT_MAX_PLANS,
                 max_rounds: int = DEFAULT_MAX_ROUNDS):
        self.rules = list(rules) if rules is not None else default_rules()
        self.max_plans = max_plans
        self.max_rounds = max_rounds

    # -- Public API -----------------------------------------------------------

    def explore(self, term: Term, base_schemas: Mapping[str, Schema]) -> list[Term]:
        """Return the list of equivalent plans found, starting with ``term``.

        The first element is always the canonical form of the input term;
        the rest are listed in discovery order.
        """
        context = RewriteContext(base_schemas=base_schemas)
        initial = canonicalize(term)
        plans: dict[Term, None] = {initial: None}
        frontier = [initial]
        for _ in range(self.max_rounds):
            if not frontier or len(plans) >= self.max_plans:
                break
            next_frontier: list[Term] = []
            for plan in frontier:
                for variant in self._variants(plan, context):
                    canonical = canonicalize(variant)
                    if canonical in plans:
                        continue
                    plans[canonical] = None
                    next_frontier.append(canonical)
                    if len(plans) >= self.max_plans:
                        break
                if len(plans) >= self.max_plans:
                    break
            frontier = next_frontier
        return list(plans)

    def rewrites_at_root(self, term: Term,
                         base_schemas: Mapping[str, Schema]) -> list[Term]:
        """Apply every rule at the root only (used by targeted tests)."""
        context = RewriteContext(base_schemas=base_schemas)
        results = []
        for rule in self.rules:
            results.extend(rule.apply(term, context))
        return results

    # -- Exploration internals ------------------------------------------------

    def _variants(self, term: Term, context: RewriteContext) -> Iterator[Term]:
        """Yield terms obtained by one rewrite at any position of ``term``."""
        # Rewrites at the root.
        for rule in self.rules:
            yield from rule.apply(term, context)
        # Rewrites inside children, with the context extended when the
        # position is under a fixpoint binder.
        children = term.children()
        if not children:
            return
        child_context = context
        if isinstance(term, Fixpoint):
            child_context = self._context_inside_fixpoint(term, context)
        for index, child in enumerate(children):
            for new_child in self._variants(child, child_context):
                new_children = children[:index] + (new_child,) + children[index + 1:]
                yield term.with_children(new_children)

    @staticmethod
    def _context_inside_fixpoint(term: Fixpoint,
                                 context: RewriteContext) -> RewriteContext:
        try:
            schema = context.schema_of(term)
        except (SchemaError, EvaluationError):
            return context
        return context.child({term.var: schema})


def explore_plans(term: Term, base_schemas: Mapping[str, Schema],
                  max_plans: int = DEFAULT_MAX_PLANS,
                  max_rounds: int = DEFAULT_MAX_ROUNDS) -> list[Term]:
    """Convenience wrapper around :meth:`MuRewriter.explore`."""
    rewriter = MuRewriter(max_plans=max_plans, max_rounds=max_rounds)
    return rewriter.explore(term, base_schemas)
