"""Rewrite-rule framework.

A rewrite rule matches a pattern at the *root* of a sub-term and returns
zero or more semantically equivalent replacements.  The exploration engine
(:mod:`repro.rewriter.engine`) is responsible for trying every rule at every
position of a term and for assembling the space of equivalent plans.

Rules receive a :class:`RewriteContext` giving access to the base relation
schemas, because several fixpoint rules (pushing filters, joins or
anti-projections into a fixpoint) are conditioned on the *stable columns*
of the fixpoint, a property that depends on the schemas.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from ..algebra.schema import Schema, infer_schema
from ..algebra.stability import stable_columns
from ..algebra.terms import Fixpoint, Term
from ..errors import RewriteError


@dataclass
class RewriteContext:
    """Static information shared by all rules during an exploration."""

    base_schemas: Mapping[str, Schema]
    #: Schemas of recursive variables bound above the current position.
    env: dict[str, Schema] = field(default_factory=dict)

    def schema_of(self, term: Term) -> Schema:
        """Infer the schema of a term in this context."""
        return infer_schema(term, self.base_schemas, self.env)

    def stable_columns_of(self, fixpoint: Fixpoint) -> frozenset[str]:
        """Stable columns of a fixpoint in this context."""
        return stable_columns(fixpoint, self.base_schemas, self.env)

    def child(self, extra_env: Mapping[str, Schema]) -> "RewriteContext":
        """Context extended with additional recursive-variable bindings."""
        env = dict(self.env)
        env.update(extra_env)
        return RewriteContext(base_schemas=self.base_schemas, env=env)


class RewriteRule:
    """Base class of all rewrite rules."""

    #: Human-readable rule name, used in explanations and tests.
    name: str = "rule"

    def apply(self, node: Term, context: RewriteContext) -> Iterable[Term]:
        """Return the possible rewritings of ``node`` (matched at its root).

        Implementations must return an empty iterable when the rule does not
        apply; they must never raise for a non-matching node.
        """
        raise NotImplementedError

    def apply_or_raise(self, node: Term, context: RewriteContext) -> Term:
        """Apply the rule and return the first rewriting, or raise.

        Convenience used in tests and in targeted rewriting (when the caller
        knows the rule should fire).
        """
        for rewritten in self.apply(node, context):
            return rewritten
        raise RewriteError(f"rule {self.name!r} does not apply to {node}")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
