"""Percentile computation shared by the serving metrics and the reports.

Kept in its own dependency-free module so both the serving layer
(:mod:`repro.service.metrics`) and the benchmark reporting
(:mod:`repro.bench.reporting`) can use one implementation without either
package importing the other.
"""

from __future__ import annotations

#: Percentiles reported by default (fractions).
DEFAULT_PERCENTILES = (0.50, 0.95, 0.99)


def percentile(values, fraction: float) -> float:
    """Return the ``fraction`` percentile of ``values`` (linear interpolation).

    ``fraction`` is in [0, 1]; an empty sequence yields 0.0 so callers can
    report metrics before any traffic was served.
    """
    return _interpolate(sorted(values), fraction)


def percentiles(values, fractions) -> dict[float, float]:
    """Return several percentiles of ``values``, sorting only once.

    Preferred over repeated :func:`percentile` calls when reporting a whole
    percentile row (p50/p95/p99) of the same sample window.
    """
    ordered = sorted(values)
    return {fraction: _interpolate(ordered, fraction)
            for fraction in fractions}


def _interpolate(ordered, fraction: float) -> float:
    if not ordered:
        return 0.0
    if fraction <= 0.0:
        return float(ordered[0])
    if fraction >= 1.0:
        return float(ordered[-1])
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)
