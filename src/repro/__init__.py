"""Dist-mu-RA reproduction: distributed evaluation of recursive relational algebra.

The public API re-exports the pieces most users need:

* :class:`DistMuRA` — the end-to-end engine (parse, optimize, distribute,
  execute),
* the data model (:class:`Relation`, :class:`LabeledGraph`),
* the mu-RA algebra (term constructors and the centralized evaluator),
* the simulated cluster and the physical plan names.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the architecture.
"""

from .data.graph import LabeledGraph
from .data.relation import Relation
from .data.tuples import Tup
from .engine import DistMuRA, QueryResult
from .distributed.cluster import SparkCluster
from .distributed.executor import EXECUTOR_BACKENDS, PROCESSES, SERIAL, THREADS
from .distributed.plans import PGLD, PPLW_POSTGRES, PPLW_SPARK
from .errors import ReproError, ServiceError, ServiceOverloadError
from .service import QueryService, ServedResult, ServiceMetrics

__version__ = "1.2.0"

__all__ = [
    "DistMuRA",
    "EXECUTOR_BACKENDS",
    "LabeledGraph",
    "PGLD",
    "PPLW_POSTGRES",
    "PPLW_SPARK",
    "PROCESSES",
    "QueryResult",
    "QueryService",
    "Relation",
    "ReproError",
    "SERIAL",
    "ServedResult",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadError",
    "SparkCluster",
    "THREADS",
    "Tup",
    "__version__",
]
