"""Dist-mu-RA reproduction: distributed evaluation of recursive relational algebra.

The public API re-exports the pieces most users need:

* :class:`Session` — the staged, lazy query pipeline and its front-ends
  (``ucrpq`` / ``datalog`` / ``relation`` / ``term`` / ``prepare``),
* :class:`Query` / :class:`PreparedQuery` — lazy handles and prepared,
  parameterized templates,
* :class:`QueryService` — concurrent, cached serving on top of a session,
* :class:`DistMuRA` — the deprecated eager facade (kept for compatibility),
* the data model (:class:`Relation`, :class:`LabeledGraph`),
* the mu-RA algebra (term constructors and the centralized evaluator),
* the simulated cluster and the physical plan names,
* observability entry points (:func:`configure_tracing`,
  :func:`configure_logging`, :func:`get_registry`) — the full surface
  lives in :mod:`repro.obs`.

See ``README.md`` for a quickstart and ``DESIGN.md`` for the architecture.
"""

from .data.graph import LabeledGraph
from .data.relation import Relation
from .data.snapshot import DatabaseSnapshot
from .data.tuples import Tup
from .engine import DistMuRA
from .session import (Parameter, PathBuilder, PreparedQuery, Query,
                      QueryResult, Session, Transaction)
from .distributed.cluster import SparkCluster
from .distributed.executor import EXECUTOR_BACKENDS, PROCESSES, SERIAL, THREADS
from .distributed.plans import PGLD, PPLW_POSTGRES, PPLW_SPARK
from .errors import ReproError, ServiceError, ServiceOverloadError
from .obs import (ExplainAnalyzeReport, MetricsRegistry, Tracer,
                  configure_logging, configure_tracing, get_registry)
from .service import UNBOUNDED, QueryService, ServedResult, ServiceMetrics

__version__ = "1.4.0"

# The sanitizer CI job runs the whole suite under the runtime invariant
# guards; activating from the environment here means worker threads and
# subprocesses spawned anywhere in the library are covered too.
import os as _os

if _os.environ.get("REPRO_SANITIZE"):  # pragma: no cover - CI wiring
    from .check.sanitizer import enable_sanitizer as _enable_sanitizer

    _enable_sanitizer()

__all__ = [
    "DatabaseSnapshot",
    "DistMuRA",
    "EXECUTOR_BACKENDS",
    "ExplainAnalyzeReport",
    "LabeledGraph",
    "MetricsRegistry",
    "PGLD",
    "PPLW_POSTGRES",
    "PPLW_SPARK",
    "PROCESSES",
    "Parameter",
    "PathBuilder",
    "PreparedQuery",
    "Query",
    "QueryResult",
    "QueryService",
    "Relation",
    "ReproError",
    "SERIAL",
    "ServedResult",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadError",
    "Session",
    "SparkCluster",
    "THREADS",
    "Tracer",
    "Transaction",
    "Tup",
    "UNBOUNDED",
    "__version__",
    "configure_logging",
    "configure_tracing",
    "get_registry",
]
