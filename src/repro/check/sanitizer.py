"""Runtime sanitizer: lock ordering, snapshot immutability, picklability.

The static analyzer checks *programs*; this module checks the *runtime
invariants* the architecture silently depends on:

* **Lock-order tracking** — every lock in the library is created through
  :func:`ordered_lock` / :func:`ordered_rlock`, which names it and (when
  the sanitizer is active) records the *acquired-while-holding* graph
  across all threads.  Acquiring ``B`` while holding ``A`` after ``A``
  was ever acquired while holding ``B`` is a potential AB/BA deadlock
  and is flagged before the acquisition happens.
* **Snapshot immutability** — relations entering a
  :class:`~repro.data.snapshot.DatabaseSnapshot` are marked frozen;
  while the sanitizer is active a guard is patched into
  ``Relation.__setattr__`` that poisons any post-freeze rebinding of
  the row/column storage (memoized caches stay writable).
* **Task picklability** — the process executor backend silently degrades
  to in-process execution for payloads that cannot cross a process
  boundary; under the sanitizer that degradation is a violation.

Activation is ContextVar-gated like :func:`repro.data.columnar.row_mode`
— ``with sanitize():`` covers the current context only — plus a
process-wide switch (:func:`enable_sanitizer`, or the ``REPRO_SANITIZE``
environment variable read at import) used by the sanitizer CI job, since
service worker threads run outside the test's context.  When no
activation is live the ordered locks delegate straight to the underlying
``threading`` primitive and the ``Relation`` guard is uninstalled, so
the production hot path pays nothing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar

from ..errors import SanitizerError

__all__ = ["OrderedLock", "SanitizerState", "disable_sanitizer",
           "enable_sanitizer", "ordered_lock", "ordered_rlock",
           "report_unpicklable_task", "sanitize", "sanitizer_enabled"]


class SanitizerState:
    """Violations and the lock-order graph of one sanitizer activation.

    ``strict`` raises :class:`SanitizerError` at the violation site;
    otherwise violations are only recorded (and can be asserted on via
    :attr:`violations`).  The picklability check never raises unless
    ``strict_picklability`` is set: in-process fallback is documented
    behaviour that process-wide CI runs must tolerate.
    """

    def __init__(self, *, strict: bool = True,
                 strict_picklability: bool | None = None):
        self.strict = strict
        self.strict_picklability = (strict if strict_picklability is None
                                    else strict_picklability)
        self.violations: list[tuple[str, str]] = []
        # Guards the sanitizer's own state; deliberately a bare primitive
        # (tracking the tracker would recurse).
        self._mutex = threading.Lock()
        #: ``_after[a]`` = lock names ever acquired while ``a`` was held.
        self._after: dict[str, set[str]] = {}

    # -- Violations ------------------------------------------------------------

    def record(self, kind: str, message: str, *,
               raising: bool | None = None) -> None:
        with self._mutex:
            self.violations.append((kind, message))
        if self.strict if raising is None else raising:
            raise SanitizerError(message)

    def violation_kinds(self) -> tuple[str, ...]:
        with self._mutex:
            return tuple(kind for kind, _ in self.violations)

    # -- Lock ordering ---------------------------------------------------------

    def observe_acquire(self, name: str, held: list[str]) -> None:
        """Record edges ``held -> name``; flag a cycle before it deadlocks."""
        inversion: str | None = None
        with self._mutex:
            for holder in held:
                if holder == name:
                    continue
                self._after.setdefault(holder, set()).add(name)
            for holder in held:
                if holder != name and self._reaches(name, holder):
                    inversion = holder
                    break
        if inversion is not None:
            self.record(
                "lock-order",
                f"lock-order inversion: acquiring {name!r} while holding "
                f"{inversion!r}, but {inversion!r} has been acquired while "
                f"{name!r} was held (potential AB/BA deadlock)")

    def _reaches(self, start: str, target: str) -> bool:
        """True when the acquired-after graph has a path start -> target."""
        seen = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for successor in self._after.get(current, ()):
                if successor == target:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return False


_local_state: ContextVar[SanitizerState | None] = ContextVar(
    "repro_sanitizer", default=None)
_global_state: SanitizerState | None = None
_held = threading.local()


def _state() -> SanitizerState | None:
    state = _local_state.get()
    if state is not None:
        return state
    return _global_state


def sanitizer_enabled() -> bool:
    """True when a sanitizer activation covers the current context."""
    return _state() is not None


# -- Ordered locks -------------------------------------------------------------

class OrderedLock:
    """A named lock participating in deadlock-cycle detection.

    Wraps a ``threading.Lock`` or ``RLock``.  With the sanitizer off the
    wrapper is a thin delegation; with it on, every acquisition records
    the set of locks the thread already holds into the shared
    acquired-after graph and flags inversions.  Reentrant acquisitions
    of the same instance are never treated as new edges.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str, inner):
        self.name = name
        self._inner = inner

    def _observe(self) -> None:
        state = _state()
        if state is None:
            return
        stack = getattr(_held, "stack", None)
        if stack is None:
            stack = _held.stack = []
        if any(entry is self for entry in stack):
            return  # reentrant acquisition of the same lock
        state.observe_acquire(self.name,
                              [entry.name for entry in stack])

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._observe()
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and _state() is not None:
            stack = getattr(_held, "stack", None)
            if stack is None:
                stack = _held.stack = []
            stack.append(self)
        return acquired

    def release(self) -> None:
        self._inner.release()
        stack = getattr(_held, "stack", None)
        if stack:
            for index in range(len(stack) - 1, -1, -1):
                if stack[index] is self:
                    del stack[index]
                    break

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        return locked() if locked is not None else False

    def __repr__(self) -> str:
        return f"OrderedLock({self.name!r})"


def ordered_lock(name: str) -> OrderedLock:
    """A named non-reentrant lock registered with the sanitizer."""
    return OrderedLock(name, threading.Lock())


def ordered_rlock(name: str) -> OrderedLock:
    """A named reentrant lock registered with the sanitizer."""
    return OrderedLock(name, threading.RLock())


# -- Relation immutability guard ----------------------------------------------

_guard_depth = 0
_guard_mutex = threading.Lock()


def _guarded_relation_setattr(self, name, value):
    if name in ("_columns", "_rows") and getattr(self, "_frozen", False):
        state = _state()
        if state is not None:
            state.record(
                "immutability",
                f"mutation of Relation.{name} after the relation was "
                f"frozen into a snapshot (snapshots must stay immutable)")
    object.__setattr__(self, name, value)


def _install_guards() -> None:
    global _guard_depth
    from ..data.relation import Relation
    with _guard_mutex:
        _guard_depth += 1
        if _guard_depth == 1:
            Relation.__setattr__ = _guarded_relation_setattr


def _uninstall_guards() -> None:
    global _guard_depth
    from ..data.relation import Relation
    with _guard_mutex:
        _guard_depth = max(0, _guard_depth - 1)
        if _guard_depth == 0 and "__setattr__" in vars(Relation):
            del Relation.__setattr__


# -- Picklability --------------------------------------------------------------

def report_unpicklable_task(fn, tasks: int) -> None:
    """Called by the process executor before its in-process fallback."""
    state = _state()
    if state is None:
        return
    name = getattr(fn, "__qualname__", repr(fn))
    state.record(
        "picklability",
        f"process-backend task {name} is not picklable; {tasks} task(s) "
        f"would silently degrade to in-process execution",
        raising=state.strict_picklability)


# -- Activation ----------------------------------------------------------------

@contextmanager
def sanitize(*, strict: bool = True,
             strict_picklability: bool | None = None):
    """Enable the sanitizer for the current context (like ``row_mode``)."""
    state = SanitizerState(strict=strict,
                           strict_picklability=strict_picklability)
    token = _local_state.set(state)
    _install_guards()
    try:
        yield state
    finally:
        _local_state.reset(token)
        _uninstall_guards()


def enable_sanitizer(*, strict: bool = True,
                     strict_picklability: bool = False) -> SanitizerState:
    """Enable the sanitizer process-wide (all threads, all contexts).

    Used by the sanitizer CI job via ``REPRO_SANITIZE=1``.  Picklability
    violations default to record-only here because in-process fallback
    is documented behaviour some tests exercise on purpose.
    """
    global _global_state
    if _global_state is not None:
        return _global_state
    _global_state = SanitizerState(strict=strict,
                                   strict_picklability=strict_picklability)
    _install_guards()
    return _global_state


def disable_sanitizer() -> None:
    """Turn the process-wide sanitizer off again."""
    global _global_state
    if _global_state is not None:
        _global_state = None
        _uninstall_guards()
