"""``python -m repro.check`` — analyze query files from the command line.

Each positional argument is a file of queries: UCRPQ by default (one
query per line, ``#`` comments), or a whole-file Datalog program when
the file ends in ``.dl``/``.datalog`` (override with ``--frontend``).
``-q/--query`` analyzes a literal instead of a file.  Without a catalog
the existence/emptiness checks are skipped; ``--labels a,b,c`` supplies
the known edge labels of the target graph::

    python -m repro.check queries.ucrpq --labels knows,livesIn
    python -m repro.check program.dl
    python -m repro.check -q '?x,?y <- ?x knows+ ?y'

Exit status: 0 when no error-level diagnostics were produced, 1
otherwise, 2 for usage errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .analyzer import analyze
from .diagnostics import DiagnosticReport


def _frontend_for(path: pathlib.Path, override: str | None) -> str:
    if override is not None and override != "auto":
        return override
    if path.suffix.lower() in (".dl", ".datalog"):
        return "datalog"
    return "ucrpq"


def _catalog(labels: str | None) -> dict[str, object] | None:
    if labels is None:
        return None
    # Bare label names carry no rows, so existence is checked but the
    # emptiness pass stays silent (``None`` has no ``__len__``).
    return {name.strip(): None for name in labels.split(",") if name.strip()}


def _iter_subjects(path: pathlib.Path,
                   frontend: str) -> list[tuple[str, str]]:
    """The (description, source) pairs to analyze from one file."""
    text = path.read_text()
    if frontend == "datalog":
        return [(str(path), text)]
    subjects = []
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            subjects.append((f"{path}:{number}", stripped))
    return subjects


def _emit(name: str, report: DiagnosticReport, as_json: bool) -> None:
    if as_json:
        payload = report.to_dict()
        payload["subject"] = name
        print(json.dumps(payload, sort_keys=True))
        return
    rendered = report.render()
    print(f"-- {name}")
    for line in rendered.splitlines():
        print(f"   {line}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Statically analyze UCRPQ queries and Datalog "
                    "programs.")
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="query files (.dl/.datalog parse as Datalog)")
    parser.add_argument("-q", "--query", action="append", default=[],
                        metavar="TEXT", help="analyze a literal query")
    parser.add_argument("--frontend", choices=("auto", "ucrpq", "datalog"),
                        default="auto",
                        help="force a front-end instead of guessing from "
                             "the file extension")
    parser.add_argument("--labels", default=None, metavar="A,B,C",
                        help="known edge labels; enables the unknown-label "
                             "checks")
    parser.add_argument("--json", action="store_true",
                        help="one JSON report per subject instead of text")
    args = parser.parse_args(argv)
    if not args.files and not args.query:
        parser.error("nothing to analyze: pass files or --query")
    database = _catalog(args.labels)

    failed = False
    for literal in args.query:
        frontend = "ucrpq" if args.frontend == "auto" else args.frontend
        report = analyze(literal, database=database, frontend=frontend)
        _emit(literal, report, args.json)
        failed = failed or report.has_errors
    for path in args.files:
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        frontend = _frontend_for(path, args.frontend)
        for name, source in _iter_subjects(path, frontend):
            report = analyze(source, database=database, frontend=frontend)
            _emit(name, report, args.json)
            failed = failed or report.has_errors
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
