"""The analyzer pass pipeline over every query front-end.

One entry point per front-end — :func:`analyze_query` (UCRPQ text or
AST), :func:`analyze_program` (Datalog text or :class:`Program`) and
:func:`analyze_term` (fluent-builder mu-RA terms) — plus the
:func:`analyze` dispatcher used by :meth:`Session.analyze` and the
``python -m repro.check`` CLI.

Each pass is a pure function from the parsed subject (plus an optional
catalog — any mapping from relation name to a sized relation, normally
a :class:`~repro.data.snapshot.DatabaseSnapshot`) to a list of
:class:`Diagnostic`.  Passing no catalog skips the existence and
emptiness checks but still runs every structural pass, which is how the
CLI analyzes standalone files.
"""

from __future__ import annotations

from typing import Mapping

from ..baselines.datalog.ast import Program, Rule, Var
from ..baselines.datalog.parser import (ProgramSpans, RuleSpans,
                                        parse_program_spanned)
from ..errors import (AlgebraError, DatalogError, DatalogParseError,
                      QueryParseError, ReproError)
from ..query.ast import Atom, Constant, UCRPQ, Variable
from ..query.parser import SpanTable, parse_query_spanned
from .diagnostics import (Diagnostic, DiagnosticReport, ERROR, INFO,
                          RecursionShape, WARNING)

Catalog = Mapping[str, object] | None

#: Strategy sets by recursion shape (see DESIGN.md).  Linear fixpoints
#: are what the paper's distributed plans — parallel loop-while (Pplw)
#: and global loop on driver (Pgld) — are defined over; non-linear
#: Datalog still evaluates centrally via semi-naive iteration, while a
#: non-linear mu-RA fixpoint violates Fcond and cannot run at all.
LINEAR_STRATEGIES = ("Pplw", "Pgld", "centralized")
NONRECURSIVE_STRATEGIES = ("centralized",)


def _is_empty(value: object) -> bool:
    """True for catalog entries that are definitely empty relations."""
    try:
        return hasattr(value, "__len__") and len(value) == 0  # type: ignore[arg-type]
    except TypeError:
        return False


# -- UCRPQ ---------------------------------------------------------------------

def analyze_query(query: str | UCRPQ, *,
                  database: Catalog = None) -> DiagnosticReport:
    """Analyze a UCRPQ query string or AST."""
    source: str | None = None
    spans: SpanTable | None = None
    if isinstance(query, str):
        source = query
        try:
            ast, spans = parse_query_spanned(query)
        except QueryParseError as error:
            return _report_parse_error("Q001", error, source, "query")
    else:
        ast = query
    diagnostics: list[Diagnostic] = []
    recursive = False
    for rule in ast.rules:
        diagnostics.extend(_check_rule_labels(rule, database, spans, source))
        diagnostics.extend(_check_rule_shape(rule, spans, source))
        recursive = recursive or any(atom.path.contains_closure()
                                     for atom in rule.atoms)
    # UCRPQs are regular path queries by construction: their translation
    # yields linear, Fcond-satisfying fixpoints, so every strategy applies.
    shape = RecursionShape("linear" if recursive else "nonrecursive", True,
                           LINEAR_STRATEGIES if recursive
                           else NONRECURSIVE_STRATEGIES)
    return DiagnosticReport(tuple(diagnostics), shape, "query")


def _span_of(node: object, spans: SpanTable | None) -> tuple[int, int] | None:
    return spans.get(node) if spans is not None else None


def _label_nodes(path) -> list:
    """Every :class:`Label` node of a path expression, in source order."""
    from ..query.ast import Alternation, Concat, Label, Plus

    found: list = []
    stack = [path]
    while stack:
        node = stack.pop(0)
        if isinstance(node, Label):
            found.append(node)
        elif isinstance(node, Plus):
            stack.insert(0, node.inner)
        elif isinstance(node, Concat):
            stack = list(node.parts) + stack
        elif isinstance(node, Alternation):
            stack = list(node.options) + stack
    return found


def _diag(code: str, severity: str, message: str,
          span: tuple[int, int] | None, source: str | None,
          hint: str | None = None) -> Diagnostic:
    start, end = span if span is not None else (None, None)
    return Diagnostic(code, severity, message, start, end, source, hint)


def _check_rule_labels(rule, database: Catalog, spans: SpanTable | None,
                       source: str | None) -> list[Diagnostic]:
    if database is None:
        return []
    found: list[Diagnostic] = []
    seen: set[str] = set()
    for atom in rule.atoms:
        for label in _label_nodes(atom.path):
            if label.name in seen:
                continue
            seen.add(label.name)
            span = _span_of(label, spans) or _span_of(atom, spans)
            if label.name not in database:
                known = ", ".join(sorted(database)[:8]) or "<none>"
                found.append(_diag(
                    "Q101", ERROR,
                    f"unknown edge label {label.name!r}", span, source,
                    hint=f"known labels include: {known}"))
            elif _is_empty(database[label.name]):
                found.append(_diag(
                    "Q102", WARNING,
                    f"edge label {label.name!r} has no edges; every atom "
                    f"using it produces an empty result", span, source))
    return found


def _check_rule_shape(rule, spans: SpanTable | None,
                      source: str | None) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    seen_atoms: set[Atom] = set()
    for atom in rule.atoms:
        if atom in seen_atoms:
            found.append(_diag(
                "Q104", WARNING, f"duplicate body atom {atom}",
                _span_of(atom, spans), source))
        seen_atoms.add(atom)
        if (isinstance(atom.subject, Constant)
                and isinstance(atom.obj, Constant)):
            found.append(_diag(
                "Q105", INFO,
                f"atom {atom} binds no variables (boolean test)",
                _span_of(atom, spans), source))
    for atom in _disconnected_atoms(rule.atoms):
        found.append(_diag(
            "Q103", WARNING,
            f"atom {atom} shares no variables with the preceding atoms "
            f"(cartesian product)", _span_of(atom, spans), source,
            hint="the result is the cross product of the disconnected "
                 "parts; join them through a shared variable if that is "
                 "not intended"))
    return found


def _disconnected_atoms(atoms) -> list:
    """The first atom of every variable-connected component but the first.

    Two atoms are connected when they (transitively) share a variable;
    more than one component means the rule computes a cartesian product.
    Variable-free atoms are boolean tests and never form a product.
    """
    components: list[tuple[set[Variable], int, object]] = []
    for index, atom in enumerate(atoms):
        atom_vars = {end for end in (atom.subject, atom.obj)
                     if isinstance(end, Variable)}
        if not atom_vars:
            continue
        touching = [entry for entry in components if entry[0] & atom_vars]
        merged_vars = set(atom_vars)
        first_index, first_atom = index, atom
        for entry in touching:
            merged_vars |= entry[0]
            if entry[1] < first_index:
                first_index, first_atom = entry[1], entry[2]
            components.remove(entry)
        components.append((merged_vars, first_index, first_atom))
    components.sort(key=lambda entry: entry[1])
    return [first for _, _, first in components[1:]]


def _report_parse_error(code: str, error: ReproError, source: str,
                        subject: str) -> DiagnosticReport:
    position = getattr(error, "position", None)
    length = getattr(error, "length", 1) or 1
    message = str(error).splitlines()[0]
    start = position if position is not None else None
    end = (position + length) if position is not None else None
    code = getattr(error, "code", code) or code
    return DiagnosticReport(
        (Diagnostic(code, ERROR, message, start, end, source),),
        None, subject)


# -- Datalog -------------------------------------------------------------------

def analyze_program(program: str | Program, *,
                    database: Catalog = None) -> DiagnosticReport:
    """Analyze Datalog program text or a :class:`Program`."""
    source: str | None = None
    spans: ProgramSpans | None = None
    if isinstance(program, str):
        source = program
        try:
            program, spans = parse_program_spanned(program)
        except DatalogParseError as error:
            return _report_parse_error("DL001", error, source, "program")
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_check_arities(program, database, spans, source))
    diagnostics.extend(_check_predicates(program, database, spans, source))
    diagnostics.extend(_check_stratification(program, spans, source))
    diagnostics.extend(_check_reachability(program, spans, source))
    diagnostics.extend(_check_rule_products(program, spans, source))
    shape = classify_program(program)
    return DiagnosticReport(tuple(diagnostics), shape, "program")


def _rule_spans(spans: ProgramSpans | None, index: int) -> RuleSpans | None:
    if spans is None or index >= len(spans.rules):
        return None
    return spans.rules[index]


def _atom_span(spans: ProgramSpans | None, rule_index: int,
               atom_index: int | None) -> tuple[int, int] | None:
    rule_spans = _rule_spans(spans, rule_index)
    if rule_spans is None:
        return None
    if atom_index is None:
        return rule_spans.head.span
    if atom_index < len(rule_spans.body):
        return rule_spans.body[atom_index].span
    return rule_spans.span


def _check_arities(program: Program, database: Catalog,
                   spans: ProgramSpans | None,
                   source: str | None) -> list[Diagnostic]:
    """DL002: every use of a predicate must agree on its arity.

    The catalog contributes the authoritative arity for EDB predicates
    (graph edge relations are binary), so ``edge(X, Y, Z)`` is flagged
    even when it is the only use of ``edge``.
    """
    found: list[Diagnostic] = []
    arities: dict[str, int] = {}
    if database is not None:
        for name, value in database.items():
            arity = getattr(value, "arity", None)
            if isinstance(arity, int):
                arities[name] = arity
    for rule_index, rule in enumerate(program.rules):
        literals = [(None, rule.head)] + list(enumerate(rule.body))
        for atom_index, atom in literals:
            expected = arities.setdefault(atom.predicate, atom.arity)
            if atom.arity != expected:
                found.append(_diag(
                    "DL002", ERROR,
                    f"predicate {atom.predicate!r} used with arity "
                    f"{atom.arity} but previously with arity {expected}",
                    _atom_span(spans, rule_index, atom_index), source))
    return found


def _check_predicates(program: Program, database: Catalog,
                      spans: ProgramSpans | None,
                      source: str | None) -> list[Diagnostic]:
    """DL008 unknown predicate, DL009 empty relation, DL010 missing goal."""
    found: list[Diagnostic] = []
    idb = program.idb_predicates()
    for rule_index, rule in enumerate(program.rules):
        for atom_index, atom in enumerate(rule.body):
            if atom.predicate in idb:
                continue
            span = _atom_span(spans, rule_index, atom_index)
            if database is not None and atom.predicate not in database:
                found.append(_diag(
                    "DL008", ERROR,
                    f"unknown predicate {atom.predicate!r}: it has no "
                    f"rules and is not a relation of the database",
                    span, source))
            elif database is not None and _is_empty(database[atom.predicate]):
                found.append(_diag(
                    "DL009", WARNING,
                    f"predicate {atom.predicate!r} reads an empty "
                    f"relation; this rule can never fire", span, source))
    if program.goal not in idb and (
            database is None or program.goal not in database):
        found.append(_diag(
            "DL010", ERROR,
            f"goal predicate {program.goal!r} is never defined",
            spans.goal if spans is not None else None, source))
    return found


def _check_stratification(program: Program, spans: ProgramSpans | None,
                          source: str | None) -> list[Diagnostic]:
    """DL006: no recursion may pass through negation.

    A program is stratifiable iff the predicate dependency graph has no
    cycle containing a negative edge — equivalently, for every negated
    literal ``not q`` in a rule for ``p``, predicate ``p`` must not be
    reachable from ``q``.
    """
    found: list[Diagnostic] = []
    for rule_index, rule in enumerate(program.rules):
        for atom_index, atom in enumerate(rule.body):
            if not atom.negated:
                continue
            head = rule.head.predicate
            if head == atom.predicate or head in _reachable(program,
                                                            atom.predicate):
                found.append(_diag(
                    "DL006", ERROR,
                    f"negation of {atom.predicate!r} is inside the "
                    f"recursion of {head!r}: the program is not "
                    f"stratifiable",
                    _atom_span(spans, rule_index, atom_index), source,
                    hint="break the cycle so the negated predicate is "
                         "fully computed in an earlier stratum"))
    return found


def _reachable(program: Program, predicate: str) -> frozenset[str]:
    reachable: set[str] = set()
    frontier = [predicate]
    while frontier:
        current = frontier.pop()
        for rule in program.rules_for(current):
            for used in rule.predicates_used():
                if used not in reachable:
                    reachable.add(used)
                    frontier.append(used)
    return frozenset(reachable)


def _check_reachability(program: Program, spans: ProgramSpans | None,
                        source: str | None) -> list[Diagnostic]:
    """DL007: rules whose head the goal can never reach are dead code."""
    live = {program.goal} | _reachable(program, program.goal)
    found: list[Diagnostic] = []
    for rule_index, rule in enumerate(program.rules):
        if rule.head.predicate not in live:
            found.append(_diag(
                "DL007", WARNING,
                f"rule for {rule.head.predicate!r} is unreachable from "
                f"the goal {program.goal!r}",
                _atom_span(spans, rule_index, None), source))
    return found


def _check_rule_products(program: Program, spans: ProgramSpans | None,
                         source: str | None) -> list[Diagnostic]:
    """DL011: positive body atoms that join with nothing before them."""
    found: list[Diagnostic] = []
    for rule_index, rule in enumerate(program.rules):
        positive = [(index, atom) for index, atom in enumerate(rule.body)
                    if not atom.negated]
        if len(positive) < 2:
            continue
        reached: set[Var] = set(positive[0][1].variables())
        for atom_index, atom in positive[1:]:
            atom_vars = set(atom.variables())
            if atom_vars and reached and not (atom_vars & reached):
                found.append(_diag(
                    "DL011", WARNING,
                    f"atom {atom} shares no variables with the preceding "
                    f"body atoms (cartesian product)",
                    _atom_span(spans, rule_index, atom_index), source))
            reached |= atom_vars
    return found


def classify_program(program: Program) -> RecursionShape:
    """Recursion shape of a Datalog program.

    * **nonrecursive** — no predicate depends on itself.
    * **linear** — every rule uses at most one literal that is mutually
      recursive with its head (the shape the paper's Pplw/Pgld
      distributed fixpoint plans require).
    * **non-linear** — some rule recurses through two or more literals;
      only centralized semi-naive evaluation applies.

    ``regular`` reports whether the recursive rules are chain-shaped
    over binary predicates, i.e. expressible as a regular path query.
    """
    recursive_preds = {pred for pred in program.idb_predicates()
                       if program.is_recursive(pred)}
    if not recursive_preds:
        return RecursionShape("nonrecursive", True, NONRECURSIVE_STRATEGIES)
    linear = True
    regular = True
    for rule in program.rules:
        head = rule.head.predicate
        recursive_literals = [
            atom for atom in rule.body
            if atom.predicate == head
            or (atom.predicate in recursive_preds
                and head in _reachable(program, atom.predicate))]
        if len(recursive_literals) > 1:
            linear = False
        if rule.head.predicate in recursive_preds and not _chain_rule(rule):
            regular = False
    if linear:
        return RecursionShape("linear", regular, LINEAR_STRATEGIES)
    return RecursionShape("non-linear", False, NONRECURSIVE_STRATEGIES)


def _chain_rule(rule: Rule) -> bool:
    """True when the rule is a chain over binary atoms (RPQ shape)."""
    if rule.head.arity != 2 or not rule.body:
        return False
    if any(atom.arity != 2 for atom in rule.body):
        return False
    head_vars = rule.head.variables()
    if len(head_vars) != 2:
        return len(head_vars) <= 2
    left, right = head_vars
    current = left
    for atom in rule.body:
        atom_vars = atom.variables()
        if current not in atom_vars:
            return False
        others = [var for var in atom_vars if var != current]
        current = others[0] if others else current
    return current == right


# -- Terms ---------------------------------------------------------------------

def analyze_term(term, *, database: Catalog = None) -> DiagnosticReport:
    """Analyze a mu-RA term built with the fluent API (or by hand)."""
    from ..algebra.conditions import is_linear, is_positive
    from ..algebra.terms import Fixpoint, Term
    from ..algebra.variables import free_variables

    if not isinstance(term, Term):
        raise TypeError(f"analyze_term expects a mu-RA Term, "
                        f"got {type(term).__name__}")
    diagnostics: list[Diagnostic] = []
    try:
        free = free_variables(term)
    except AlgebraError as error:  # pragma: no cover - defensive
        return DiagnosticReport(
            (Diagnostic("T003", ERROR, str(error)),), None, "term")
    if database is not None:
        for name in sorted(free):
            if name not in database:
                diagnostics.append(Diagnostic(
                    "T001", ERROR,
                    f"term references unknown relation {name!r}"))
            elif _is_empty(database[name]):
                diagnostics.append(Diagnostic(
                    "T002", WARNING,
                    f"term reads relation {name!r}, which is empty"))
    fixpoints = _collect_fixpoints(term, Fixpoint)
    if not fixpoints:
        shape = RecursionShape("nonrecursive", True, NONRECURSIVE_STRATEGIES)
    else:
        linear = all(is_linear(fp) for fp in fixpoints)
        positive = all(is_positive(fp) for fp in fixpoints)
        if not positive:
            diagnostics.append(Diagnostic(
                "T003", ERROR,
                "a fixpoint body uses its own variable under an antijoin "
                "(non-positive recursion violates Fcond)"))
        if linear:
            shape = RecursionShape("linear", True, LINEAR_STRATEGIES)
        else:
            shape = RecursionShape("non-linear", False, ())
            diagnostics.append(Diagnostic(
                "T003", ERROR,
                "a fixpoint is non-linear: its body joins two occurrences "
                "of the recursive variable, which violates Fcond",
                hint="rewrite the recursion so each rule recurses through "
                     "a single occurrence (e.g. left-linear transitive "
                     "closure)"))
    return DiagnosticReport(tuple(diagnostics), shape, "term")


def _collect_fixpoints(term, fixpoint_type) -> list:
    found = []
    stack = [term]
    while stack:
        node = stack.pop()
        if isinstance(node, fixpoint_type):
            found.append(node)
        stack.extend(node.children())
    return found


# -- Dispatcher ----------------------------------------------------------------

def analyze(subject, *, database: Catalog = None,
            frontend: str = "ucrpq") -> DiagnosticReport:
    """Analyze any supported subject.

    Strings are parsed according to ``frontend`` (``"ucrpq"`` or
    ``"datalog"``); ASTs, programs and terms dispatch on their type.
    """
    from ..algebra.terms import Term

    if isinstance(subject, str):
        if frontend == "datalog":
            return analyze_program(subject, database=database)
        if frontend == "ucrpq":
            return analyze_query(subject, database=database)
        raise ValueError(f"unknown frontend {frontend!r}; "
                         f"expected 'ucrpq' or 'datalog'")
    if isinstance(subject, UCRPQ):
        return analyze_query(subject, database=database)
    if isinstance(subject, Program):
        return analyze_program(subject, database=database)
    if isinstance(subject, Term):
        return analyze_term(subject, database=database)
    raise TypeError(
        f"cannot analyze {type(subject).__name__}: expected query text, "
        f"a UCRPQ, a Datalog Program or a mu-RA Term")


__all__ = ["analyze", "analyze_query", "analyze_program", "analyze_term",
           "classify_program", "LINEAR_STRATEGIES",
           "NONRECURSIVE_STRATEGIES"]
