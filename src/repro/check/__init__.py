"""Static analysis and runtime sanitization for the query pipeline.

Two halves:

* :mod:`repro.check.analyzer` — static diagnostics over every query
  front-end (UCRPQ text/AST, Datalog programs, mu-RA terms), surfaced
  through :meth:`Query.check`, :meth:`Session.analyze`, the service
  strict mode, ``POST /v1/analyze`` and the ``python -m repro.check``
  CLI.
* :mod:`repro.check.sanitizer` — runtime invariant checking (lock
  ordering, snapshot immutability, task picklability), enabled with
  ``with sanitize():`` or process-wide via ``REPRO_SANITIZE=1``.

The analyzer half is imported lazily (PEP 562): the sanitizer is pulled
in by low-level modules (``data``, ``session``) at import time, and an
eager analyzer import from here would close a cycle back through the
query front-ends.
"""

from __future__ import annotations

from .diagnostics import (CODES, Diagnostic, DiagnosticReport, ERROR, INFO,
                          RecursionShape, WARNING, merge)
from .sanitizer import (OrderedLock, disable_sanitizer, enable_sanitizer,
                        ordered_lock, ordered_rlock, sanitize,
                        sanitizer_enabled)

_ANALYZER_EXPORTS = ("analyze", "analyze_query", "analyze_program",
                     "analyze_term", "classify_program")

__all__ = ["CODES", "Diagnostic", "DiagnosticReport", "ERROR", "INFO",
           "OrderedLock", "RecursionShape", "WARNING",
           "disable_sanitizer", "enable_sanitizer", "merge",
           "ordered_lock", "ordered_rlock", "sanitize",
           "sanitizer_enabled", *_ANALYZER_EXPORTS]


def __getattr__(name: str):
    if name in _ANALYZER_EXPORTS:
        from . import analyzer
        return getattr(analyzer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
