"""Diagnostics: stable codes, severities, source spans and rendering.

Every finding the static analyzer produces is a :class:`Diagnostic`
with a **stable code** drawn from the registry below, so tests, tooling
and API clients can match on ``code`` instead of message text.  Spans
are 0-based character offsets into the analyzed source (reusing the
parser positions introduced in PR 4) and render through the same
:func:`repro.errors.format_snippet` path as parse errors.

Code taxonomy (see DESIGN.md for the narrative version):

========  ========================================================
``Qxxx``  UCRPQ queries (parse, catalog, shape of the body)
``DLxxx`` Datalog programs (parse, safety, stratification, reach)
``Txxx``  mu-RA terms built with the fluent API
``Sxxx``  informational classification (recursion shape, strategies)
========  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError, format_snippet, line_and_column

#: Severity levels, ordered from most to least severe.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITIES = (ERROR, WARNING, INFO)

#: Registry of every diagnostic the analyzer can emit.  Codes are part
#: of the public API: never renumber, only append.
CODES: dict[str, str] = {
    "Q001": "UCRPQ parse error",
    "Q101": "unknown edge label",
    "Q102": "edge label has no edges (result is trivially empty)",
    "Q103": "cartesian product between body atoms",
    "Q104": "duplicate body atom",
    "Q105": "atom binds no variables",
    "DL001": "Datalog parse error",
    "DL002": "inconsistent predicate arity",
    "DL003": "unsafe rule: head variable unbound in the positive body",
    "DL004": "unsafe negation: variable occurs only under negation",
    "DL005": "negated rule head",
    "DL006": "negation is not stratifiable",
    "DL007": "dead rule: unreachable from the goal",
    "DL008": "unknown predicate: no rules and not in the catalog",
    "DL009": "predicate reads an empty relation",
    "DL010": "goal predicate is never defined",
    "DL011": "cartesian product in rule body",
    "T001": "term references an unknown relation",
    "T002": "term reads an empty relation",
    "T003": "term is structurally invalid",
    "S001": "recursion-shape classification",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``start``/``end`` delimit the offending span as character offsets
    into ``source``; all three are ``None`` when the analyzed subject
    had no source text (an AST or term built programmatically).
    """

    code: str
    severity: str
    message: str
    start: int | None = None
    end: int | None = None
    source: str | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def span(self) -> tuple[int, int] | None:
        if self.start is None:
            return None
        return (self.start, self.end if self.end is not None else self.start + 1)

    def render(self) -> str:
        """Human-readable form with a caret snippet when a span exists::

            error[Q101]: unknown edge label 'knws'
              ?x <- ?x knws+ ?y
                       ^^^^
        """
        header = f"{self.severity}[{self.code}]: {self.message}"
        parts = [header]
        span = self.span
        if span is not None and self.source is not None:
            line, column = line_and_column(self.source, span[0])
            parts[0] = f"{header} (line {line}, column {column})"
            parts.append(format_snippet(self.source, span[0],
                                        span[1] - span[0]))
        if self.hint:
            parts.append(f"  hint: {self.hint}")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """The wire form served by ``POST /v1/analyze``."""
        payload: dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        span = self.span
        if span is not None:
            payload["span"] = list(span)
            if self.source is not None:
                line, column = line_and_column(self.source, span[0])
                payload["line"] = line
                payload["column"] = column
        if self.hint:
            payload["hint"] = self.hint
        return payload


@dataclass(frozen=True)
class RecursionShape:
    """How a query or program recurses, and which paper strategies apply.

    ``shape`` is ``"nonrecursive"``, ``"linear"`` or ``"non-linear"``;
    ``regular`` marks programs expressible as regular path queries (the
    class the paper's distributed plans target).  ``strategies`` lists
    the applicable execution strategies among ``Pplw``, ``Pgld`` and
    ``centralized`` — empty when no engine in the repo can run it.
    """

    shape: str
    regular: bool
    strategies: tuple[str, ...]

    def describe(self) -> str:
        kind = f"{self.shape}, {'regular' if self.regular else 'non-regular'}"
        if not self.strategies:
            return f"recursion is {kind}; no implemented strategy applies"
        return (f"recursion is {kind}; applicable strategies: "
                f"{', '.join(self.strategies)}")

    def to_dict(self) -> dict:
        return {"shape": self.shape, "regular": self.regular,
                "strategies": list(self.strategies)}


@dataclass(frozen=True)
class DiagnosticReport:
    """The outcome of one analysis: diagnostics plus the recursion shape."""

    diagnostics: tuple[Diagnostic, ...] = ()
    recursion: RecursionShape | None = None
    subject: str = "query"

    def __post_init__(self) -> None:
        ranked = sorted(self.diagnostics,
                        key=lambda d: _SEVERITIES.index(d.severity))
        object.__setattr__(self, "diagnostics", tuple(ranked))

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        return not self.has_errors

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def codes(self) -> tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def render(self) -> str:
        if not self.diagnostics and self.recursion is None:
            return f"{self.subject}: no findings"
        blocks = [d.render() for d in self.diagnostics]
        if self.recursion is not None:
            blocks.append(f"info[S001]: {self.recursion.describe()}")
        return "\n".join(blocks)

    def to_dict(self) -> dict:
        payload: dict[str, object] = {
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "error_count": len(self.errors),
            "warning_count": len(self.warnings),
        }
        if self.recursion is not None:
            payload["recursion"] = self.recursion.to_dict()
        return payload

    def raise_if_errors(self) -> "DiagnosticReport":
        """Raise :class:`AnalysisError` when any error-level finding exists."""
        errors = self.errors
        if errors:
            summary = "; ".join(f"[{d.code}] {d.message}" for d in errors)
            raise AnalysisError(
                f"static analysis rejected the {self.subject}: {summary}",
                diagnostics=self.diagnostics)
        return self


def merge(*reports: DiagnosticReport) -> DiagnosticReport:
    """Combine reports; the first non-``None`` recursion shape wins."""
    diagnostics: list[Diagnostic] = []
    recursion = None
    subject = reports[0].subject if reports else "query"
    for report in reports:
        diagnostics.extend(report.diagnostics)
        if recursion is None:
            recursion = report.recursion
    return DiagnosticReport(tuple(diagnostics), recursion, subject)


__all__ = ["CODES", "Diagnostic", "DiagnosticReport", "RecursionShape",
           "ERROR", "WARNING", "INFO", "merge"]
