"""Exception hierarchy for the Dist-mu-RA reproduction.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single ``except``
clause while still being able to distinguish precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relational operation was applied to incompatible schemas.

    Examples: union of relations with different columns, renaming a column
    that does not exist, joining relations whose common columns were
    expected but missing.
    """


class AlgebraError(ReproError):
    """A mu-RA term is malformed or violates a structural requirement."""


class FixpointConditionError(AlgebraError):
    """A fixpoint term does not satisfy the Fcond conditions.

    The conditions (positive, linear, non mutually recursive) are required
    by Proposition 1 of the paper for the fixpoint to be well defined and
    for the semi-naive evaluation and fixpoint-splitting techniques to be
    applicable.
    """


class EvaluationError(ReproError):
    """Evaluation of a term failed (unknown relation, missing column...)."""


class QueryParseError(ReproError):
    """A UCRPQ query string could not be parsed."""


class TranslationError(ReproError):
    """A query could not be translated into the target representation."""


class RewriteError(ReproError):
    """A rewrite rule was applied to a term it does not match."""


class CostEstimationError(ReproError):
    """The cost model could not produce an estimate for a term."""


class DistributionError(ReproError):
    """The distributed runtime was used incorrectly."""


class PlanSelectionError(ReproError):
    """No physical plan could be generated or selected for a term."""


class DatalogError(ReproError):
    """A Datalog program is malformed or cannot be evaluated."""


class PregelError(ReproError):
    """A Pregel/GraphX-style computation was configured incorrectly."""


class DatasetError(ReproError):
    """A dataset generator received invalid parameters."""


class TransactionError(ReproError):
    """A mutation batch was used incorrectly.

    Examples: mutating through a transaction that was already committed or
    rolled back, or mutating a pinned read-only session view.
    """


class BenchmarkError(ReproError):
    """The benchmark harness was configured incorrectly."""


class ServiceError(ReproError):
    """The query-serving layer was used incorrectly or is shut down."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a query: the service queue is full."""


class NetworkError(ReproError):
    """Failure in the HTTP serving tier (server- or client-side).

    Carries an HTTP ``status`` so the server maps the error straight to a
    response and clients can branch on the code, and an optional
    ``retry_after`` (seconds) for 429/503 responses.
    """

    status: int = 500

    def __init__(self, message: str, *, status: int | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status
        self.retry_after = retry_after


class ProtocolError(NetworkError):
    """An HTTP request could not be parsed or violates the wire protocol."""

    status = 400


class AuthenticationError(NetworkError):
    """The request carried no (or an unknown) tenant auth token."""

    status = 401


class AuthorizationError(NetworkError):
    """An authenticated tenant addressed a graph it is not mapped to."""

    status = 403


class QuotaExceededError(NetworkError):
    """A tenant breached its rate limit or max-in-flight quota (429)."""

    status = 429
