"""Exception hierarchy for the Dist-mu-RA reproduction.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single ``except``
clause while still being able to distinguish precise failure modes.
"""

from __future__ import annotations


def format_snippet(source: str, position: int, length: int = 1) -> str:
    """Render the source line around ``position`` with a caret underline.

    This is the one formatting path shared by the UCRPQ parser, the
    Datalog parser and the diagnostics renderer in :mod:`repro.check`,
    so caret snippets look the same everywhere::

          ?x <- ?x +knows ?y
                   ^

    ``position`` is a 0-based character offset into ``source`` (clamped
    to the source length); ``length`` widens the underline to cover a
    whole span.  Multi-line sources show only the offending line.
    """
    position = max(0, min(position, len(source)))
    line_start = source.rfind("\n", 0, position) + 1
    line_end = source.find("\n", position)
    if line_end == -1:
        line_end = len(source)
    line = source[line_start:line_end]
    column = position - line_start
    width = 1
    if column < len(line):
        width = max(1, min(length, len(line) - column))
    return f"  {line}\n  {' ' * column}{'^' * width}"


def line_and_column(source: str, position: int) -> tuple[int, int]:
    """The 1-based line and column of a character offset in ``source``."""
    position = max(0, min(position, len(source)))
    line = source.count("\n", 0, position) + 1
    column = position - (source.rfind("\n", 0, position) + 1) + 1
    return line, column


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relational operation was applied to incompatible schemas.

    Examples: union of relations with different columns, renaming a column
    that does not exist, joining relations whose common columns were
    expected but missing.
    """


class AlgebraError(ReproError):
    """A mu-RA term is malformed or violates a structural requirement."""


class FixpointConditionError(AlgebraError):
    """A fixpoint term does not satisfy the Fcond conditions.

    The conditions (positive, linear, non mutually recursive) are required
    by Proposition 1 of the paper for the fixpoint to be well defined and
    for the semi-naive evaluation and fixpoint-splitting techniques to be
    applicable.
    """


class EvaluationError(ReproError):
    """Evaluation of a term failed (unknown relation, missing column...)."""


class QueryParseError(ReproError):
    """A UCRPQ query string could not be parsed."""


class TranslationError(ReproError):
    """A query could not be translated into the target representation."""


class RewriteError(ReproError):
    """A rewrite rule was applied to a term it does not match."""


class CostEstimationError(ReproError):
    """The cost model could not produce an estimate for a term."""


class DistributionError(ReproError):
    """The distributed runtime was used incorrectly."""


class PlanSelectionError(ReproError):
    """No physical plan could be generated or selected for a term."""


class DatalogError(ReproError):
    """A Datalog program is malformed or cannot be evaluated."""


class DatalogParseError(DatalogError):
    """A Datalog program text could not be parsed.

    Mirrors :class:`QueryParseError`: carries the 0-based character
    ``position`` and the ``source`` text, and its message embeds a caret
    snippet rendered by :func:`format_snippet`.
    """

    position: int = 0
    source: str = ""


class AnalysisError(ReproError):
    """Static analysis rejected a query or program (strict mode).

    ``diagnostics`` holds the :class:`repro.check.Diagnostic` objects
    that caused the rejection so servers can return them structurally
    instead of flattening everything into one string.
    """

    def __init__(self, message: str, *, diagnostics: object = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or ())


class SanitizerError(ReproError):
    """The runtime sanitizer detected an invariant violation.

    Raised by :mod:`repro.check.sanitizer` when it observes a potential
    lock-order deadlock cycle, a mutation of a snapshot-frozen
    :class:`~repro.data.relation.Relation`, or an unpicklable task
    submitted to the process executor backend.
    """


class PregelError(ReproError):
    """A Pregel/GraphX-style computation was configured incorrectly."""


class DatasetError(ReproError):
    """A dataset generator received invalid parameters."""


class TransactionError(ReproError):
    """A mutation batch was used incorrectly.

    Examples: mutating through a transaction that was already committed or
    rolled back, or mutating a pinned read-only session view.
    """


class BenchmarkError(ReproError):
    """The benchmark harness was configured incorrectly."""


class ServiceError(ReproError):
    """The query-serving layer was used incorrectly or is shut down."""


class ServiceOverloadError(ServiceError):
    """Admission control rejected a query: the service queue is full."""


class NetworkError(ReproError):
    """Failure in the HTTP serving tier (server- or client-side).

    Carries an HTTP ``status`` so the server maps the error straight to a
    response and clients can branch on the code, and an optional
    ``retry_after`` (seconds) for 429/503 responses.
    """

    status: int = 500

    def __init__(self, message: str, *, status: int | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status
        self.retry_after = retry_after


class ProtocolError(NetworkError):
    """An HTTP request could not be parsed or violates the wire protocol."""

    status = 400


class AuthenticationError(NetworkError):
    """The request carried no (or an unknown) tenant auth token."""

    status = 401


class AuthorizationError(NetworkError):
    """An authenticated tenant addressed a graph it is not mapped to."""

    status = 403


class QuotaExceededError(NetworkError):
    """A tenant breached its rate limit or max-in-flight quota (429)."""

    status = 429
