"""UCRPQ query frontend: AST, parser, translation to mu-RA, classification."""

from .ast import (Alternation, Atom, Concat, ConjunctiveQuery, Constant,
                  Endpoint, Label, PathExpr, Plus, UCRPQ, Variable)
from .classes import CLASS_NAMES, classes_to_string, classify_query
from .parser import parse_path, parse_query
from .translate import (output_columns, translate_atom, translate_path,
                        translate_query, translate_rule)

__all__ = [
    "Alternation",
    "Atom",
    "CLASS_NAMES",
    "Concat",
    "ConjunctiveQuery",
    "Constant",
    "Endpoint",
    "Label",
    "PathExpr",
    "Plus",
    "UCRPQ",
    "Variable",
    "classes_to_string",
    "classify_query",
    "output_columns",
    "parse_path",
    "parse_query",
    "translate_atom",
    "translate_path",
    "translate_query",
    "translate_rule",
]
