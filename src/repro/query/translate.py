"""Query2Mu: translation of UCRPQ queries into mu-RA terms.

The translation follows the scheme sketched in the paper (Section IV):

* a regular path expression becomes a path term over columns
  ``(src, trg)`` — labels are relation variables, inverse labels use the
  ``-label`` relations exposed by :meth:`LabeledGraph.relations`,
  concatenation becomes relational composition, alternation becomes union
  and ``+`` becomes a transitive-closure fixpoint,
* each atom's endpoints then either constrain the term (constants become
  filters) or name its columns (variables become column names),
* the atoms of a conjunctive rule are combined with natural joins on their
  shared variables, and the non-head variables are dropped,
* the rules of a union query are combined with unions.

Every closure can be generated in two directions (left-to-right or
right-to-left); the translator emits the requested one, and the rewriter's
*reverse fixpoint* rule explores the other.  The paper relies on this pair
of plans to guarantee a stable column is always available for partitioning.
"""

from __future__ import annotations

from ..algebra.builders import (LEFT_TO_RIGHT, closure, compose, fresh_column,
                                swap_src_trg, union_all)
from ..algebra.terms import Filter, RelVar, Term
from ..data.graph import INVERSE_PREFIX, SRC, TRG
from ..data.predicates import ColumnEq, Eq
from ..errors import TranslationError
from .ast import (Alternation, Atom, Concat, ConjunctiveQuery, Constant,
                  Label, PathExpr, Plus, UCRPQ, Variable)


def translate_path(path: PathExpr, direction: str = LEFT_TO_RIGHT,
                   use_inverse_relations: bool = True) -> Term:
    """Translate a regular path expression into a path term over (src, trg).

    ``use_inverse_relations`` selects how inverse steps are translated: when
    True (the default) they reference the materialised ``-label`` relations
    that :meth:`LabeledGraph.relations` provides; when False they are
    expressed by swapping the columns of the forward relation, which keeps
    the term self-contained for databases storing only forward edges.
    """
    if isinstance(path, Label):
        if not path.inverse:
            return RelVar(path.name)
        if use_inverse_relations:
            return RelVar(INVERSE_PREFIX + path.name)
        return swap_src_trg(RelVar(path.name))
    if isinstance(path, Concat):
        parts = [translate_path(part, direction, use_inverse_relations)
                 for part in path.parts]
        result = parts[0]
        for part in parts[1:]:
            result = compose(result, part)
        return result
    if isinstance(path, Alternation):
        options = [translate_path(option, direction, use_inverse_relations)
                   for option in path.options]
        return union_all(options)
    if isinstance(path, Plus):
        inner = translate_path(path.inner, direction, use_inverse_relations)
        return closure(inner, direction=direction)
    raise TranslationError(f"cannot translate path expression {path!r}")


def translate_atom(atom: Atom, direction: str = LEFT_TO_RIGHT,
                   use_inverse_relations: bool = True) -> Term:
    """Translate one atom into a term whose columns are its variable names."""
    term = translate_path(atom.path, direction, use_inverse_relations)
    term, source_column = _apply_endpoint(term, atom.subject, SRC)
    term, target_column = _apply_endpoint(term, atom.obj, TRG)
    if (isinstance(atom.subject, Variable) and isinstance(atom.obj, Variable)
            and atom.subject.name == atom.obj.name):
        # Same variable on both ends: keep the tuples where both coincide
        # and expose a single column.
        term = Filter(ColumnEq(source_column, target_column), term)
        term = term.antiproject(target_column)
        return _rename_columns(term, {source_column: atom.subject.name})
    renames: dict[str, str] = {}
    if source_column is not None and isinstance(atom.subject, Variable):
        renames[source_column] = atom.subject.name
    if target_column is not None and isinstance(atom.obj, Variable):
        renames[target_column] = atom.obj.name
    return _rename_columns(term, renames)


def translate_rule(rule: ConjunctiveQuery, direction: str = LEFT_TO_RIGHT,
                   use_inverse_relations: bool = True) -> Term:
    """Translate a conjunctive rule: join its atoms, keep the head columns."""
    atom_terms = [translate_atom(atom, direction, use_inverse_relations)
                  for atom in rule.atoms]
    term = atom_terms[0]
    for atom_term in atom_terms[1:]:
        term = term.join(atom_term)
    head_columns = {variable.name for variable in rule.head}
    body_columns = {variable.name for variable in rule.variables()}
    to_drop = sorted(body_columns - head_columns)
    if to_drop:
        term = term.antiproject(to_drop)
    return term


def translate_query(query: UCRPQ, direction: str = LEFT_TO_RIGHT,
                    use_inverse_relations: bool = True) -> Term:
    """Translate a full UCRPQ into a mu-RA term.

    The resulting term's columns are the names of the head variables.
    """
    rules = [translate_rule(rule, direction, use_inverse_relations)
             for rule in query.rules]
    return union_all(rules)


def output_columns(query: UCRPQ) -> tuple[str, ...]:
    """The (sorted) column names of the relation a query evaluates to."""
    return tuple(sorted(variable.name for variable in query.head))


# -- Internal helpers ----------------------------------------------------------


def _apply_endpoint(term: Term, endpoint, column: str) -> tuple[Term, str | None]:
    """Constrain or keep the endpoint column.

    Returns the (possibly filtered) term and the name of the column that now
    carries the endpoint value, or ``None`` when the endpoint was a constant
    (the column has been filtered and dropped).
    """
    if isinstance(endpoint, Constant):
        term = Filter(Eq(column, endpoint.value), term)
        term = term.antiproject(column)
        return term, None
    if isinstance(endpoint, Variable):
        return term, column
    raise TranslationError(f"unknown endpoint {endpoint!r}")


def _rename_columns(term: Term, renames: dict[str, str]) -> Term:
    """Apply several renames simultaneously.

    Every rename goes through a fresh temporary column so that swaps such as
    ``{src: trg, trg: src}`` (a query written ``?y ... ?x`` with ``y`` bound
    to the source) work without intermediate name clashes.
    """
    effective = {old: new for old, new in renames.items() if old != new}
    if not effective:
        return term
    temporaries: dict[str, str] = {}
    for old in effective:
        temporary = fresh_column("_v")
        term = term.rename(old, temporary)
        temporaries[old] = temporary
    for old, new in effective.items():
        term = term.rename(temporaries[old], new)
    return term
