"""Classification of queries into the paper's classes C1-C7.

Section V-D classifies queries by the optimisation techniques they require:

* **C1** — a single transitive closure, e.g. ``?x,?y <- ?x a+ ?y``,
* **C2** — a filter to the *right* of a closure, e.g. ``?x <- ?x a+ C``,
* **C3** — a filter to the *left* of a closure, e.g. ``?x <- C a+ ?x``,
* **C4** — a non-recursive step concatenated to the *right* of a closure,
  e.g. ``?x,?y <- ?x a+/b ?y``,
* **C5** — a non-recursive step concatenated to the *left* of a closure,
  e.g. ``?x,?y <- ?x b/a+ ?y``,
* **C6** — a concatenation of closures, e.g. ``?x,?y <- ?x a+/b+ ?y``,
* **C7** — non-regular recursion (anbn, same-generation): such queries are
  expressed directly in mu-RA, not as UCRPQs, so they are tagged explicitly
  by the workload definitions rather than detected here.

A query may belong to several classes; the classification is used for
reporting benchmark results by class, exactly as the paper does.
"""

from __future__ import annotations

from .ast import (Alternation, Atom, Concat, Constant, Label, PathExpr, Plus,
                  UCRPQ)

CLASS_NAMES = ("C1", "C2", "C3", "C4", "C5", "C6", "C7")


def classify_query(query: UCRPQ) -> frozenset[str]:
    """Return the set of classes (C1-C6) a parsed UCRPQ belongs to."""
    classes: set[str] = set()
    for rule in query.rules:
        for atom in rule.atoms:
            classes |= _classify_atom(atom)
    return frozenset(classes)


def _classify_atom(atom: Atom) -> set[str]:
    classes: set[str] = set()
    path = atom.path
    if not path.contains_closure():
        return classes
    segments = _top_level_segments(path)
    closure_flags = [segment.contains_closure() for segment in segments]
    closure_count = sum(
        1 for segment in segments if isinstance(_strip(segment), Plus))
    plain_count = sum(1 for flag in closure_flags if not flag)

    if len(segments) == 1 and closure_flags[0]:
        # A bare closure; whether it is "single TC" (C1) or filtered
        # (C2/C3) depends on the endpoints.
        if isinstance(atom.subject, Constant):
            classes.add("C3")
        if isinstance(atom.obj, Constant):
            classes.add("C2")
        if not classes:
            classes.add("C1")
        return classes

    # Concatenation of several segments.
    if closure_count >= 2 or _has_adjacent_closures(segments):
        classes.add("C6")
    if plain_count:
        first_closure = closure_flags.index(True)
        last_closure = len(closure_flags) - 1 - closure_flags[::-1].index(True)
        if any(not flag for flag in closure_flags[:first_closure]):
            classes.add("C5")
        if any(not flag for flag in closure_flags[last_closure + 1:]):
            classes.add("C4")
    if isinstance(atom.subject, Constant):
        classes.add("C3")
    if isinstance(atom.obj, Constant):
        classes.add("C2")
    if not classes:
        classes.add("C1")
    return classes


def classes_to_string(classes: frozenset[str]) -> str:
    """Render a class set in the fixed C1..C7 order (for report tables)."""
    return ",".join(name for name in CLASS_NAMES if name in classes)


# -- Internal helpers ----------------------------------------------------------


def _top_level_segments(path: PathExpr) -> list[PathExpr]:
    """Split a path on its top-level concatenation."""
    if isinstance(path, Concat):
        return list(path.parts)
    if isinstance(path, Alternation):
        # For classification purposes, an alternation counts as the union of
        # its options; use the option with the most structure.
        best: list[PathExpr] = []
        for option in path.options:
            segments = _top_level_segments(option)
            if len(segments) > len(best):
                best = segments
        return best
    return [path]


def _strip(segment: PathExpr) -> PathExpr:
    """Unwrap trivial one-element wrappers to find a closure node."""
    return segment


def _has_adjacent_closures(segments: list[PathExpr]) -> bool:
    flags = [segment.contains_closure() for segment in segments]
    return any(a and b for a, b in zip(flags, flags[1:]))


def _segment_is_plain_label(segment: PathExpr) -> bool:
    return isinstance(segment, Label)
