"""Abstract syntax of UCRPQ queries.

A UCRPQ (Union of Conjunctive Regular Path Queries) is, per the paper's
frontend, a rule of the form::

    ?x,?y <- ?x  isMarriedTo/livesIn/IsL+  Argentina, ?y isConnectedTo+ ?x

i.e. a head (a list of output variables) and a body made of *atoms*.  Each
atom relates a subject and an object (either variables ``?x`` or node
constants) through a *regular path expression* over edge labels: label
steps, inverse steps (``-label``), concatenation (``/``), alternation
(``|``) and transitive closure (``+``).  A union of several rules with the
same head is also supported.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryParseError


class PathExpr:
    """Base class of regular path expressions."""

    def labels(self) -> frozenset[str]:
        """All edge labels mentioned (without the inverse marker)."""
        raise NotImplementedError

    def contains_closure(self) -> bool:
        """True when the expression contains a ``+`` (or ``*``) closure."""
        raise NotImplementedError


@dataclass(frozen=True)
class Label(PathExpr):
    """A single navigation step along edges with the given label.

    ``inverse=True`` navigates edges backwards (the ``-label`` syntax).
    """

    name: str
    inverse: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryParseError("edge labels must be non-empty")

    def labels(self) -> frozenset[str]:
        return frozenset({self.name})

    def contains_closure(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"-{self.name}" if self.inverse else self.name


@dataclass(frozen=True)
class Concat(PathExpr):
    """Concatenation ``p1/p2/.../pn`` of path expressions."""

    parts: tuple[PathExpr, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise QueryParseError("a concatenation needs at least two parts")

    def labels(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for part in self.parts:
            result |= part.labels()
        return result

    def contains_closure(self) -> bool:
        return any(part.contains_closure() for part in self.parts)

    def __str__(self) -> str:
        return "/".join(_wrap(part) for part in self.parts)


@dataclass(frozen=True)
class Alternation(PathExpr):
    """Alternation ``p1|p2|...|pn`` of path expressions."""

    options: tuple[PathExpr, ...]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise QueryParseError("an alternation needs at least two options")

    def labels(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for option in self.options:
            result |= option.labels()
        return result

    def contains_closure(self) -> bool:
        return any(option.contains_closure() for option in self.options)

    def __str__(self) -> str:
        return "|".join(_wrap(option) for option in self.options)


@dataclass(frozen=True)
class Plus(PathExpr):
    """Transitive closure ``p+`` (one or more repetitions)."""

    inner: PathExpr

    def labels(self) -> frozenset[str]:
        return self.inner.labels()

    def contains_closure(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{_wrap(self.inner)}+"


def _wrap(expr: PathExpr) -> str:
    text = str(expr)
    if isinstance(expr, (Concat, Alternation)):
        return f"({text})"
    return text


@dataclass(frozen=True)
class Variable:
    """A query variable, written ``?x`` in the surface syntax."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryParseError("variable names must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Constant:
    """A node constant, written as a bare identifier in the surface syntax."""

    value: str

    def __str__(self) -> str:
        return str(self.value)


Endpoint = Variable | Constant


@dataclass(frozen=True)
class Atom:
    """One regular-path atom ``subject path object``."""

    subject: Endpoint
    path: PathExpr
    obj: Endpoint

    def variables(self) -> tuple[Variable, ...]:
        found = []
        for endpoint in (self.subject, self.obj):
            if isinstance(endpoint, Variable) and endpoint not in found:
                found.append(endpoint)
        return tuple(found)

    def __str__(self) -> str:
        return f"{self.subject} {self.path} {self.obj}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """One rule: head variables and a conjunction of atoms."""

    head: tuple[Variable, ...]
    atoms: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise QueryParseError("a conjunctive query needs at least one atom")
        body_variables = {v for atom in self.atoms for v in atom.variables()}
        unknown = [v for v in self.head if v not in body_variables]
        if unknown:
            raise QueryParseError(
                f"head variables {[str(v) for v in unknown]} do not appear in the body"
            )

    def variables(self) -> tuple[Variable, ...]:
        found: list[Variable] = []
        for atom in self.atoms:
            for variable in atom.variables():
                if variable not in found:
                    found.append(variable)
        return tuple(found)

    def __str__(self) -> str:
        head = ",".join(str(v) for v in self.head)
        body = ", ".join(str(a) for a in self.atoms)
        return f"{head} <- {body}"


@dataclass(frozen=True)
class UCRPQ:
    """A union of conjunctive regular path queries sharing the same head."""

    rules: tuple[ConjunctiveQuery, ...]

    def __post_init__(self) -> None:
        if not self.rules:
            raise QueryParseError("a UCRPQ needs at least one rule")
        heads = {tuple(v.name for v in rule.head) for rule in self.rules}
        if len(heads) != 1:
            raise QueryParseError(
                f"all rules of a UCRPQ must share the same head, got {sorted(heads)}"
            )

    @property
    def head(self) -> tuple[Variable, ...]:
        return self.rules[0].head

    def labels(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for rule in self.rules:
            for atom in rule.atoms:
                result |= atom.path.labels()
        return result

    def contains_closure(self) -> bool:
        return any(atom.path.contains_closure()
                   for rule in self.rules for atom in rule.atoms)

    def __str__(self) -> str:
        return " UNION ".join(str(rule) for rule in self.rules)
