"""Parser for the UCRPQ surface syntax.

The syntax accepted is the one used in the paper's query figures::

    ?x,?y <- ?x (actedIn/-actedIn)+/hasChild+ ?y
    ?x    <- ?x isMarriedTo/livesIn/IsL+/dw+ Argentina
    ?x    <- C  (occ/-occ)+ ?x, ?x int+ ?y

Grammar (informal)::

    query   := head ('<-' | '←') body (';' body)*        # ';' separates union rules
    head    := endpointvar (',' endpointvar)*
    body    := atom (',' atom)*
    atom    := endpoint path endpoint
    endpoint:= '?'name | name                              # variable or constant
    path    := alt
    alt     := seq ('|' seq)*
    seq     := item ('/' item)*
    item    := atom_expr '+'?
    atom_expr := '-'? name | '(' alt ')'

Identifiers may contain letters, digits, ``_``, ``:`` and ``.`` so that
labels such as ``rdfs:subClassOf`` and constants such as
``John_Lawrence_Toole`` parse directly.
"""

from __future__ import annotations

import re

from ..errors import QueryParseError, format_snippet
from .ast import (Alternation, Atom, Concat, ConjunctiveQuery, Constant,
                  Endpoint, Label, PathExpr, Plus, UCRPQ, Variable)

_IDENTIFIER = re.compile(r"[A-Za-z0-9_:.][A-Za-z0-9_:.\-]*")

_TOKEN_SPEC = [
    ("ARROW", re.compile(r"<-|←")),
    ("VARIABLE", re.compile(r"\?[A-Za-z0-9_]+")),
    ("LPAREN", re.compile(r"\(")),
    ("RPAREN", re.compile(r"\)")),
    ("PLUS", re.compile(r"\+")),
    ("SLASH", re.compile(r"/")),
    ("PIPE", re.compile(r"\|")),
    ("COMMA", re.compile(r",")),
    ("SEMICOLON", re.compile(r";")),
    ("DASH", re.compile(r"-")),
    ("IDENT", _IDENTIFIER),
]


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def parse_error(message: str, source: str, position: int) -> QueryParseError:
    """Build a :class:`QueryParseError` with a source snippet and a caret.

    The rendered message looks like::

        expected a variable or constant but found '+' at position 9
          ?x <- ?x +knows ?y
                   ^

    so malformed queries coming from logs or user input can be diagnosed
    without counting characters.  The offending ``position`` (0-based
    character offset) is also attached to the exception.
    """
    position = max(0, min(position, len(source)))
    snippet = format_snippet(source, position)
    error = QueryParseError(f"{message} at position {position}\n{snippet}")
    error.position = position
    error.source = source
    return error


class SpanTable:
    """Source spans of AST nodes, keyed by node identity.

    The UCRPQ AST is made of frozen value-equal dataclasses, so two
    occurrences of the same label in one query compare equal; spans are
    therefore keyed by ``id(node)``.  The table keeps a strong reference
    to every registered node so the identity keys stay valid for its
    lifetime.  Built by :func:`parse_query_spanned` and consumed by the
    static analyzer in :mod:`repro.check`.
    """

    __slots__ = ("_spans", "_nodes")

    def __init__(self) -> None:
        self._spans: dict[int, tuple[int, int]] = {}
        self._nodes: list[object] = []

    def add(self, node: object, start: int, end: int) -> None:
        self._spans[id(node)] = (start, end)
        self._nodes.append(node)

    def get(self, node: object) -> tuple[int, int] | None:
        """The ``(start, end)`` character span of ``node``, if recorded."""
        return self._spans.get(id(node))

    def __len__(self) -> int:
        return len(self._nodes)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        for kind, pattern in _TOKEN_SPEC:
            match = pattern.match(text, position)
            if match:
                tokens.append(_Token(kind, match.group(), position))
                position = match.end()
                break
        else:
            raise parse_error(f"unexpected character {char!r}", text, position)
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], source: str,
                 spans: SpanTable | None = None):
        self._tokens = tokens
        self._source = source
        self._index = 0
        self._spans = spans
        self._last_end = 0

    # -- Token helpers --------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise parse_error("unexpected end of query", self._source,
                              len(self._source))
        self._index += 1
        self._last_end = token.position + len(token.text)
        return token

    def _start(self) -> int:
        token = self._peek()
        return token.position if token is not None else len(self._source)

    def _note(self, node: PathExpr | Endpoint | Atom, start: int) -> None:
        if self._spans is not None:
            self._spans.add(node, start, self._last_end)

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise parse_error(f"expected {kind} but found {token.text!r}",
                              self._source, token.position)
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    # -- Grammar --------------------------------------------------------------

    def parse_query(self) -> UCRPQ:
        head = self._parse_head()
        self._expect("ARROW")
        rules = [ConjunctiveQuery(head, self._parse_body())]
        while self._accept("SEMICOLON"):
            rules.append(ConjunctiveQuery(head, self._parse_body()))
        if self._peek() is not None:
            token = self._peek()
            raise parse_error(f"trailing input {token.text!r}", self._source,
                              token.position)
        return UCRPQ(tuple(rules))

    def _parse_head(self) -> tuple[Variable, ...]:
        variables = [self._parse_head_variable()]
        while self._accept("COMMA"):
            variables.append(self._parse_head_variable())
        return tuple(variables)

    def _parse_head_variable(self) -> Variable:
        token = self._expect("VARIABLE")
        variable = Variable(token.text[1:])
        self._note(variable, token.position)
        return variable

    def _parse_body(self) -> tuple[Atom, ...]:
        atoms = [self._parse_atom()]
        while self._accept("COMMA"):
            atoms.append(self._parse_atom())
        return tuple(atoms)

    def _parse_atom(self) -> Atom:
        start = self._start()
        subject = self._parse_endpoint()
        path = self._parse_alternation()
        obj = self._parse_endpoint()
        atom = Atom(subject, path, obj)
        self._note(atom, start)
        return atom

    def _parse_endpoint(self) -> Endpoint:
        token = self._next()
        if token.kind == "VARIABLE":
            endpoint: Endpoint = Variable(token.text[1:])
        elif token.kind == "IDENT":
            endpoint = Constant(token.text)
        else:
            raise parse_error(
                f"expected a variable or constant but found {token.text!r}",
                self._source, token.position)
        self._note(endpoint, token.position)
        return endpoint

    def _parse_alternation(self) -> PathExpr:
        start = self._start()
        options = [self._parse_sequence()]
        while self._accept("PIPE"):
            options.append(self._parse_sequence())
        if len(options) == 1:
            return options[0]
        alternation = Alternation(tuple(options))
        self._note(alternation, start)
        return alternation

    def _parse_sequence(self) -> PathExpr:
        start = self._start()
        parts = [self._parse_item()]
        while self._accept("SLASH"):
            parts.append(self._parse_item())
        if len(parts) == 1:
            return parts[0]
        concat = Concat(tuple(parts))
        self._note(concat, start)
        return concat

    def _parse_item(self) -> PathExpr:
        start = self._start()
        expr = self._parse_step()
        while self._accept("PLUS"):
            expr = Plus(expr)
            self._note(expr, start)
        return expr

    def _parse_step(self) -> PathExpr:
        start = self._start()
        if self._accept("LPAREN"):
            expr = self._parse_alternation()
            self._expect("RPAREN")
            return expr
        inverse = self._accept("DASH") is not None
        token = self._expect("IDENT")
        label = Label(token.text, inverse=inverse)
        self._note(label, start)
        return label


def parse_query(text: str) -> UCRPQ:
    """Parse a UCRPQ query string into its AST.

    >>> query = parse_query("?x,?y <- ?x hasChild+ ?y")
    >>> [v.name for v in query.head]
    ['x', 'y']
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryParseError("empty query string")
    return _Parser(tokens, text).parse_query()


def parse_query_spanned(text: str) -> tuple[UCRPQ, SpanTable]:
    """Parse a UCRPQ query and record the source span of every AST node.

    Used by the static analyzer (:mod:`repro.check`) to attach precise
    caret snippets to diagnostics.  The regular :func:`parse_query` path
    skips span bookkeeping entirely.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryParseError("empty query string")
    spans = SpanTable()
    return _Parser(tokens, text, spans=spans).parse_query(), spans


def parse_path(text: str) -> PathExpr:
    """Parse a bare regular path expression such as ``(actedIn/-actedIn)+``."""
    tokens = _tokenize(text)
    if not tokens:
        raise QueryParseError("empty path expression")
    parser = _Parser(tokens, text)
    expr = parser._parse_alternation()
    if parser._peek() is not None:
        token = parser._peek()
        raise parse_error(f"trailing input {token.text!r}", text,
                          token.position)
    return expr
