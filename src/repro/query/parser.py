"""Parser for the UCRPQ surface syntax.

The syntax accepted is the one used in the paper's query figures::

    ?x,?y <- ?x (actedIn/-actedIn)+/hasChild+ ?y
    ?x    <- ?x isMarriedTo/livesIn/IsL+/dw+ Argentina
    ?x    <- C  (occ/-occ)+ ?x, ?x int+ ?y

Grammar (informal)::

    query   := head ('<-' | '←') body (';' body)*        # ';' separates union rules
    head    := endpointvar (',' endpointvar)*
    body    := atom (',' atom)*
    atom    := endpoint path endpoint
    endpoint:= '?'name | name                              # variable or constant
    path    := alt
    alt     := seq ('|' seq)*
    seq     := item ('/' item)*
    item    := atom_expr '+'?
    atom_expr := '-'? name | '(' alt ')'

Identifiers may contain letters, digits, ``_``, ``:`` and ``.`` so that
labels such as ``rdfs:subClassOf`` and constants such as
``John_Lawrence_Toole`` parse directly.
"""

from __future__ import annotations

import re

from ..errors import QueryParseError
from .ast import (Alternation, Atom, Concat, ConjunctiveQuery, Constant,
                  Endpoint, Label, PathExpr, Plus, UCRPQ, Variable)

_IDENTIFIER = re.compile(r"[A-Za-z0-9_:.][A-Za-z0-9_:.\-]*")

_TOKEN_SPEC = [
    ("ARROW", re.compile(r"<-|←")),
    ("VARIABLE", re.compile(r"\?[A-Za-z0-9_]+")),
    ("LPAREN", re.compile(r"\(")),
    ("RPAREN", re.compile(r"\)")),
    ("PLUS", re.compile(r"\+")),
    ("SLASH", re.compile(r"/")),
    ("PIPE", re.compile(r"\|")),
    ("COMMA", re.compile(r",")),
    ("SEMICOLON", re.compile(r";")),
    ("DASH", re.compile(r"-")),
    ("IDENT", _IDENTIFIER),
]


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def parse_error(message: str, source: str, position: int) -> QueryParseError:
    """Build a :class:`QueryParseError` with a source snippet and a caret.

    The rendered message looks like::

        expected a variable or constant but found '+' at position 9
          ?x <- ?x +knows ?y
                   ^

    so malformed queries coming from logs or user input can be diagnosed
    without counting characters.  The offending ``position`` (0-based
    character offset) is also attached to the exception.
    """
    position = max(0, min(position, len(source)))
    snippet = f"  {source}\n  {' ' * position}^"
    error = QueryParseError(f"{message} at position {position}\n{snippet}")
    error.position = position
    error.source = source
    return error


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        for kind, pattern in _TOKEN_SPEC:
            match = pattern.match(text, position)
            if match:
                tokens.append(_Token(kind, match.group(), position))
                position = match.end()
                break
        else:
            raise parse_error(f"unexpected character {char!r}", text, position)
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token], source: str):
        self._tokens = tokens
        self._source = source
        self._index = 0

    # -- Token helpers --------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise parse_error("unexpected end of query", self._source,
                              len(self._source))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise parse_error(f"expected {kind} but found {token.text!r}",
                              self._source, token.position)
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    # -- Grammar --------------------------------------------------------------

    def parse_query(self) -> UCRPQ:
        head = self._parse_head()
        self._expect("ARROW")
        rules = [ConjunctiveQuery(head, self._parse_body())]
        while self._accept("SEMICOLON"):
            rules.append(ConjunctiveQuery(head, self._parse_body()))
        if self._peek() is not None:
            token = self._peek()
            raise parse_error(f"trailing input {token.text!r}", self._source,
                              token.position)
        return UCRPQ(tuple(rules))

    def _parse_head(self) -> tuple[Variable, ...]:
        variables = [self._parse_head_variable()]
        while self._accept("COMMA"):
            variables.append(self._parse_head_variable())
        return tuple(variables)

    def _parse_head_variable(self) -> Variable:
        token = self._expect("VARIABLE")
        return Variable(token.text[1:])

    def _parse_body(self) -> tuple[Atom, ...]:
        atoms = [self._parse_atom()]
        while self._accept("COMMA"):
            atoms.append(self._parse_atom())
        return tuple(atoms)

    def _parse_atom(self) -> Atom:
        subject = self._parse_endpoint()
        path = self._parse_alternation()
        obj = self._parse_endpoint()
        return Atom(subject, path, obj)

    def _parse_endpoint(self) -> Endpoint:
        token = self._next()
        if token.kind == "VARIABLE":
            return Variable(token.text[1:])
        if token.kind == "IDENT":
            return Constant(token.text)
        raise parse_error(
            f"expected a variable or constant but found {token.text!r}",
            self._source, token.position)

    def _parse_alternation(self) -> PathExpr:
        options = [self._parse_sequence()]
        while self._accept("PIPE"):
            options.append(self._parse_sequence())
        if len(options) == 1:
            return options[0]
        return Alternation(tuple(options))

    def _parse_sequence(self) -> PathExpr:
        parts = [self._parse_item()]
        while self._accept("SLASH"):
            parts.append(self._parse_item())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _parse_item(self) -> PathExpr:
        expr = self._parse_step()
        while self._accept("PLUS"):
            expr = Plus(expr)
        return expr

    def _parse_step(self) -> PathExpr:
        if self._accept("LPAREN"):
            expr = self._parse_alternation()
            self._expect("RPAREN")
            return expr
        inverse = self._accept("DASH") is not None
        token = self._expect("IDENT")
        return Label(token.text, inverse=inverse)


def parse_query(text: str) -> UCRPQ:
    """Parse a UCRPQ query string into its AST.

    >>> query = parse_query("?x,?y <- ?x hasChild+ ?y")
    >>> [v.name for v in query.head]
    ['x', 'y']
    """
    tokens = _tokenize(text)
    if not tokens:
        raise QueryParseError("empty query string")
    return _Parser(tokens, text).parse_query()


def parse_path(text: str) -> PathExpr:
    """Parse a bare regular path expression such as ``(actedIn/-actedIn)+``."""
    tokens = _tokenize(text)
    if not tokens:
        raise QueryParseError("empty path expression")
    parser = _Parser(tokens, text)
    expr = parser._parse_alternation()
    if parser._peek() is not None:
        token = parser._peek()
        raise parse_error(f"trailing input {token.text!r}", text,
                          token.position)
    return expr
