"""Relation statistics used by the cost model.

The Dist-mu-RA cost estimator is a Selinger-style estimator: it needs, for
every base relation, its cardinality and the number of distinct values per
column.  In the original system these statistics come from PostgreSQL's
catalog; here they are computed directly from the in-memory relations and
cached in a :class:`StatisticsCatalog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .relation import Relation


@dataclass(frozen=True)
class RelationStats:
    """Summary statistics of one relation."""

    cardinality: int
    distinct_values: dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, relation: Relation) -> "RelationStats":
        """Compute exact statistics of an in-memory relation."""
        distinct = {
            column: len(relation.column_values(column))
            for column in relation.columns
        }
        return cls(cardinality=len(relation), distinct_values=distinct)

    def distinct(self, column: str) -> int:
        """Distinct-value count of ``column`` (at least 1 to avoid div-by-zero)."""
        return max(1, self.distinct_values.get(column, 1))

    def selectivity_equals(self, column: str) -> float:
        """Selectivity of an equality filter on ``column`` (1/V classic rule)."""
        return 1.0 / self.distinct(column)

    def scaled(self, factor: float) -> "RelationStats":
        """Return statistics scaled by ``factor`` (used for derived terms)."""
        cardinality = max(0, int(round(self.cardinality * factor)))
        distinct = {
            column: max(1, min(count, cardinality if cardinality else 1))
            for column, count in self.distinct_values.items()
        }
        return RelationStats(cardinality=cardinality, distinct_values=distinct)


class StatisticsCatalog:
    """Statistics for a database (a mapping of relation names to relations)."""

    def __init__(self, database: dict[str, Relation] | None = None):
        self._stats: dict[str, RelationStats] = {}
        if database:
            for name, relation in database.items():
                self.register(name, relation)

    def copy(self) -> "StatisticsCatalog":
        """Cheap copy-on-write duplicate sharing the (frozen) entries.

        Used by :meth:`~repro.data.snapshot.DatabaseSnapshot.mutate`:
        the successor snapshot copies the catalog's dictionary (O(#names))
        and re-registers only the touched relations, so the per-relation
        :class:`RelationStats` objects — which are immutable — are shared
        across snapshot versions.
        """
        duplicate = StatisticsCatalog()
        duplicate._stats = dict(self._stats)
        return duplicate

    def register(self, name: str, relation: Relation) -> RelationStats:
        """Compute and store the statistics of ``relation`` under ``name``."""
        stats = RelationStats.of(relation)
        self._stats[name] = stats
        return stats

    def register_stats(self, name: str, stats: RelationStats) -> None:
        """Store externally computed statistics (e.g. sampled estimates)."""
        self._stats[name] = stats

    def invalidate(self, name: str) -> bool:
        """Drop the statistics of ``name`` (after the relation changed).

        Until the relation is re-``register``-ed the catalog falls back to
        the conservative default of :meth:`get`, so stale estimates can
        never survive a mutation.  Returns whether an entry was dropped.
        """
        return self._stats.pop(name, None) is not None

    def refresh(self, name: str, relation: Relation) -> RelationStats:
        """Invalidate and immediately re-register ``name`` from ``relation``.

        This is the entry point used by the engine's mutation API: after
        ``add_edges``/``remove_edges`` every touched relation goes through
        ``refresh`` so cost estimates always reflect the current data.
        """
        self.invalidate(name)
        return self.register(name, relation)

    def __contains__(self, name: str) -> bool:
        return name in self._stats

    def get(self, name: str) -> RelationStats:
        """Return the statistics of ``name``.

        Unknown relations get a conservative default (cardinality 1000) so
        the cost model keeps working on partially registered databases.
        """
        if name in self._stats:
            return self._stats[name]
        return RelationStats(cardinality=1000, distinct_values={})

    def names(self) -> tuple[str, ...]:
        """Return the registered relation names."""
        return tuple(sorted(self._stats))
