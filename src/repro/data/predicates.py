"""Filter predicates for the sigma (selection) operator.

Predicates are small immutable expression trees evaluated against a row.
They expose:

* :meth:`Predicate.columns` — the set of columns they read, used by the
  rewriter (a filter can be pushed into a fixpoint only when it touches
  stable columns) and by the cost model (selectivity estimation),
* :meth:`Predicate.evaluate` — evaluation against a ``dict`` row,
* :meth:`Predicate.compile` — a fast row-tuple evaluator bound to a schema,
  used by :class:`~repro.data.relation.Relation` so filtering large
  relations does not build a dictionary per row,
* :meth:`Predicate.rename` — column renaming, needed when filters are moved
  across rename operators during rewriting.
"""

from __future__ import annotations

import operator
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from ..errors import SchemaError

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Base class of all filter predicates."""

    def columns(self) -> frozenset[str]:
        """Return the set of column names referenced by the predicate."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Evaluate the predicate against a mapping row."""
        raise NotImplementedError

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        """Return a fast evaluator over value tuples aligned with ``schema``."""
        raise NotImplementedError

    def rename(self, old: str, new: str) -> "Predicate":
        """Return a copy of the predicate where column ``old`` is renamed."""
        raise NotImplementedError

    def _check_schema(self, schema: tuple[str, ...]) -> None:
        missing = self.columns() - set(schema)
        if missing:
            raise SchemaError(
                f"predicate references missing columns {sorted(missing)}; "
                f"schema is {list(schema)}"
            )

    # Convenience combinators ------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Eq(Predicate):
    """``column == constant`` comparison (the most common graph filter)."""

    column: str
    value: Any

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row[self.column] == self.value

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        self._check_schema(schema)
        index = schema.index(self.column)
        value = self.value
        return lambda values: values[index] == value

    def rename(self, old: str, new: str) -> "Predicate":
        if self.column == old:
            return Eq(new, self.value)
        return self

    def __repr__(self) -> str:
        return f"{self.column} == {self.value!r}"


@dataclass(frozen=True)
class Compare(Predicate):
    """``column <op> constant`` comparison for ``<, <=, >, >=, ==, !=``."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return _COMPARATORS[self.op](row[self.column], self.value)

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        self._check_schema(schema)
        index = schema.index(self.column)
        compare = _COMPARATORS[self.op]
        value = self.value
        return lambda values: compare(values[index], value)

    def rename(self, old: str, new: str) -> "Predicate":
        if self.column == old:
            return Compare(new, self.op, self.value)
        return self

    def __repr__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class ColumnEq(Predicate):
    """``column == other_column`` comparison between two columns."""

    left: str
    right: str

    def columns(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row[self.left] == row[self.right]

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        self._check_schema(schema)
        left = schema.index(self.left)
        right = schema.index(self.right)
        return lambda values: values[left] == values[right]

    def rename(self, old: str, new: str) -> "Predicate":
        left = new if self.left == old else self.left
        right = new if self.right == old else self.right
        return ColumnEq(left, right)

    def __repr__(self) -> str:
        return f"{self.left} == {self.right}"


@dataclass(frozen=True)
class In(Predicate):
    """``column IN constants`` membership test."""

    column: str
    values: frozenset

    def __init__(self, column: str, values) -> None:
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", frozenset(values))

    def columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row[self.column] in self.values

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        self._check_schema(schema)
        index = schema.index(self.column)
        values = self.values
        return lambda row: row[index] in values

    def rename(self, old: str, new: str) -> "Predicate":
        if self.column == old:
            return In(new, self.values)
        return self

    def __repr__(self) -> str:
        shown = sorted(self.values, key=repr)[:4]
        suffix = ", ..." if len(self.values) > 4 else ""
        return f"{self.column} in {{{', '.join(map(repr, shown))}{suffix}}}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda values: left(values) and right(values)

    def rename(self, old: str, new: str) -> "Predicate":
        return And(self.left.rename(old, new), self.right.rename(old, new))

    def __repr__(self) -> str:
        return f"({self.left!r} and {self.right!r})"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        return lambda values: left(values) or right(values)

    def rename(self, old: str, new: str) -> "Predicate":
        return Or(self.left.rename(old, new), self.right.rename(old, new))

    def __repr__(self) -> str:
        return f"({self.left!r} or {self.right!r})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    inner: Predicate

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.inner.evaluate(row)

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        inner = self.inner.compile(schema)
        return lambda values: not inner(values)

    def rename(self, old: str, new: str) -> "Predicate":
        return Not(self.inner.rename(old, new))

    def __repr__(self) -> str:
        return f"(not {self.inner!r})"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Predicate that always holds; the neutral element for conjunction."""

    def columns(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return True

    def compile(self, schema: tuple[str, ...]) -> Callable[[tuple[Any, ...]], bool]:
        return lambda values: True

    def rename(self, old: str, new: str) -> "Predicate":
        return self

    def __repr__(self) -> str:
        return "true"


def conjunction(predicates) -> Predicate:
    """Combine an iterable of predicates into a single conjunction.

    Returns :class:`TruePredicate` for an empty iterable.
    """
    combined: Predicate | None = None
    for predicate in predicates:
        combined = predicate if combined is None else And(combined, predicate)
    return combined if combined is not None else TruePredicate()
