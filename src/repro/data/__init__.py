"""Relational data model: tuples, relations, predicates, graphs, statistics."""

from .columnar import (ColumnarRelation, ValueDictionary, columnar_enabled,
                       row_mode, set_columnar_enabled, snapshot_dictionary)
from .graph import INVERSE_PREFIX, PRED, SRC, TRG, LabeledGraph
from .io import (read_graph_tsv, read_relation_tsv, write_graph_tsv,
                 write_relation_tsv)
from .predicates import (And, ColumnEq, Compare, Eq, In, Not, Or, Predicate,
                         TruePredicate, conjunction)
from .relation import Relation
from .snapshot import DEFAULT_GRAPH, DatabaseSnapshot
from .stats import RelationStats, StatisticsCatalog
from .storage import (DeltaAccumulator, HashIndex, RelationBuilder,
                      caching_enabled, compatibility_mode, set_caching_enabled)
from .tuples import Tup

__all__ = [
    "And",
    "ColumnEq",
    "ColumnarRelation",
    "Compare",
    "DEFAULT_GRAPH",
    "DatabaseSnapshot",
    "DeltaAccumulator",
    "Eq",
    "HashIndex",
    "In",
    "INVERSE_PREFIX",
    "LabeledGraph",
    "Not",
    "Or",
    "PRED",
    "Predicate",
    "Relation",
    "RelationBuilder",
    "RelationStats",
    "SRC",
    "StatisticsCatalog",
    "TRG",
    "TruePredicate",
    "Tup",
    "ValueDictionary",
    "caching_enabled",
    "columnar_enabled",
    "compatibility_mode",
    "conjunction",
    "row_mode",
    "set_caching_enabled",
    "set_columnar_enabled",
    "snapshot_dictionary",
    "read_graph_tsv",
    "read_relation_tsv",
    "write_graph_tsv",
    "write_relation_tsv",
]
