"""Relational data model: tuples, relations, predicates, graphs, statistics."""

from .graph import INVERSE_PREFIX, PRED, SRC, TRG, LabeledGraph
from .io import (read_graph_tsv, read_relation_tsv, write_graph_tsv,
                 write_relation_tsv)
from .predicates import (And, ColumnEq, Compare, Eq, In, Not, Or, Predicate,
                         TruePredicate, conjunction)
from .relation import Relation
from .stats import RelationStats, StatisticsCatalog
from .tuples import Tup

__all__ = [
    "And",
    "ColumnEq",
    "Compare",
    "Eq",
    "In",
    "INVERSE_PREFIX",
    "LabeledGraph",
    "Not",
    "Or",
    "PRED",
    "Predicate",
    "Relation",
    "RelationStats",
    "SRC",
    "StatisticsCatalog",
    "TRG",
    "TruePredicate",
    "Tup",
    "conjunction",
    "read_graph_tsv",
    "read_relation_tsv",
    "write_graph_tsv",
    "write_relation_tsv",
]
