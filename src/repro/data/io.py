"""Loading and saving relations and graphs as tab-separated files.

The original system loads graphs from pre-processed triple dumps (e.g. the
cleaned Yago facts table).  This module provides the equivalent plumbing for
the reproduction: a minimal, dependency-free TSV reader/writer so datasets
generated once can be cached on disk and reloaded by benchmarks.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from ..errors import DatasetError
from .graph import LabeledGraph
from .relation import Relation
from .storage import RelationBuilder


def write_relation_tsv(relation: Relation, path: str | Path) -> None:
    """Write a relation to a TSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(relation.columns)
        for row in sorted(relation.rows, key=repr):
            writer.writerow(row)


def read_relation_tsv(path: str | Path, types: dict[str, type] | None = None) -> Relation:
    """Read a relation from a TSV file written by :func:`write_relation_tsv`.

    ``types`` optionally maps column names to constructors (e.g. ``int``)
    applied to the raw string cells.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such relation file: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter="\t")
        try:
            header = next(reader)
        except StopIteration as exc:
            raise DatasetError(f"relation file {path} is empty") from exc
        columns = tuple(header)
        converters = [types.get(c, str) if types else str for c in columns]
        # Ingestion goes through the validating builder: rows are checked
        # (and realigned to the sorted schema, whatever the header order)
        # here, once, and the relation is materialized through the trusted
        # path.
        builder = RelationBuilder(columns)
        for cells in reader:
            if len(cells) != len(columns):
                raise DatasetError(
                    f"row {cells!r} in {path} does not match header {columns}"
                )
            builder.add_mapping({
                column: conv(cell)
                for column, conv, cell in zip(columns, converters, cells)})
    return builder.build()


def write_graph_tsv(graph: LabeledGraph, path: str | Path) -> None:
    """Write a labelled graph as a (src, pred, trg) triples TSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t")
        writer.writerow(("src", "pred", "trg"))
        for src, label, trg in graph.iter_triples():
            writer.writerow((src, label, trg))


def read_graph_tsv(path: str | Path, node_type: type = str,
                   name: str | None = None) -> LabeledGraph:
    """Read a labelled graph from a triples TSV file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such graph file: {path}")
    graph = LabeledGraph(name=name or path.stem)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter="\t")
        header = next(reader, None)
        if header != ["src", "pred", "trg"]:
            raise DatasetError(
                f"graph file {path} must start with a 'src\\tpred\\ttrg' header"
            )
        for cells in reader:
            if len(cells) != 3:
                raise DatasetError(f"malformed triple {cells!r} in {path}")
            src, pred, trg = cells
            graph.add_edge(_convert(src, node_type), pred, _convert(trg, node_type))
    return graph


def _convert(value: str, node_type: type) -> Any:
    try:
        return node_type(value)
    except (TypeError, ValueError) as exc:
        raise DatasetError(f"cannot convert node id {value!r} to {node_type}") from exc
