"""Edge-labelled graphs and their relational views.

The paper evaluates queries over edge-labelled directed graphs stored as a
single facts table of triples ``(src, pred, trg)`` (e.g. the Yago dump) or
equivalently as one binary relation per predicate.  :class:`LabeledGraph`
is the container used throughout the reproduction:

* the dataset generators produce ``LabeledGraph`` instances,
* ``edges(label)`` returns the binary ``(src, trg)`` relation of one label,
* ``facts()`` returns the full triples relation (used by the non-regular
  queries such as same-generation, which are written over the facts table),
* ``reversed_label(label)`` gives access to the inverse edges, which is how
  UCRPQ inverse steps (``-label``) are evaluated.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from typing import Any

from ..errors import DatasetError, SchemaError
from .relation import Relation

#: Column names used for graph relations throughout the library.
SRC = "src"
TRG = "trg"
PRED = "pred"

#: Prefix marking an inverse label, as in the UCRPQ syntax ``-actedIn``.
INVERSE_PREFIX = "-"


class LabeledGraph:
    """A directed graph whose edges carry a string label (predicate).

    >>> g = LabeledGraph()
    >>> g.add_edge(1, "knows", 2)
    >>> g.add_edge(2, "knows", 3)
    >>> len(g.edges("knows"))
    2
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._by_label: dict[str, set[tuple[Any, Any]]] = defaultdict(set)
        self._nodes: set[Any] = set()

    # -- Construction -------------------------------------------------------

    def add_edge(self, src: Any, label: str, trg: Any) -> None:
        """Add one labelled edge to the graph."""
        if not isinstance(label, str) or not label:
            raise DatasetError(f"edge labels must be non-empty strings, got {label!r}")
        if label.startswith(INVERSE_PREFIX):
            raise DatasetError(
                f"label {label!r} starts with the reserved inverse prefix "
                f"{INVERSE_PREFIX!r}"
            )
        self._by_label[label].add((src, trg))
        self._nodes.add(src)
        self._nodes.add(trg)

    def add_edges(self, edges: Iterable[tuple[Any, str, Any]]) -> None:
        """Add many ``(src, label, trg)`` edges."""
        for src, label, trg in edges:
            self.add_edge(src, label, trg)

    def add_pairs(self, label: str, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Bulk-add ``(src, trg)`` pairs under one label.

        The label is validated once and the pair sets are extended in
        bulk, which is the fast path :meth:`from_relation` and the
        dataset readers use instead of per-edge :meth:`add_edge` calls.
        """
        if not isinstance(label, str) or not label:
            raise DatasetError(f"edge labels must be non-empty strings, got {label!r}")
        if label.startswith(INVERSE_PREFIX):
            raise DatasetError(
                f"label {label!r} starts with the reserved inverse prefix "
                f"{INVERSE_PREFIX!r}"
            )
        # Normalize (and arity-check) every pair *before* touching the
        # graph, so a malformed pair cannot leave a half-applied bulk add
        # behind; an empty iterable must not phantom-register the label.
        normalized = {(src, trg) for src, trg in pairs}
        if not normalized:
            return
        self._by_label[label].update(normalized)
        for src, trg in normalized:
            self._nodes.add(src)
            self._nodes.add(trg)

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[Any, str, Any]],
                     name: str = "graph") -> "LabeledGraph":
        """Build a graph from an iterable of ``(src, label, trg)`` triples."""
        graph = cls(name=name)
        graph.add_edges(triples)
        return graph

    @classmethod
    def from_relation(cls, facts: Relation, name: str = "graph") -> "LabeledGraph":
        """Build a graph from a facts relation with columns src/pred/trg."""
        expected = tuple(sorted((SRC, PRED, TRG)))
        if facts.columns != expected:
            raise SchemaError(
                f"facts relation must have columns {expected}, got {facts.columns}"
            )
        graph = cls(name=name)
        # Resolve the column positions once and bulk-add per label instead
        # of round-tripping every row through a dictionary: the rows are
        # already aligned with the sorted schema.
        pred_at = facts.columns.index(PRED)
        src_at = facts.columns.index(SRC)
        trg_at = facts.columns.index(TRG)
        by_label: dict[str, set[tuple[Any, Any]]] = defaultdict(set)
        for row in facts.rows:
            by_label[row[pred_at]].add((row[src_at], row[trg_at]))
        for label, pairs in by_label.items():
            graph.add_pairs(label, pairs)
        return graph

    # -- Inspection ---------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        """All node identifiers appearing in the graph."""
        return frozenset(self._nodes)

    @property
    def labels(self) -> tuple[str, ...]:
        """The sorted list of (non-empty) edge labels."""
        return tuple(sorted(label for label, edges in self._by_label.items() if edges))

    def edge_count(self, label: str | None = None) -> int:
        """Number of edges, either of one label or of the whole graph."""
        if label is not None:
            return len(self._by_label.get(self._base_label(label), ()))
        return sum(len(edges) for edges in self._by_label.values())

    def iter_triples(self) -> Iterator[tuple[Any, str, Any]]:
        """Iterate over all ``(src, label, trg)`` triples."""
        for label in self.labels:
            for src, trg in sorted(self._by_label[label], key=repr):
                yield src, label, trg

    def __len__(self) -> int:
        return self.edge_count()

    def __repr__(self) -> str:
        return (f"LabeledGraph(name={self.name!r}, nodes={len(self._nodes)}, "
                f"edges={self.edge_count()}, labels={len(self.labels)})")

    # -- Relational views ----------------------------------------------------

    def edges(self, label: str, src: str = SRC, trg: str = TRG) -> Relation:
        """Return the binary relation of one label as columns ``src``/``trg``.

        Inverse labels (``-knows``) return the reversed edges, which is how
        UCRPQ inverse navigation steps are evaluated.
        """
        base = self._base_label(label)
        pairs = self._by_label.get(base, set())
        if self._is_inverse(label):
            pairs = {(b, a) for a, b in pairs}
        ordered = tuple(sorted((src, trg)))
        if ordered == (src, trg):
            rows = frozenset(pairs)
        else:
            rows = frozenset((b, a) for a, b in pairs)
        # The pairs are aligned with the sorted schema by construction, so
        # ingestion takes the same zero-copy path as the operators.
        return Relation._from_trusted(ordered, rows)

    def facts(self) -> Relation:
        """Return the whole graph as a single (src, pred, trg) relation."""
        columns = tuple(sorted((SRC, PRED, TRG)))  # ('pred', 'src', 'trg')
        rows = frozenset((label, s, t)
                         for label, pairs in self._by_label.items()
                         for s, t in pairs)
        return Relation._from_trusted(columns, rows)

    def relations(self) -> dict[str, Relation]:
        """Return a database mapping each label to its edge relation.

        The mapping also contains the inverse relations under ``-label``
        keys and the full facts table under the key ``"facts"``, which is
        the database layout expected by the query translator.
        """
        database: dict[str, Relation] = {}
        for label in self.labels:
            database[label] = self.edges(label)
            database[INVERSE_PREFIX + label] = self.edges(INVERSE_PREFIX + label)
        database["facts"] = self.facts()
        return database

    def successors(self, node: Any, label: str) -> set[Any]:
        """Return the targets of edges labelled ``label`` leaving ``node``."""
        base = self._base_label(label)
        pairs = self._by_label.get(base, set())
        if self._is_inverse(label):
            return {a for a, b in pairs if b == node}
        return {b for a, b in pairs if a == node}

    def out_degree(self, node: Any) -> int:
        """Total number of outgoing edges (all labels) of ``node``."""
        return sum(1 for label in self.labels
                   for a, _ in self._by_label[label] if a == node)

    # -- Internal helpers ----------------------------------------------------

    @staticmethod
    def _is_inverse(label: str) -> bool:
        return label.startswith(INVERSE_PREFIX)

    @staticmethod
    def _base_label(label: str) -> str:
        return label[len(INVERSE_PREFIX):] if label.startswith(INVERSE_PREFIX) else label
