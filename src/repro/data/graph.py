"""Edge-labelled graphs and their relational views.

The paper evaluates queries over edge-labelled directed graphs stored as a
single facts table of triples ``(src, pred, trg)`` (e.g. the Yago dump) or
equivalently as one binary relation per predicate.  :class:`LabeledGraph`
is the container used throughout the reproduction:

* the dataset generators produce ``LabeledGraph`` instances,
* ``edges(label)`` returns the binary ``(src, trg)`` relation of one label,
* ``facts()`` returns the full triples relation (used by the non-regular
  queries such as same-generation, which are written over the facts table),
* ``reversed_label(label)`` gives access to the inverse edges, which is how
  UCRPQ inverse steps (``-label``) are evaluated.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from typing import Any

from ..errors import DatasetError, SchemaError
from .relation import Relation

#: Column names used for graph relations throughout the library.
SRC = "src"
TRG = "trg"
PRED = "pred"

#: Prefix marking an inverse label, as in the UCRPQ syntax ``-actedIn``.
INVERSE_PREFIX = "-"


class LabeledGraph:
    """A directed graph whose edges carry a string label (predicate).

    >>> g = LabeledGraph()
    >>> g.add_edge(1, "knows", 2)
    >>> g.add_edge(2, "knows", 3)
    >>> len(g.edges("knows"))
    2
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._by_label: dict[str, set[tuple[Any, Any]]] = defaultdict(set)
        self._nodes: set[Any] = set()

    # -- Construction -------------------------------------------------------

    def add_edge(self, src: Any, label: str, trg: Any) -> None:
        """Add one labelled edge to the graph."""
        if not isinstance(label, str) or not label:
            raise DatasetError(f"edge labels must be non-empty strings, got {label!r}")
        if label.startswith(INVERSE_PREFIX):
            raise DatasetError(
                f"label {label!r} starts with the reserved inverse prefix "
                f"{INVERSE_PREFIX!r}"
            )
        self._by_label[label].add((src, trg))
        self._nodes.add(src)
        self._nodes.add(trg)

    def add_edges(self, edges: Iterable[tuple[Any, str, Any]]) -> None:
        """Add many ``(src, label, trg)`` edges."""
        for src, label, trg in edges:
            self.add_edge(src, label, trg)

    @classmethod
    def from_triples(cls, triples: Iterable[tuple[Any, str, Any]],
                     name: str = "graph") -> "LabeledGraph":
        """Build a graph from an iterable of ``(src, label, trg)`` triples."""
        graph = cls(name=name)
        graph.add_edges(triples)
        return graph

    @classmethod
    def from_relation(cls, facts: Relation, name: str = "graph") -> "LabeledGraph":
        """Build a graph from a facts relation with columns src/pred/trg."""
        expected = tuple(sorted((SRC, PRED, TRG)))
        if facts.columns != expected:
            raise SchemaError(
                f"facts relation must have columns {expected}, got {facts.columns}"
            )
        graph = cls(name=name)
        for row in facts.to_dicts():
            graph.add_edge(row[SRC], row[PRED], row[TRG])
        return graph

    # -- Inspection ---------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        """All node identifiers appearing in the graph."""
        return frozenset(self._nodes)

    @property
    def labels(self) -> tuple[str, ...]:
        """The sorted list of (non-empty) edge labels."""
        return tuple(sorted(label for label, edges in self._by_label.items() if edges))

    def edge_count(self, label: str | None = None) -> int:
        """Number of edges, either of one label or of the whole graph."""
        if label is not None:
            return len(self._by_label.get(self._base_label(label), ()))
        return sum(len(edges) for edges in self._by_label.values())

    def iter_triples(self) -> Iterator[tuple[Any, str, Any]]:
        """Iterate over all ``(src, label, trg)`` triples."""
        for label in self.labels:
            for src, trg in sorted(self._by_label[label], key=repr):
                yield src, label, trg

    def __len__(self) -> int:
        return self.edge_count()

    def __repr__(self) -> str:
        return (f"LabeledGraph(name={self.name!r}, nodes={len(self._nodes)}, "
                f"edges={self.edge_count()}, labels={len(self.labels)})")

    # -- Relational views ----------------------------------------------------

    def edges(self, label: str, src: str = SRC, trg: str = TRG) -> Relation:
        """Return the binary relation of one label as columns ``src``/``trg``.

        Inverse labels (``-knows``) return the reversed edges, which is how
        UCRPQ inverse navigation steps are evaluated.
        """
        base = self._base_label(label)
        pairs = self._by_label.get(base, set())
        if self._is_inverse(label):
            pairs = {(b, a) for a, b in pairs}
        rows = [{src: a, trg: b} for a, b in pairs]
        if not rows:
            return Relation.empty((src, trg))
        return Relation.from_dicts(rows, columns=(src, trg))

    def facts(self) -> Relation:
        """Return the whole graph as a single (src, pred, trg) relation."""
        rows = [{SRC: s, PRED: p, TRG: t} for s, p, t in self.iter_triples()]
        if not rows:
            return Relation.empty((SRC, PRED, TRG))
        return Relation.from_dicts(rows, columns=(SRC, PRED, TRG))

    def relations(self) -> dict[str, Relation]:
        """Return a database mapping each label to its edge relation.

        The mapping also contains the inverse relations under ``-label``
        keys and the full facts table under the key ``"facts"``, which is
        the database layout expected by the query translator.
        """
        database: dict[str, Relation] = {}
        for label in self.labels:
            database[label] = self.edges(label)
            database[INVERSE_PREFIX + label] = self.edges(INVERSE_PREFIX + label)
        database["facts"] = self.facts()
        return database

    def successors(self, node: Any, label: str) -> set[Any]:
        """Return the targets of edges labelled ``label`` leaving ``node``."""
        base = self._base_label(label)
        pairs = self._by_label.get(base, set())
        if self._is_inverse(label):
            return {a for a, b in pairs if b == node}
        return {b for a, b in pairs if a == node}

    def out_degree(self, node: Any) -> int:
        """Total number of outgoing edges (all labels) of ``node``."""
        return sum(1 for label in self.labels
                   for a, _ in self._by_label[label] if a == node)

    # -- Internal helpers ----------------------------------------------------

    @staticmethod
    def _is_inverse(label: str) -> bool:
        return label.startswith(INVERSE_PREFIX)

    @staticmethod
    def _base_label(label: str) -> str:
        return label[len(INVERSE_PREFIX):] if label.startswith(INVERSE_PREFIX) else label
