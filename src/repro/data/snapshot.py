"""Immutable, versioned database snapshots with structural sharing.

A :class:`DatabaseSnapshot` is the unit of data ownership of the Session
API: a frozen mapping from relation names to immutable
:class:`~repro.data.relation.Relation` objects, tagged with a monotonic
``version`` and with per-relation version counters.  The paper's
Dist-mu-RA engine assumes a frozen database per query; snapshots make
that assumption explicit and enforceable under concurrent mutation:

* **Immutability** — a snapshot never changes.  Every reader (a pinned
  query handle, an in-flight stream, a broadcast to the simulated
  cluster, the Datalog baseline's EDB extraction) sees exactly the
  version it started from, without holding any lock.
* **Copy-on-write commits** — :meth:`DatabaseSnapshot.mutate` builds the
  *successor* snapshot: only the touched relations are replaced, and
  every untouched :class:`Relation` object (and therefore its memoized
  hash indexes) is shared between the old and the new version.  Commit
  cost is O(touched relations) plus a few dictionary copies.
* **Version fingerprints** — :meth:`fingerprint` returns the sorted
  ``(name, version)`` tuple of a set of relations, which is the
  database half of every plan- and result-cache key.  Because keys are
  version-qualified, mutations never purge caches: entries for old
  versions simply stop being looked up and age out of the LRU.
* **Snapshot-scoped statistics and schemas** — the cost model's
  :class:`~repro.data.stats.StatisticsCatalog` and the schema mapping
  travel *with* the snapshot, so an unlocked plan phase can never pair a
  new fingerprint with stale statistics (or vice versa): both come from
  the same immutable object.

Snapshots are plain :class:`~collections.abc.Mapping` objects, so every
consumer that used to take a ``dict[str, Relation]`` database (the
evaluator, the physical executor, the Datalog translation) accepts a
snapshot unchanged.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from ..errors import SchemaError
from .relation import Relation
from .stats import StatisticsCatalog

#: Name given to the default graph of a session.
DEFAULT_GRAPH = "default"

#: Private miss sentinel of the derived-artifact memo: a computed ``None``
#: (or any falsy artifact) must be cached like any other value instead of
#: being recomputed on every call.
_DERIVED_MISS = object()


@dataclass(frozen=True)
class RelationDelta:
    """Row-level difference of one relation across a single commit."""

    added: Relation
    removed: Relation

    def __bool__(self) -> bool:
        return bool(self.added) or bool(self.removed)

    @property
    def size(self) -> int:
        """Total changed rows (insertions plus deletions)."""
        return len(self.added) + len(self.removed)


class DatabaseSnapshot(Mapping):
    """A frozen, versioned ``name -> Relation`` database.

    Instances are created by :meth:`from_graph` / :meth:`from_relations`
    (version 0) and by :meth:`mutate` (the copy-on-write successor).
    The mapping interface is read-only; ``snapshot["knows"]`` returns the
    relation exactly as a plain database dict would.
    """

    __slots__ = ("graph_name", "version", "_relations", "_versions",
                 "_schemas", "_catalog", "_derived", "_parent_touched",
                 "_deltas")

    def __init__(self, relations: Mapping[str, Relation], *,
                 graph_name: str = DEFAULT_GRAPH):
        for name, relation in relations.items():
            if not isinstance(relation, Relation):
                raise SchemaError(
                    f"database entry {name!r} is not a Relation: {relation!r}")
        self.graph_name = graph_name
        self.version = 0
        self._relations: dict[str, Relation] = dict(relations)
        for relation in self._relations.values():
            relation._freeze()
        self._versions: dict[str, int] = dict.fromkeys(self._relations, 0)
        self._schemas: dict[str, tuple[str, ...]] = {
            name: relation.columns
            for name, relation in self._relations.items()}
        self._catalog = StatisticsCatalog(self._relations)
        #: Memo slot for derived artifacts computed *from* this snapshot
        #: (e.g. the Datalog EDB).  Immutable data, so entries never go
        #: stale; concurrent writers race benignly to identical values.
        self._derived: dict[str, object] = {}
        #: ``name -> predecessor relation`` of the relations the commit
        #: that produced this snapshot touched (empty for version-0
        #: roots).  Kept so :meth:`deltas` can be computed lazily — the
        #: commit itself stays O(touched) dictionary work.
        self._parent_touched: dict[str, Relation | None] = {}
        self._deltas: dict[str, RelationDelta] | None = None

    # -- Constructors ------------------------------------------------------

    @classmethod
    def from_graph(cls, graph, *, graph_name: str | None = None
                   ) -> "DatabaseSnapshot":
        """Ingest a :class:`~repro.data.graph.LabeledGraph` at version 0.

        The snapshot gets one binary relation per label, the ``-label``
        inverses and the ``facts`` triple table — the layout the query
        translator expects (see :meth:`LabeledGraph.relations`).
        """
        name = graph_name if graph_name is not None \
            else getattr(graph, "name", DEFAULT_GRAPH)
        return cls(graph.relations(), graph_name=name)

    @classmethod
    def from_relations(cls, relations: Mapping[str, Relation], *,
                       graph_name: str = DEFAULT_GRAPH) -> "DatabaseSnapshot":
        """Wrap an existing ``name -> Relation`` mapping at version 0."""
        return cls(relations, graph_name=graph_name)

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    # -- Versioning --------------------------------------------------------

    def relation_version(self, name: str) -> int:
        """Version at which ``name`` last changed (0 for unknown names)."""
        return self._versions.get(name, 0)

    def fingerprint(self, names) -> tuple[tuple[str, int], ...]:
        """Sorted ``(name, version)`` identity of the given relations.

        Unknown names are included with version 0, so a cache entry built
        before a relation existed stops matching once it appears.  This
        tuple is the database half of every plan/result cache key.
        """
        return tuple((name, self.relation_version(name))
                     for name in sorted(set(names)))

    # -- Snapshot-scoped derived state -------------------------------------

    @property
    def catalog(self) -> StatisticsCatalog:
        """The statistics this snapshot's data was summarized into.

        Reading versions and statistics from one snapshot object is what
        lets the plan phase run without the execution lock: both halves
        of a cached plan's identity are frozen together.
        """
        return self._catalog

    @property
    def schemas(self) -> dict[str, tuple[str, ...]]:
        """``name -> columns`` mapping (the rewriter/physical layer input)."""
        return self._schemas

    # -- Copy-on-write commits ---------------------------------------------

    def mutate(self, changes: Mapping[str, Relation]) -> "DatabaseSnapshot":
        """Return the successor snapshot with ``changes`` applied.

        Structural sharing: the relations, versions, schemas and
        statistics of every *untouched* name are shared with this
        snapshot (same ``Relation`` objects, so their memoized hash
        indexes survive the commit).  Only the entries named in
        ``changes`` are recomputed, which keeps commit cost
        O(touched relations) + O(#names) dictionary copies.
        """
        if not changes:
            return self
        successor = DatabaseSnapshot.__new__(DatabaseSnapshot)
        successor.graph_name = self.graph_name
        successor.version = self.version + 1
        successor._relations = {**self._relations, **changes}
        successor._versions = dict(self._versions)
        successor._schemas = dict(self._schemas)
        successor._catalog = self._catalog.copy()
        successor._derived = {}
        # Remember the predecessor value of every touched relation so the
        # maintenance layer can ask for row-level deltas.  The old
        # Relation objects are immutable and (for the touched names)
        # about to be superseded anyway, so this holds no extra data the
        # old snapshot does not hold already — and the actual set
        # differences are computed lazily, off the commit path.
        successor._parent_touched = {
            name: self._relations.get(name) for name in changes}
        successor._deltas = None
        for name, relation in changes.items():
            relation._freeze()
            successor._versions[name] = successor.version
            successor._schemas[name] = relation.columns
            successor._catalog.refresh(name, relation)
        return successor

    def relabeled(self, graph_name: str) -> "DatabaseSnapshot":
        """This snapshot's content under another graph name.

        Shares everything (relations, versions, schemas, statistics)
        with this snapshot; only the label differs.  Used when an
        existing snapshot is attached to a session under a new name.
        """
        if graph_name == self.graph_name:
            return self
        twin = DatabaseSnapshot.__new__(DatabaseSnapshot)
        twin.graph_name = graph_name
        twin.version = self.version
        twin._relations = self._relations
        twin._versions = self._versions
        twin._schemas = self._schemas
        twin._catalog = self._catalog
        twin._derived = {}
        # A relabel starts a new lineage (it is what attach() does), so
        # the twin carries no commit delta of its own.
        twin._parent_touched = {}
        twin._deltas = None
        return twin

    # -- Commit deltas -------------------------------------------------------

    @property
    def touched(self) -> tuple[str, ...]:
        """Names the commit that produced this snapshot replaced.

        Empty for version-0 roots (and relabeled attachments), which have
        no predecessor to differ from.
        """
        return tuple(sorted(self._parent_touched))

    def deltas(self) -> Mapping[str, RelationDelta]:
        """Per-relation added/removed rows of the commit behind this snapshot.

        Computed lazily from the predecessor relations remembered by
        :meth:`mutate` and memoized; the commit itself never pays for the
        set differences.  Only the touched relations appear.  Safe
        without a lock: concurrent callers race benignly to identical
        values (both inputs are immutable).
        """
        if self._deltas is None:
            deltas: dict[str, RelationDelta] = {}
            for name, previous in self._parent_touched.items():
                current = self._relations[name]
                if previous is None:
                    previous = Relation.empty(current.columns)
                added = current.rows - previous.rows
                removed = previous.rows - current.rows
                deltas[name] = RelationDelta(
                    added=Relation._from_trusted(current.columns,
                                                 frozenset(added)),
                    removed=Relation._from_trusted(previous.columns,
                                                   frozenset(removed)))
            self._deltas = deltas
        return self._deltas

    # -- Derived-artifact memo ---------------------------------------------

    def derived(self, key: str, compute):
        """Memoize ``compute(self)`` on the snapshot under ``key``.

        Used for per-snapshot derived artifacts such as the Datalog EDB.
        Safe without a lock: concurrent callers may both compute, but
        they compute identical values from immutable inputs.  A private
        sentinel marks the miss, so a legitimately ``None`` (or falsy)
        artifact is computed once and then served from the memo.
        """
        value = self._derived.get(key, _DERIVED_MISS)
        if value is _DERIVED_MISS:
            value = compute(self)
            self._derived[key] = value
        return value

    # -- Introspection -----------------------------------------------------

    def __repr__(self) -> str:
        return (f"DatabaseSnapshot(graph={self.graph_name!r}, "
                f"version={self.version}, relations={len(self._relations)})")


def adopt_database(database: Mapping[str, Relation]) -> Mapping[str, Relation]:
    """Adopt a query database without copying when it is safe to share.

    A :class:`DatabaseSnapshot` is immutable, so executors and fixpoint
    plans (and the broadcasts they perform) can ship the snapshot itself
    — structural sharing all the way down to the per-relation hash
    indexes.  Mutable mappings are defensively copied, as before.
    """
    if isinstance(database, DatabaseSnapshot):
        return database
    return dict(database)


def database_schemas(database: Mapping[str, Relation],
                     ) -> Mapping[str, tuple[str, ...]]:
    """``name -> columns`` of a database; free for snapshots (precomputed)."""
    if isinstance(database, DatabaseSnapshot):
        return database.schemas
    return {name: relation.columns for name, relation in database.items()}
