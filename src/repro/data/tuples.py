"""Immutable named tuples (mappings from column names to values).

The mu-RA data model manipulates *tuples* in the relational sense: finite
mappings from column names to values, e.g. ``{src: 1, dst: 2}``.  The
:class:`Tup` class is a small immutable, hashable mapping used at API
boundaries (building relations from dictionaries, returning query results
as dictionaries).  Internally :class:`~repro.data.relation.Relation` stores
rows as plain value tuples aligned with a sorted schema for speed; ``Tup``
is the user-facing view of a single row.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Any


class Tup(Mapping):
    """An immutable, hashable mapping from column names to values.

    ``Tup`` behaves like a read-only dictionary and can therefore be used
    wherever a mapping is expected, but it is hashable and can be stored in
    sets, which is how relations (sets of tuples) are modelled.

    >>> t = Tup(src=1, dst=2)
    >>> t["src"]
    1
    >>> sorted(t.columns())
    ['dst', 'src']
    >>> t == Tup({"dst": 2, "src": 1})
    True
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: Mapping[str, Any] | None = None, **columns: Any):
        merged: dict[str, Any] = {}
        if mapping is not None:
            merged.update(mapping)
        merged.update(columns)
        for name in merged:
            if not isinstance(name, str) or not name:
                raise TypeError(f"column names must be non-empty strings, got {name!r}")
        self._items = tuple(sorted(merged.items()))
        self._hash = hash(self._items)

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, column: str) -> Any:
        for name, value in self._items:
            if name == column:
                return value
        raise KeyError(column)

    def __iter__(self) -> Iterator[str]:
        return (name for name, _ in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Tup):
            return self._items == other._items
        if isinstance(other, Mapping):
            return dict(self._items) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value!r}" for name, value in self._items)
        return f"Tup({inner})"

    # -- Relational helpers ------------------------------------------------

    def columns(self) -> tuple[str, ...]:
        """Return the (sorted) column names of this tuple."""
        return tuple(name for name, _ in self._items)

    def values_for(self, columns: tuple[str, ...]) -> tuple[Any, ...]:
        """Return the values of the given columns, in the given order."""
        as_dict = dict(self._items)
        try:
            return tuple(as_dict[c] for c in columns)
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(f"tuple {self!r} has no column {exc.args[0]!r}") from exc

    def project(self, columns: tuple[str, ...]) -> "Tup":
        """Return a new tuple restricted to ``columns``."""
        as_dict = dict(self._items)
        return Tup({c: as_dict[c] for c in columns})

    def drop(self, columns: tuple[str, ...] | str) -> "Tup":
        """Return a new tuple without the given column(s) (anti-projection)."""
        if isinstance(columns, str):
            columns = (columns,)
        dropped = set(columns)
        return Tup({c: v for c, v in self._items if c not in dropped})

    def rename(self, old: str, new: str) -> "Tup":
        """Return a new tuple where column ``old`` has been renamed ``new``."""
        as_dict = dict(self._items)
        if old not in as_dict:
            raise KeyError(old)
        value = as_dict.pop(old)
        as_dict[new] = value
        return Tup(as_dict)

    def merge(self, other: "Tup | Mapping[str, Any]") -> "Tup":
        """Merge two compatible tuples (they must agree on common columns).

        Raises ``ValueError`` when the tuples disagree on a shared column,
        mirroring the semantics of the natural join.
        """
        as_dict = dict(self._items)
        for name, value in dict(other).items():
            if name in as_dict and as_dict[name] != value:
                raise ValueError(
                    f"cannot merge tuples: column {name!r} has conflicting "
                    f"values {as_dict[name]!r} and {value!r}"
                )
            as_dict[name] = value
        return Tup(as_dict)

    def as_dict(self) -> dict[str, Any]:
        """Return a plain mutable dictionary copy of this tuple."""
        return dict(self._items)
