"""The storage engine underneath every evaluation layer.

Three ideas, reused by the centralized evaluator, the distributed plans,
the per-worker local engine and the Datalog baseline:

* **Trusted construction** — :meth:`Relation._from_trusted
  <repro.data.relation.Relation._from_trusted>` builds a relation from
  already-aligned rows without re-validating them.  Validation happens once
  at ingestion (``Relation(...)``, ``from_dicts``, :class:`RelationBuilder`);
  internal operators, whose outputs are correct by construction, skip it.

* **Cached hash indexes** — :class:`HashIndex` is a hash table from key
  values to rows.  Relations memoize the indexes built on them (they are
  immutable, so an index never goes stale), which turns the repeated joins
  of a semi-naive loop against a loop-invariant relation into pure probes:
  the build cost is paid once, on the first iteration.  The memoization
  lives *on the relation object*, so an index can never outlive its data —
  the stale-index-after-GC failure mode of an external ``id()``-keyed cache
  is impossible by construction.

* **Delta accumulation** — :class:`DeltaAccumulator` maintains the growing
  result of a fixpoint as one mutable set, so each iteration costs
  O(|produced|) instead of rebuilding the frozenset of the whole
  accumulated result (``result.union(new)``) every round.

A context-local switch (:func:`set_caching_enabled`,
:func:`compatibility_mode`) disables the index memoization and the delta
fast path, restoring the seed behaviour; ``benchmarks/
bench_storage_speedup.py`` uses it to show the speedup is real.  The
switch is a :class:`contextvars.ContextVar`, so flipping it in one thread
never changes the semantics under concurrently running worker threads.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any

from ..errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (relation.py imports us)
    from .relation import Relation

Row = tuple

#: Context-local switch for the index memoization and delta fast paths.
#: ``True`` in normal operation; benchmarks flip it to measure the
#: compatibility (seed-equivalent) mode.  A :class:`ContextVar` scopes the
#: flip to the flipping context: a benchmark or test entering
#: ``compatibility_mode()`` cannot change ``DeltaAccumulator`` semantics
#: under service worker threads that are mid-fixpoint (threads start from
#: the default context, so they observe the enabled default).
_caching_enabled: ContextVar[bool] = ContextVar("repro_storage_caching",
                                                default=True)


def caching_enabled() -> bool:
    """True when index memoization and delta accumulation are active."""
    return _caching_enabled.get()


def set_caching_enabled(enabled: bool) -> bool:
    """Set the caching switch in this context; returns the previous value."""
    previous = _caching_enabled.get()
    _caching_enabled.set(bool(enabled))
    return previous


@contextmanager
def compatibility_mode():
    """Run a block with index memoization and delta accumulation disabled.

    Inside the block every join rebuilds its hash table from scratch and
    fixpoint loops pay the full ``difference`` / ``union`` price per
    iteration — the storage behaviour of the seed, kept as a measurable
    baseline.
    """
    previous = set_caching_enabled(False)
    try:
        yield
    finally:
        set_caching_enabled(previous)


class HashIndex:
    """A hash table from key-position values to the rows carrying them.

    The index is representation-level: rows are plain aligned tuples and
    keys are tuples of the values at ``key_positions``.  Relations wrap it
    with column-name resolution (:meth:`Relation.index_on
    <repro.data.relation.Relation.index_on>`); the Datalog engine uses it
    directly on fact tuples and grows it incrementally with :meth:`extend`
    as new facts are derived.
    """

    __slots__ = ("key_positions", "buckets", "_count")

    def __init__(self, rows: Iterable[Row], key_positions: tuple[int, ...]):
        self.key_positions = key_positions
        buckets: dict[tuple, list[Row]] = {}
        count = 0
        for row in rows:
            key = tuple(row[i] for i in key_positions)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)
            count += 1
        self.buckets = buckets
        self._count = count

    def probe(self, key: tuple) -> list[Row]:
        """Return the rows whose key positions equal ``key`` (possibly []).

        A miss returns a **fresh** empty list: callers are free to mutate
        whatever ``probe`` hands back (the Datalog engine accumulates into
        probe results), and a shared empty-bucket singleton would let one
        such mutation corrupt every future empty probe process-wide.
        """
        bucket = self.buckets.get(key)
        return bucket if bucket is not None else []

    def __contains__(self, key: tuple) -> bool:
        return key in self.buckets

    def __len__(self) -> int:
        # Maintained at build/extend time: __len__ sits on the repr/metrics
        # hot path and must not walk every bucket per call.
        return self._count

    def extend(self, rows: Iterable[Row]) -> None:
        """Add rows to the index (delta maintenance for growing fact sets)."""
        buckets = self.buckets
        key_positions = self.key_positions
        count = 0
        for row in rows:
            key = tuple(row[i] for i in key_positions)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [row]
            else:
                bucket.append(row)
            count += 1
        self._count += count

    def __repr__(self) -> str:
        return (f"HashIndex(positions={self.key_positions}, "
                f"keys={len(self.buckets)}, rows={len(self)})")


class RelationBuilder:
    """A validating, mutable accumulator that builds a relation once.

    This is the ingestion-side companion of the trusted constructor: rows
    are checked as they are added (width for tuples, exact schema for
    mappings), then :meth:`build` materialises the relation through the
    zero-copy path — the frozenset is handed over, never re-validated.
    """

    def __init__(self, columns: Iterable[str]):
        ordered = tuple(sorted(columns))
        if len(set(ordered)) != len(ordered):
            raise SchemaError(f"duplicate column names in schema {ordered}")
        for name in ordered:
            if not isinstance(name, str) or not name:
                raise SchemaError(
                    f"column names must be non-empty strings, got {name!r}")
        self._columns = ordered
        self._width = len(ordered)
        self._rows: set[Row] = set()

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    def __len__(self) -> int:
        return len(self._rows)

    def add_row(self, row: Iterable[Any]) -> None:
        """Add one row given as values aligned with the sorted schema."""
        row = tuple(row)
        if len(row) != self._width:
            raise SchemaError(
                f"row {row!r} has {len(row)} values but schema "
                f"{self._columns} has {self._width} columns")
        self._rows.add(row)

    def add_mapping(self, mapping: Mapping[str, Any]) -> None:
        """Add one row given as a column-name mapping."""
        if set(mapping.keys()) != set(self._columns):
            raise SchemaError(
                f"row {dict(mapping)!r} does not match schema {self._columns}")
        self._rows.add(tuple(mapping[c] for c in self._columns))

    def update(self, rows: Iterable[Iterable[Any]]) -> None:
        """Add many aligned rows."""
        for row in rows:
            self.add_row(row)

    def build(self) -> "Relation":
        """Materialise the accumulated rows as an immutable relation."""
        from .relation import Relation
        return Relation._from_trusted(self._columns, frozenset(self._rows))


class DeltaAccumulator:
    """The growing result of a semi-naive fixpoint, maintained in place.

    The seed loop computed, per iteration::

        new = produced.difference(result)   # hashes |result| rows
        result = result.union(new)          # rebuilds a |result|-sized frozenset

    so iteration *i* paid O(|result_i|) even when the delta was tiny.  The
    accumulator keeps one mutable ``set`` for the whole loop::

        delta = accumulator.absorb(produced)   # O(|produced|)

    and materialises the final relation exactly once (:meth:`relation`).
    With caching disabled (:func:`compatibility_mode`) it falls back to the
    seed-cost path, which is what the storage benchmark measures against.
    """

    def __init__(self, seed: "Relation"):
        self._columns = seed.columns
        self._compat = not caching_enabled()
        if self._compat:
            self._accumulated = seed
        else:
            self._seen: set[Row] = set(seed.rows)

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    def __len__(self) -> int:
        if self._compat:
            return len(self._accumulated)
        return len(self._seen)

    def absorb(self, produced: "Relation") -> "Relation":
        """Fold one iteration's output in; return the genuinely new delta."""
        from .relation import Relation
        if produced.columns != self._columns:
            # Guard against raw row-set mixing across schemas: same-width
            # rows would merge silently, different widths would never
            # converge.  (The compat path gets this from difference().)
            raise SchemaError(
                f"cannot absorb schema {produced.columns} into accumulator "
                f"over {self._columns}")
        if self._compat:
            delta = produced.difference(self._accumulated)
            self._accumulated = self._accumulated.union(delta)
            return delta
        fresh = produced.rows - self._seen
        self._seen |= fresh
        return Relation._from_trusted(self._columns, frozenset(fresh))

    def relation(self) -> "Relation":
        """Materialise the accumulated result (one O(n) copy, at the end)."""
        from .relation import Relation
        if self._compat:
            return self._accumulated
        return Relation._from_trusted(self._columns, frozenset(self._seen))
