"""Set-semantics relations and the relational operators of mu-RA.

A :class:`Relation` is a set of tuples over a fixed schema (set of column
names).  Internally rows are stored as plain Python tuples of values aligned
with the *sorted* schema — this keeps equality, union and difference cheap
and makes the set semantics of mu-RA (no duplicates) automatic.

Storage discipline (see :mod:`repro.data.storage`): the validating
constructor runs only at ingestion.  Every operator builds its result
through the trusted zero-copy path (:meth:`Relation._from_trusted`) because
operator outputs are aligned by construction, and joins/antijoins probe
per-relation **memoized hash indexes** (:meth:`Relation.index_on`) — built
once, reused for every later join on the same columns, which is what makes
semi-naive loops against a loop-invariant relation cheap.

The class implements every operator of the mu-RA grammar except the fixpoint
(which is a property of terms, not of single relations):

* ``union`` (set union with duplicate elimination),
* ``natural_join``,
* ``antijoin`` (tuples of the left with no join partner on the right),
* ``filter`` (sigma),
* ``rename`` (rho),
* ``antiproject`` (column dropping, pi-tilde),
* plus ``difference``, ``intersection``, ``project`` which are useful
  internally (semi-naive evaluation, baselines, tests).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping
from typing import Any

from ..errors import SchemaError
from . import storage
from .predicates import Eq, Predicate
from .storage import HashIndex
from .tuples import Tup

Row = tuple


class Relation:
    """An immutable relation: a schema plus a set of rows.

    >>> edges = Relation.from_dicts([{"src": 1, "dst": 2}, {"src": 2, "dst": 3}])
    >>> edges.columns
    ('dst', 'src')
    >>> len(edges)
    2
    """

    __slots__ = ("_columns", "_rows", "_index_cache", "_columnar_cache",
                 "_frozen")

    def __init__(self, columns: Iterable[str], rows: Iterable[Row] = ()):  # noqa: D107
        ordered = tuple(sorted(columns))
        if len(set(ordered)) != len(ordered):
            raise SchemaError(f"duplicate column names in schema {ordered}")
        for name in ordered:
            if not isinstance(name, str) or not name:
                raise SchemaError(f"column names must be non-empty strings, got {name!r}")
        self._columns = ordered
        width = len(ordered)
        row_set = set()
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise SchemaError(
                    f"row {row!r} has {len(row)} values but schema {ordered} "
                    f"has {width} columns"
                )
            row_set.add(row)
        self._rows = frozenset(row_set)
        self._index_cache: dict[tuple[str, ...], HashIndex] | None = None
        self._columnar_cache = None

    # -- Constructors -----------------------------------------------------

    @classmethod
    def _from_trusted(cls, columns: tuple[str, ...],
                      rows: frozenset[Row] | Iterable[Row]) -> "Relation":
        """Zero-copy constructor for rows that are aligned by construction.

        ``columns`` must already be the sorted schema tuple and every row a
        tuple of matching width — which is true for the output of every
        operator below.  No validation or re-tupling happens; a frozenset is
        adopted as-is.  External data must go through the validating
        constructor (or :class:`~repro.data.storage.RelationBuilder`).
        """
        relation = cls.__new__(cls)
        relation._columns = columns
        relation._rows = rows if isinstance(rows, frozenset) else frozenset(rows)
        relation._index_cache = None
        relation._columnar_cache = None
        return relation

    def _freeze(self) -> None:
        """Mark this relation as snapshot-owned.

        The ``_frozen`` slot stays unset until a relation enters a
        :class:`~repro.data.snapshot.DatabaseSnapshot`; while the
        sanitizer (:mod:`repro.check.sanitizer`) is active, rebinding
        the row/column storage of a frozen relation is poisoned.  The
        memoized index/columnar caches are exempt — they are
        value-idempotent.
        """
        self._frozen = True

    @classmethod
    def from_dicts(cls, dicts: Iterable[Mapping[str, Any]],
                   columns: Iterable[str] | None = None) -> "Relation":
        """Build a relation from an iterable of mapping rows.

        When ``columns`` is not given, the schema is taken from the first
        row; every row must then have exactly that schema.
        """
        dicts = list(dicts)
        if columns is None:
            if not dicts:
                raise SchemaError(
                    "cannot infer a schema from an empty collection of rows; "
                    "pass columns= explicitly"
                )
            columns = tuple(sorted(dicts[0].keys()))
        ordered = tuple(sorted(columns))
        rows = []
        for mapping in dicts:
            if set(mapping.keys()) != set(ordered):
                raise SchemaError(
                    f"row {dict(mapping)!r} does not match schema {ordered}"
                )
            rows.append(tuple(mapping[c] for c in ordered))
        return cls(ordered, rows)

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[Any, Any]],
                   columns: tuple[str, str] = ("src", "dst")) -> "Relation":
        """Build a binary relation (e.g. a set of graph edges) from pairs."""
        first, second = columns
        ordered = tuple(sorted(columns))
        if ordered == (first, second):
            rows = [tuple(pair) for pair in pairs]
        else:
            rows = [(b, a) for a, b in pairs]
        return cls(ordered, rows)

    @classmethod
    def empty(cls, columns: Iterable[str]) -> "Relation":
        """Return the empty relation over the given schema."""
        return cls(columns, ())

    # -- Pickling ----------------------------------------------------------

    def __getstate__(self) -> tuple:
        # Indexes and columnar encodings are derived data: rebuilt on
        # demand, never shipped (a process-pool task would pay
        # serialization for tables it can rebuild in linear time).
        return (self._columns, self._rows)

    def __setstate__(self, state: tuple) -> None:
        self._columns, self._rows = state
        self._index_cache = None
        self._columnar_cache = None

    # -- Basic accessors ---------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """The (sorted) schema of the relation."""
        return self._columns

    @property
    def arity(self) -> int:
        """Number of columns (the analyzer's authoritative arity)."""
        return len(self._columns)

    @property
    def rows(self) -> frozenset[Row]:
        """The raw rows, aligned with :attr:`columns`."""
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[Tup]:
        columns = self._columns
        for row in self._rows:
            yield Tup(dict(zip(columns, row)))

    def __contains__(self, item: Mapping[str, Any] | Row) -> bool:
        if isinstance(item, Mapping):
            if set(item.keys()) != set(self._columns):
                return False
            item = tuple(item[c] for c in self._columns)
        return tuple(item) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._columns == other._columns and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._columns, self._rows))

    def __repr__(self) -> str:
        return f"Relation(columns={list(self._columns)}, rows={len(self._rows)})"

    def to_dicts(self) -> list[dict[str, Any]]:
        """Return all rows as dictionaries (sorted for deterministic output)."""
        columns = self._columns
        return [dict(zip(columns, row)) for row in sorted(self._rows, key=repr)]

    def to_pairs(self, first: str, second: str) -> set[tuple[Any, Any]]:
        """Return the rows as ``(first, second)`` value pairs."""
        for column in (first, second):
            if column not in self._columns:
                raise SchemaError(f"no column {column!r} in schema {self._columns}")
        i = self._columns.index(first)
        j = self._columns.index(second)
        return {(row[i], row[j]) for row in self._rows}

    def column_values(self, column: str) -> set[Any]:
        """Return the set of distinct values appearing in ``column``."""
        if column not in self._columns:
            raise SchemaError(f"no column {column!r} in schema {self._columns}")
        index = self._columns.index(column)
        return {row[index] for row in self._rows}

    # -- Hash indexes -------------------------------------------------------

    def index_on(self, key_columns: Iterable[str]) -> HashIndex:
        """Return a hash index of the rows on ``key_columns``.

        The index is memoized on the relation (immutable data, so it never
        goes stale): the first call builds it, every later call on the same
        columns returns the cached table.  Joins, antijoins and equality
        filters probe these indexes, so a loop-invariant relation is hashed
        once per key instead of once per iteration.  With caching disabled
        (:func:`repro.data.storage.compatibility_mode`) a fresh index is
        built on every call and nothing is retained.
        """
        key = tuple(key_columns)
        missing = set(key) - set(self._columns)
        if missing:
            raise SchemaError(f"cannot index on missing columns {sorted(missing)} "
                              f"(schema is {self._columns})")
        if not storage.caching_enabled():
            # Compatibility mode builds from scratch even when a memoized
            # index exists (warmed before the mode was entered), so the
            # measured baseline really pays the seed-era costs.
            position_of = {c: i for i, c in enumerate(self._columns)}
            return HashIndex(self._rows,
                             tuple(position_of[c] for c in key))
        cache = self._index_cache
        if cache is not None:
            index = cache.get(key)
            if index is not None:
                return index
        position_of = {c: i for i, c in enumerate(self._columns)}
        positions = tuple(position_of[c] for c in key)
        index = HashIndex(self._rows, positions)
        if cache is None:
            cache = self._index_cache = {}
        cache[key] = index
        return index

    def has_index(self, key_columns: Iterable[str]) -> bool:
        """True when an index on ``key_columns`` is already memoized.

        Always False in compatibility mode: the fast paths that key off an
        existing index (join build-side preference, the equality-filter
        probe) must not fire while caching is disabled.
        """
        if not storage.caching_enabled():
            return False
        cache = self._index_cache
        return cache is not None and tuple(key_columns) in cache

    # -- Columnar adoption ---------------------------------------------------

    def columnar(self, dictionary) -> "Any":
        """Return this relation dictionary-encoded as a ColumnarRelation.

        Memoized on the relation exactly like :meth:`index_on`: the first
        call against a given :class:`~repro.data.columnar.ValueDictionary`
        pays the encoding, every later call on the same dictionary returns
        the cached columns — which is what makes the loop-invariant
        relations of a semi-naive fixpoint free to re-adopt per iteration.
        The cache holds one entry (the dictionary of the current snapshot);
        encoding against a different dictionary replaces it.  With caching
        disabled (compatibility mode) nothing is retained.
        """
        from .columnar import ColumnarRelation
        if not storage.caching_enabled():
            return ColumnarRelation.from_relation(self, dictionary)
        cached = self._columnar_cache
        if cached is not None and cached.dictionary is dictionary:
            return cached
        encoded = ColumnarRelation.from_relation(self, dictionary)
        self._columnar_cache = encoded
        return encoded

    # -- mu-RA operators ----------------------------------------------------

    def union(self, other: "Relation") -> "Relation":
        """Set union; both relations must have the same schema."""
        self._require_same_schema(other, "union")
        return Relation._from_trusted(self._columns, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; both relations must have the same schema."""
        self._require_same_schema(other, "difference")
        return Relation._from_trusted(self._columns, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; both relations must have the same schema."""
        self._require_same_schema(other, "intersection")
        return Relation._from_trusted(self._columns, self._rows & other._rows)

    def natural_join(self, other: "Relation") -> "Relation":
        """Natural join on the common columns.

        When the schemas are disjoint this degenerates into a cartesian
        product, which matches the mu-RA semantics of the join operator.
        """
        common = tuple(c for c in self._columns if c in other._columns)
        out_columns = tuple(sorted(set(self._columns) | set(other._columns)))
        if not common:
            combine = _row_combiner(self._columns, other._columns, out_columns)
            right_rows = other._rows
            return Relation._from_trusted(out_columns, frozenset(
                combine(left, right)
                for left in self._rows for right in right_rows))

        # Hash join.  A side that already carries a memoized index on the
        # common columns is the build side regardless of size: probing a
        # prebuilt table beats rebuilding a smaller one, and in semi-naive
        # loops the indexed side is the loop-invariant relation.  Otherwise
        # build on the smaller side, as before.
        if other.has_index(common):
            build, probe = other, self
        elif self.has_index(common):
            build, probe = self, other
        elif len(self) <= len(other):
            build, probe = self, other
        else:
            build, probe = other, self
        index = build.index_on(common)
        probe_position_of = {c: i for i, c in enumerate(probe._columns)}
        probe_positions = tuple(probe_position_of[c] for c in common)
        combine = _row_combiner(probe._columns, build._columns, out_columns)
        rows = set()
        add = rows.add
        for row in probe._rows:
            key = tuple(row[i] for i in probe_positions)
            for match in index.probe(key):
                add(combine(row, match))
        return Relation._from_trusted(out_columns, rows)

    def antijoin(self, other: "Relation") -> "Relation":
        """Return the tuples of ``self`` with no join partner in ``other``.

        The comparison uses the common columns (as in the natural join); the
        result keeps the schema of ``self``.
        """
        common = tuple(c for c in self._columns if c in other._columns)
        if not common:
            # With no common column, any tuple of ``other`` matches: the
            # antijoin is empty unless ``other`` itself is empty.
            return self if not other._rows else Relation._from_trusted(
                self._columns, frozenset())
        position_of = {c: i for i, c in enumerate(self._columns)}
        self_positions = tuple(position_of[c] for c in common)
        if storage.caching_enabled():
            # Key membership via the memoized index: shared with joins on
            # the same columns and reused across iterations.
            present: HashIndex | set = other.index_on(common)
        else:
            other_key = _key_extractor(other._columns, common)
            present = {other_key(row) for row in other._rows}
        return Relation._from_trusted(self._columns, frozenset(
            row for row in self._rows
            if tuple(row[i] for i in self_positions) not in present))

    def filter(self, predicate: Predicate) -> "Relation":
        """Keep only the rows satisfying ``predicate`` (sigma operator)."""
        if isinstance(predicate, Eq) and self.has_index((predicate.column,)):
            # Equality filter on an already-indexed column: one probe
            # instead of a scan.  Indexes are never *built* for a filter —
            # a one-off scan is cheaper than hashing the whole relation.
            index = self.index_on((predicate.column,))
            return Relation._from_trusted(
                self._columns, frozenset(index.probe((predicate.value,))))
        check = predicate.compile(self._columns)
        return Relation._from_trusted(self._columns, frozenset(
            row for row in self._rows if check(row)))

    def filter_callable(self, fn: Callable[[dict[str, Any]], bool]) -> "Relation":
        """Filter with an arbitrary Python callable over dictionary rows."""
        columns = self._columns
        return Relation._from_trusted(columns, frozenset(
            row for row in self._rows if fn(dict(zip(columns, row)))))

    def rename(self, old: str, new: str) -> "Relation":
        """Rename column ``old`` to ``new`` (rho operator)."""
        if old not in self._columns:
            raise SchemaError(f"cannot rename missing column {old!r} "
                              f"(schema is {self._columns})")
        if new == old:
            return self
        if new in self._columns:
            raise SchemaError(f"cannot rename {old!r} to existing column {new!r}")
        new_columns = tuple(sorted(new if c == old else c for c in self._columns))
        position_of = {c: i for i, c in enumerate(self._columns)}
        mapping = [position_of[c if c != new else old] for c in new_columns]
        return Relation._from_trusted(new_columns, frozenset(
            tuple(row[i] for i in mapping) for row in self._rows))

    def rename_many(self, mapping: Mapping[str, str]) -> "Relation":
        """Apply several renamings at once (applied simultaneously)."""
        result_columns = []
        for column in self._columns:
            result_columns.append(mapping.get(column, column))
        if len(set(result_columns)) != len(result_columns):
            raise SchemaError(f"renaming {dict(mapping)} creates duplicate columns")
        ordered = tuple(sorted(result_columns))
        if ordered == self._columns and all(
                new == old for old, new in zip(self._columns, result_columns)):
            return self
        position_of = {c: i for i, c in enumerate(self._columns)}
        source_for = {new: old for old, new in zip(self._columns, result_columns)}
        indices = [position_of[source_for[c]] for c in ordered]
        return Relation._from_trusted(ordered, frozenset(
            tuple(row[i] for i in indices) for row in self._rows))

    def antiproject(self, columns: Iterable[str] | str) -> "Relation":
        """Drop the given column(s) (pi-tilde operator), deduplicating rows."""
        if isinstance(columns, str):
            columns = (columns,)
        dropped = set(columns)
        missing = dropped - set(self._columns)
        if missing:
            raise SchemaError(f"cannot drop missing columns {sorted(missing)} "
                              f"(schema is {self._columns})")
        if not dropped:
            return self
        kept = tuple(c for c in self._columns if c not in dropped)
        position_of = {c: i for i, c in enumerate(self._columns)}
        indices = [position_of[c] for c in kept]
        return Relation._from_trusted(kept, frozenset(
            tuple(row[i] for i in indices) for row in self._rows))

    def project(self, columns: Iterable[str]) -> "Relation":
        """Keep only the given columns (classic projection, deduplicated)."""
        kept = tuple(sorted(columns))
        missing = set(kept) - set(self._columns)
        if missing:
            raise SchemaError(f"cannot project on missing columns {sorted(missing)} "
                              f"(schema is {self._columns})")
        if kept == self._columns:
            return self
        position_of = {c: i for i, c in enumerate(self._columns)}
        indices = [position_of[c] for c in kept]
        return Relation._from_trusted(kept, frozenset(
            tuple(row[i] for i in indices) for row in self._rows))

    # -- Partitioning helpers (used by the distributed runtime) -------------

    def split_round_robin(self, parts: int) -> list["Relation"]:
        """Split the relation into ``parts`` chunks of near-equal size."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        buckets: list[list[Row]] = [[] for _ in range(parts)]
        for index, row in enumerate(sorted(self._rows, key=repr)):
            buckets[index % parts].append(row)
        return [Relation._from_trusted(self._columns, frozenset(bucket))
                for bucket in buckets]

    def split_by_columns(self, columns: Iterable[str], parts: int) -> list["Relation"]:
        """Hash-partition the relation on the given columns.

        Two rows that agree on ``columns`` always land in the same part,
        which is the property required by the stable-column partitioning of
        the paper (Section III-B).
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        key_columns = tuple(sorted(columns))
        missing = set(key_columns) - set(self._columns)
        if missing:
            raise SchemaError(f"cannot partition on missing columns {sorted(missing)}")
        extract = _key_extractor(self._columns, key_columns)
        buckets: list[list[Row]] = [[] for _ in range(parts)]
        for row in self._rows:
            buckets[hash(extract(row)) % parts].append(row)
        return [Relation._from_trusted(self._columns, frozenset(bucket))
                for bucket in buckets]

    # -- Internal helpers ----------------------------------------------------

    def _require_same_schema(self, other: "Relation", operation: str) -> None:
        if self._columns != other._columns:
            raise SchemaError(
                f"{operation} requires identical schemas, got "
                f"{self._columns} and {other._columns}"
            )


def _key_extractor(schema: tuple[str, ...], key_columns: tuple[str, ...]):
    """Return a function extracting the values of ``key_columns`` from a row."""
    position_of = {c: i for i, c in enumerate(schema)}
    indices = tuple(position_of[c] for c in key_columns)
    return lambda row: tuple(row[i] for i in indices)


def _row_combiner(left_schema: tuple[str, ...], right_schema: tuple[str, ...],
                  out_schema: tuple[str, ...]):
    """Return a function merging a left row and a right row into an output row.

    Columns present in both schemas take their value from the left row; the
    caller guarantees (via the join key) that both sides agree on them.
    """
    left_position = {c: i for i, c in enumerate(left_schema)}
    right_position = {c: i for i, c in enumerate(right_schema)}
    plan: list[tuple[int, int]] = []
    for column in out_schema:
        position = left_position.get(column)
        if position is not None:
            plan.append((0, position))
        else:
            plan.append((1, right_position[column]))
    return lambda left, right: tuple(
        left[i] if side == 0 else right[i] for side, i in plan
    )
