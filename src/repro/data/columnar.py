"""Columnar relation layout: dictionary-encoded ids in integer columns.

The row engine stores a relation as a frozenset of value tuples and pays a
per-row ``tuple(row[i] for i in ...)`` comprehension in every join, rename
and projection of every semi-naive iteration.  This module provides the
columnar substrate the execution kernels (:mod:`repro.algebra.kernels`)
run on instead:

* :class:`ValueDictionary` — an interning dictionary mapping arbitrary
  (hashable) node ids to small dense integers.  One dictionary is shared
  per snapshot (via :meth:`DatabaseSnapshot.derived
  <repro.data.snapshot.DatabaseSnapshot.derived>`), so every relation of
  one graph agrees on the codes and joins compare plain ``int``s.
* :class:`ColumnarRelation` — a relation as parallel :mod:`array`-module
  integer columns aligned with the sorted schema.  Adoption from a
  :class:`~repro.data.relation.Relation` is memoized on the relation
  object exactly like :meth:`Relation.index_on
  <repro.data.relation.Relation.index_on>` (see
  :meth:`Relation.columnar <repro.data.relation.Relation.columnar>`), so
  a loop-invariant relation is encoded once, not once per iteration.
* :class:`ColumnarBatch` — the transient column set kernels pass between
  operators; renames and projections on it are column-list permutations
  with no per-row work at all.
* :class:`ColumnarDeltaAccumulator` — the
  :class:`~repro.data.storage.DeltaAccumulator`-shaped delta path of the
  columnar fixpoint loop: dedup via packed code-tuple sets
  (``zip(*arrays)`` runs at C speed), one decode to a ``Relation`` at the
  very end.

A context-local escape hatch mirrors :mod:`repro.data.storage`:
:func:`row_mode` pins the row engine (the differential harness proves both
engines agree), and compatibility mode implies it — results returned to
callers are plain ``Relation`` objects either way, so cache keys,
snapshots and maintained views never see codes.
"""

from __future__ import annotations

import time
from array import array
from collections.abc import Iterable
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any

from ..obs.metrics import get_registry
from ..check.sanitizer import ordered_lock
from . import storage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (relation.py imports us)
    from .relation import Relation

#: Snapshot ``derived()`` key under which the per-snapshot dictionary lives.
SNAPSHOT_DICTIONARY_KEY = "columnar_value_dictionary"

#: Context-local switch for the columnar execution kernels.  ``True`` in
#: normal operation; :func:`row_mode` flips it so benchmarks and the
#: differential harness can pin the row engine.  Like the storage switch,
#: a ContextVar scopes the flip to the flipping context only.
_columnar_enabled: ContextVar[bool] = ContextVar("repro_columnar_enabled",
                                                default=True)


def columnar_enabled() -> bool:
    """True when fixpoint loops may run on the columnar kernels.

    Compatibility mode (:func:`repro.data.storage.compatibility_mode`)
    implies the row engine: it measures the seed-era behaviour, and the
    columnar path is memoization all the way down.
    """
    return _columnar_enabled.get() and storage.caching_enabled()


def set_columnar_enabled(enabled: bool) -> bool:
    """Set the columnar switch in this context; returns the previous value."""
    previous = _columnar_enabled.get()
    _columnar_enabled.set(bool(enabled))
    return previous


@contextmanager
def row_mode():
    """Run a block on the row engine, columnar kernels disabled.

    Index memoization and delta accumulation stay on — this is "current
    behaviour exactly", not compatibility mode.
    """
    previous = set_columnar_enabled(False)
    try:
        yield
    finally:
        set_columnar_enabled(previous)


class ValueDictionary:
    """Interning dictionary from node ids to dense integer codes.

    ``encode_column`` is the hot path: it appends codes for a whole column
    of values, taking the lock only when a *new* value must be interned —
    two threads racing to intern different values would otherwise both
    claim ``len(values)`` as their code.  Reads (``lookup``, ``decode``)
    are lock-free: codes are append-only and never reassigned.
    """

    __slots__ = ("_codes", "values", "_lock")

    def __init__(self) -> None:
        self._codes: dict[Any, int] = {}
        #: Code -> value, positionally.  Public so kernels can decode with
        #: ``map(values.__getitem__, column)`` — no method call per cell.
        self.values: list[Any] = []
        self._lock = ordered_lock("columnar.dictionary")

    def __len__(self) -> int:
        return len(self.values)

    def encode(self, value: Any) -> int:
        """Return the code of ``value``, interning it if new."""
        code = self._codes.get(value)
        if code is None:
            with self._lock:
                code = self._codes.get(value)
                if code is None:
                    code = len(self.values)
                    self.values.append(value)
                    self._codes[value] = code
        return code

    def encode_column(self, values: Iterable[Any]) -> array:
        """Encode one column of values into an ``array('q')`` of codes."""
        codes = self._codes
        get = codes.get
        out: list[int] = []
        append = out.append
        for value in values:
            code = get(value)
            if code is None:
                with self._lock:
                    code = codes.get(value)
                    if code is None:
                        code = len(self.values)
                        self.values.append(value)
                        codes[value] = code
            append(code)
        return array("q", out)

    def lookup(self, value: Any) -> int | None:
        """Return the code of ``value`` or None, without interning."""
        return self._codes.get(value)

    def decode(self, code: int) -> Any:
        return self.values[code]

    # -- Pickling (locks do not travel) --------------------------------------

    def __getstate__(self) -> list[Any]:
        return self.values

    def __setstate__(self, values: list[Any]) -> None:
        self.values = values
        self._codes = {value: code for code, value in enumerate(values)}
        self._lock = ordered_lock("columnar.dictionary")

    def __repr__(self) -> str:
        return f"ValueDictionary(values={len(self.values)})"


def snapshot_dictionary(database) -> ValueDictionary:
    """The shared per-snapshot dictionary, or a fresh one for plain dicts.

    Immutable snapshots memoize the dictionary under ``derived()``, so
    every execution against the same snapshot (and every relation's
    memoized columnar encoding) agrees on the codes.  A plain mutable
    mapping has no safe place to hang shared state, so it gets a private
    dictionary per call — correct, just without cross-execution reuse.
    """
    derived = getattr(database, "derived", None)
    if derived is not None:
        return derived(SNAPSHOT_DICTIONARY_KEY, lambda _: ValueDictionary())
    return ValueDictionary()


class ColumnarBatch:
    """A transient set of parallel code columns (kernels' working type)."""

    __slots__ = ("columns", "arrays")

    def __init__(self, columns: tuple[str, ...], arrays: list[array]):
        self.columns = columns
        self.arrays = arrays

    def __len__(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0

    def __repr__(self) -> str:
        return f"ColumnarBatch(columns={list(self.columns)}, rows={len(self)})"


class ColumnarRelation:
    """A relation as dictionary-encoded integer columns.

    Columns are aligned with the sorted schema, exactly like ``Relation``
    rows, so adopting and releasing a relation never reorders anything.
    Key indexes (code -> row positions) are memoized per key layout, the
    columnar analogue of :class:`~repro.data.storage.HashIndex`.
    """

    __slots__ = ("columns", "arrays", "dictionary", "_key_index_cache")

    def __init__(self, columns: tuple[str, ...], arrays: list[array],
                 dictionary: ValueDictionary):
        self.columns = columns
        self.arrays = arrays
        self.dictionary = dictionary
        self._key_index_cache: dict[tuple[int, ...], dict] | None = None

    @classmethod
    def from_relation(cls, relation: "Relation",
                      dictionary: ValueDictionary) -> "ColumnarRelation":
        """Encode a relation; the cost is reported as ``encode_ms``."""
        started = time.perf_counter()
        rows = relation.rows
        if rows:
            arrays = [dictionary.encode_column(column)
                      for column in zip(*rows)]
        else:
            arrays = [array("q") for _ in relation.columns]
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        get_registry().counter("repro_columnar_encode_ms_total").inc(elapsed_ms)
        return cls(relation.columns, arrays, dictionary)

    def __len__(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0

    def batch(self) -> ColumnarBatch:
        """A zero-copy batch view over the same arrays."""
        return ColumnarBatch(self.columns, self.arrays)

    def to_relation(self) -> "Relation":
        """Decode back to a row relation (column-wise, mostly C speed)."""
        from .relation import Relation
        if not self.arrays or not len(self.arrays[0]):
            return Relation.empty(self.columns)
        values = self.dictionary.values
        if len(self.arrays) == 2:
            # The common graph case: one pass beats the transposes below.
            rows = frozenset((values[x], values[y])
                             for x, y in zip(*self.arrays))
        else:
            decoded = [tuple(map(values.__getitem__, column))
                       for column in self.arrays]
            rows = frozenset(zip(*decoded))
        return Relation._from_trusted(self.columns, rows)

    def index_on(self, positions: tuple[int, ...]) -> dict:
        """Code -> row-position index, memoized per key layout.

        Single-column keys map the bare ``int`` code (the common case:
        graph joins are on one node column); wider keys map code tuples.
        """
        cache = self._key_index_cache
        if cache is not None:
            index = cache.get(positions)
            if index is not None:
                return index
        index: dict = {}
        if len(positions) == 1:
            column = self.arrays[positions[0]]
            for row, code in enumerate(column):
                bucket = index.get(code)
                if bucket is None:
                    index[code] = [row]
                else:
                    bucket.append(row)
        else:
            key_columns = [self.arrays[p] for p in positions]
            for row, key in enumerate(zip(*key_columns)):
                bucket = index.get(key)
                if bucket is None:
                    index[key] = [row]
                else:
                    bucket.append(row)
        if storage.caching_enabled():
            if cache is None:
                cache = self._key_index_cache = {}
            cache[positions] = index
        return index

    def has_index(self, positions: tuple[int, ...]) -> bool:
        cache = self._key_index_cache
        return cache is not None and positions in cache

    # -- Pickling (index caches are derived data) -----------------------------

    def __getstate__(self) -> tuple:
        return (self.columns, self.arrays, self.dictionary)

    def __setstate__(self, state: tuple) -> None:
        self.columns, self.arrays, self.dictionary = state
        self._key_index_cache = None

    def __repr__(self) -> str:
        return (f"ColumnarRelation(columns={list(self.columns)}, "
                f"rows={len(self)})")


class ColumnarDeltaAccumulator:
    """The columnar twin of :class:`~repro.data.storage.DeltaAccumulator`.

    Maintains the growing fixpoint result as one set of packed code
    tuples.  ``absorb`` folds an iteration's output in and returns the
    genuinely-new delta as a batch; ``relation`` decodes the accumulated
    set to a row ``Relation`` exactly once, at the end.
    """

    __slots__ = ("columns", "_seen")

    def __init__(self, seed: ColumnarBatch):
        self.columns = seed.columns
        self._seen: set[tuple[int, ...]] = set(zip(*seed.arrays))

    def __len__(self) -> int:
        return len(self._seen)

    def absorb(self, produced: ColumnarBatch) -> ColumnarBatch:
        """Fold one iteration's output in; return the new delta batch.

        Set construction, difference and union all run inside the C set
        implementation — the only per-row Python here is the ``zip``
        transposes in and out of the packed representation.
        """
        fresh = set(zip(*produced.arrays))
        fresh -= self._seen
        if not fresh:
            return ColumnarBatch(self.columns,
                                 [array("q") for _ in self.columns])
        self._seen |= fresh
        return ColumnarBatch(self.columns,
                             [array("q", column) for column in zip(*fresh)])

    def relation(self, dictionary: ValueDictionary) -> "Relation":
        """Decode the accumulated result into a row relation, once."""
        from .relation import Relation
        if not self._seen:
            return Relation.empty(self.columns)
        values = dictionary.values
        if len(self.columns) == 2:
            # The common graph case: one pass beats the transposes below.
            rows = frozenset((values[x], values[y]) for x, y in self._seen)
        else:
            decoded = [tuple(map(values.__getitem__, column))
                       for column in zip(*self._seen)]
            rows = frozenset(zip(*decoded))
        return Relation._from_trusted(self.columns, rows)
