"""Minimal HTTP/1.1 wire protocol over asyncio streams (stdlib only).

The serving tier speaks plain HTTP/1.1 so any client — ``curl``, a
browser, a Prometheus scraper, :class:`repro.net.client.ServiceClient` —
can talk to it without the repo growing a framework dependency.  This
module owns the byte-level concerns and nothing else:

* :func:`read_request` — parse one request (request line, headers,
  ``Content-Length`` body) from a :class:`asyncio.StreamReader` into an
  :class:`HttpRequest`; malformed input raises
  :class:`~repro.errors.ProtocolError` with the HTTP status the server
  should answer with (400/411/413/431/501),
* :func:`send_response` / :func:`render_response` — one buffered response
  with ``Content-Length`` framing and keep-alive accounting,
* :class:`ChunkedResponseWriter` — ``Transfer-Encoding: chunked`` for the
  streaming endpoint: the result is written batch by batch without the
  server ever knowing the total size up front,
* :func:`json_body` / :data:`STATUS_REASONS` — small shared helpers.

Limits are deliberate: request heads are bounded by the stream reader's
buffer limit, bodies by ``max_body_bytes``, and chunked *requests* are
rejected (501) — queries and mutations are small JSON documents; only
responses stream.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

from ..errors import ProtocolError

#: Default bound on request bodies (JSON queries and edge batches).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Reason phrases for every status the serving tier emits.
STATUS_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    410: "Gone",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_CRLF = b"\r\n"
_HEAD_END = b"\r\n\r\n"


@dataclass
class HttpRequest:
    """One parsed request: the shape the router and handlers consume."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    #: HTTP version token of the request line ("HTTP/1.1").
    version: str = "HTTP/1.1"
    _json: object = field(default=None, repr=False)

    def header(self, name: str, default: str | None = None) -> str | None:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection.

        HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
        HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
        """
        connection = (self.header("connection") or "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> dict:
        """The body decoded as a JSON object (empty body = ``{}``)."""
        if self._json is None:
            if not self.body:
                self._json = {}
            else:
                try:
                    decoded = json.loads(self.body)
                except (ValueError, UnicodeDecodeError) as error:
                    raise ProtocolError(
                        f"request body is not valid JSON: {error}") from None
                if not isinstance(decoded, dict):
                    raise ProtocolError(
                        "request body must be a JSON object")
                self._json = decoded
        return self._json

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.target})"


async def read_request(reader: asyncio.StreamReader, *,
                       max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                       ) -> HttpRequest | None:
    """Read and parse one request; ``None`` on a clean end-of-stream.

    Raises :class:`~repro.errors.ProtocolError` (with the right HTTP
    ``status``) for anything malformed, truncated or over limit.
    """
    try:
        head = await reader.readuntil(_HEAD_END)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between requests
        raise ProtocolError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request head too large",
                            status=431) from None
    try:
        text = head[:-len(_HEAD_END)].decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes any byte
        raise ProtocolError("undecodable request head") from None
    lines = text.split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3:
        raise ProtocolError(f"malformed request line: {lines[0]!r}")
    method, target, version = request_line
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported HTTP version {version!r}",
                            status=501)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line: {line!r}")
        key = name.strip().lower()
        value = value.strip()
        headers[key] = f"{headers[key]},{value}" if key in headers else value
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked request bodies are not supported",
                            status=501)
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(
                f"bad Content-Length {length_header!r}") from None
        if length < 0:
            raise ProtocolError(f"bad Content-Length {length_header!r}")
        if length > max_body_bytes:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes} byte limit", status=413)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError("truncated request body") from None
    elif method in ("POST", "PUT", "PATCH"):
        raise ProtocolError(f"{method} requires Content-Length", status=411)
    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query={key: value for key, value in parse_qsl(split.query)},
        headers=headers,
        body=body,
        version=version,
    )


def json_body(payload: object) -> bytes:
    """Canonical JSON encoding of a response payload."""
    return json.dumps(payload, sort_keys=True, default=str).encode("utf-8")


def render_response(status: int, body: bytes = b"", *,
                    content_type: str = "application/json",
                    headers: tuple[tuple[str, str], ...] = (),
                    keep_alive: bool = True) -> bytes:
    """Serialize one complete (Content-Length framed) response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if body or status not in (204,):
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    lines.extend(f"{name}: {value}" for name, value in headers)
    head = "\r\n".join(lines).encode("latin-1") + _HEAD_END
    return head + body


async def send_response(writer: asyncio.StreamWriter, status: int,
                        body: bytes = b"", *,
                        content_type: str = "application/json",
                        headers: tuple[tuple[str, str], ...] = (),
                        keep_alive: bool = True) -> int:
    """Write one buffered response; returns the bytes written."""
    payload = render_response(status, body, content_type=content_type,
                              headers=headers, keep_alive=keep_alive)
    writer.write(payload)
    await writer.drain()
    return len(payload)


class ChunkedResponseWriter:
    """A ``Transfer-Encoding: chunked`` response, written piece by piece.

    The streaming endpoint writes one JSON line per chunk, so a client
    can consume batches as they arrive and the server never buffers the
    whole result::

        chunked = ChunkedResponseWriter(writer, headers=...)
        await chunked.start()
        await chunked.write_json({"rows": [...]})
        await chunked.finish()
    """

    def __init__(self, writer: asyncio.StreamWriter, *,
                 status: int = 200,
                 content_type: str = "application/x-ndjson",
                 headers: tuple[tuple[str, str], ...] = (),
                 keep_alive: bool = True):
        self._writer = writer
        self._status = status
        self._content_type = content_type
        self._headers = headers
        self._keep_alive = keep_alive
        self.bytes_written = 0
        self.started = False
        self.finished = False

    async def start(self) -> None:
        reason = STATUS_REASONS.get(self._status, "Unknown")
        lines = [
            f"HTTP/1.1 {self._status} {reason}",
            f"Content-Type: {self._content_type}",
            "Transfer-Encoding: chunked",
            f"Connection: {'keep-alive' if self._keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in self._headers)
        head = "\r\n".join(lines).encode("latin-1") + _HEAD_END
        self._writer.write(head)
        await self._writer.drain()
        self.bytes_written += len(head)
        self.started = True

    async def write(self, data: bytes) -> None:
        if not data:
            return  # a zero-length chunk would terminate the stream
        chunk = f"{len(data):x}".encode("latin-1") + _CRLF + data + _CRLF
        self._writer.write(chunk)
        await self._writer.drain()
        self.bytes_written += len(chunk)

    async def write_json(self, payload: object) -> None:
        """One newline-terminated JSON document as one chunk."""
        await self.write(json_body(payload) + b"\n")

    async def finish(self) -> None:
        terminator = b"0" + _CRLF + _CRLF
        self._writer.write(terminator)
        await self._writer.drain()
        self.bytes_written += len(terminator)
        self.finished = True
