"""Tenant model for the HTTP serving tier.

A *tenant* is an auth token mapped to a set of named graphs plus the
quotas the server enforces on its behalf:

* a **token bucket** rate limit (``rate_limit`` requests/second refill,
  ``burst`` capacity) — breaches answer 429 with a ``Retry-After`` hint,
* a **max-in-flight** cap — how many of the tenant's requests may be
  inside the service at once, independent of the rate.

:class:`TenantRegistry` owns the lookup (``Authorization: Bearer <token>``
→ :class:`Tenant`), graph authorization, and quota admission.  A server
constructed without a registry runs *open*: every request maps to a
single anonymous tenant with no token and no quotas, which keeps local
development and the examples friction-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import (
    AuthenticationError,
    AuthorizationError,
    QuotaExceededError,
)
from ..check.sanitizer import ordered_lock

#: Graph allowlist wildcard: the tenant may address every graph.
ALL_GRAPHS = "*"


@dataclass(frozen=True)
class Tenant:
    """One tenant: identity, graph mapping and quota configuration."""

    name: str
    token: str | None = None
    #: Graph names the tenant may address (``ALL_GRAPHS`` = everything).
    graphs: frozenset[str] = frozenset({ALL_GRAPHS})
    #: Graph used when a request does not name one.
    default_graph: str = "default"
    #: Sustained requests/second (``None`` = unlimited).
    rate_limit: float | None = None
    #: Bucket capacity; defaults to ``max(1, 2 * rate_limit)``.
    burst: float | None = None
    #: Concurrent requests allowed inside the service (``None`` = unlimited).
    max_in_flight: int | None = None

    def allows_graph(self, graph: str) -> bool:
        return ALL_GRAPHS in self.graphs or graph in self.graphs

    def resolve_graph(self, graph: str | None) -> str:
        """Authorize and resolve the graph a request addresses."""
        target = graph if graph is not None else self.default_graph
        if not self.allows_graph(target):
            raise AuthorizationError(
                f"tenant {self.name!r} is not mapped to graph {target!r}")
        return target


class TokenBucket:
    """Classic token bucket on the monotonic clock, thread-safe.

    ``try_acquire`` either takes one token or returns the seconds until
    one becomes available (the ``Retry-After`` the server sends back).
    """

    def __init__(self, rate: float, burst: float, *,
                 clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = ordered_lock("tenancy.bucket")

    def try_acquire(self) -> float:
        """Take one token; returns 0.0 on success, else seconds to wait."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


class _TenantState:
    """Mutable per-tenant counters guarded by the registry lock."""

    __slots__ = ("bucket", "in_flight")

    def __init__(self, tenant: Tenant, clock):
        self.bucket = None
        if tenant.rate_limit is not None:
            burst = (tenant.burst if tenant.burst is not None
                     else max(1.0, 2.0 * tenant.rate_limit))
            self.bucket = TokenBucket(tenant.rate_limit, burst, clock=clock)
        self.in_flight = 0


@dataclass
class _Admission:
    """Context manager releasing a tenant's in-flight slot on exit."""

    registry: TenantRegistry
    tenant: Tenant
    _released: bool = field(default=False, repr=False)

    def __enter__(self) -> _Admission:
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.registry._release(self.tenant)


#: The tenant every request maps to when the server runs without a registry.
ANONYMOUS = Tenant(name="anonymous")


class TenantRegistry:
    """Token → tenant lookup plus quota enforcement.

    The registry is shared by every connection handler; all counter
    updates happen under one lock (quota checks are tiny compared to
    query execution).
    """

    def __init__(self, tenants: list[Tenant] | None = None, *,
                 clock=time.monotonic):
        self._clock = clock
        self._lock = ordered_lock("tenancy.registry")
        self._by_token: dict[str, Tenant] = {}
        self._states: dict[str, _TenantState] = {}
        for tenant in tenants or ():
            self.register(tenant)

    def register(self, tenant: Tenant) -> None:
        if tenant.token is None:
            raise ValueError(f"tenant {tenant.name!r} has no token")
        with self._lock:
            if tenant.token in self._by_token:
                raise ValueError(
                    f"token already registered for tenant "
                    f"{self._by_token[tenant.token].name!r}")
            self._by_token[tenant.token] = tenant
            self._states[tenant.name] = _TenantState(tenant, self._clock)

    @property
    def tenants(self) -> list[Tenant]:
        with self._lock:
            return list(self._by_token.values())

    def authenticate(self, authorization: str | None) -> Tenant:
        """Resolve an ``Authorization`` header to a tenant.

        Accepts ``Bearer <token>`` (case-insensitive scheme) or a bare
        token for curl-friendliness.
        """
        if not authorization:
            raise AuthenticationError("missing Authorization header")
        scheme, _, credential = authorization.partition(" ")
        token = credential.strip() if credential else scheme.strip()
        if credential and scheme.lower() != "bearer":
            raise AuthenticationError(
                f"unsupported Authorization scheme {scheme!r}")
        with self._lock:
            tenant = self._by_token.get(token)
        if tenant is None:
            raise AuthenticationError("unknown auth token")
        return tenant

    def admit(self, tenant: Tenant) -> _Admission:
        """Charge one request against the tenant's quotas.

        Raises :class:`~repro.errors.QuotaExceededError` (with
        ``retry_after``) on breach; otherwise returns a context manager
        that must be exited when the request finishes.
        """
        with self._lock:
            state = self._states.get(tenant.name)
            if state is None:  # anonymous / unregistered: no quotas
                return _Admission(self, tenant)
            if (tenant.max_in_flight is not None
                    and state.in_flight >= tenant.max_in_flight):
                raise QuotaExceededError(
                    f"tenant {tenant.name!r} already has {state.in_flight} "
                    f"requests in flight (max {tenant.max_in_flight})",
                    retry_after=0.05)
            bucket = state.bucket
            state.in_flight += 1
        if bucket is not None:
            wait = bucket.try_acquire()
            if wait > 0.0:
                self._release(tenant)
                raise QuotaExceededError(
                    f"tenant {tenant.name!r} exceeded "
                    f"{tenant.rate_limit}/s rate limit",
                    retry_after=wait)
        return _Admission(self, tenant)

    def _release(self, tenant: Tenant) -> None:
        with self._lock:
            state = self._states.get(tenant.name)
            if state is not None and state.in_flight > 0:
                state.in_flight -= 1

    def in_flight(self, tenant: Tenant) -> int:
        with self._lock:
            state = self._states.get(tenant.name)
            return state.in_flight if state is not None else 0

    @classmethod
    def from_config(cls, config: list[dict]) -> TenantRegistry:
        """Build a registry from a JSON-friendly list of tenant dicts.

        Each entry: ``{"name": ..., "token": ..., "graphs": [...],
        "default_graph": ..., "rate_limit": ..., "burst": ...,
        "max_in_flight": ...}`` — only ``name`` and ``token`` required.
        """
        tenants = []
        for entry in config:
            graphs = entry.get("graphs")
            tenants.append(Tenant(
                name=entry["name"],
                token=entry["token"],
                graphs=(frozenset(graphs) if graphs
                        else frozenset({ALL_GRAPHS})),
                default_graph=entry.get("default_graph", "default"),
                rate_limit=entry.get("rate_limit"),
                burst=entry.get("burst"),
                max_in_flight=entry.get("max_in_flight"),
            ))
        return cls(tenants)
