"""``python -m repro.net.serve`` — boot the HTTP serving tier.

Builds a :class:`~repro.service.QueryService` (over a demo dataset or an
empty default graph), wraps it in an
:class:`~repro.net.server.HttpServer`, installs the SIGTERM/SIGINT
drain handlers and serves until shut down::

    python -m repro.net.serve --demo --port 8080

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/v1/query \\
        -d '{"query": "?x,?y <- ?x knows+ ?y", "graph": "default"}'

With ``--tenants tenants.json`` (a JSON list of tenant entries, see
:meth:`~repro.net.tenancy.TenantRegistry.from_config`) every ``/v1/*``
request must carry ``Authorization: Bearer <token>``.  ``--port-file``
writes the bound port once the listener is up — how the CI smoke test
and scripts find a server started with ``--port 0``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

from ..data.graph import LabeledGraph
from ..obs.logs import configure_logging
from ..service import QueryService
from ..session import Session
from .server import DEFAULT_DRAIN_GRACE, HttpServer
from .tenancy import TenantRegistry

#: The ``--demo`` dataset: a small social graph (default) plus a second
#: attached citation graph, so multi-graph requests work out of the box.
_DEMO_SOCIAL = [
    ("alice", "knows", "bob"),
    ("bob", "knows", "carol"),
    ("carol", "knows", "dave"),
    ("dave", "knows", "erin"),
    ("alice", "likes", "carol"),
    ("erin", "knows", "alice"),
]
_DEMO_CITATIONS = [
    ("p1", "cites", "p2"),
    ("p2", "cites", "p3"),
    ("p3", "cites", "p4"),
    ("p1", "cites", "p3"),
]


def build_session(demo: bool) -> Session:
    graph = LabeledGraph(name="default")
    if demo:
        graph.add_edges(_DEMO_SOCIAL)
    session = Session(graph)
    if demo:
        citations = LabeledGraph(name="citations")
        citations.add_edges(_DEMO_CITATIONS)
        session.attach("citations", citations)
    return session


def build_server(args: argparse.Namespace) -> HttpServer:
    session = build_session(args.demo)
    service = QueryService(session,
                           max_in_flight=args.max_in_flight,
                           queue_capacity=args.queue_capacity,
                           default_timeout=args.default_timeout,
                           strict=args.strict)
    tenants = None
    if args.tenants is not None:
        config = json.loads(pathlib.Path(args.tenants).read_text())
        tenants = TenantRegistry.from_config(config)
    return HttpServer(service, host=args.host, port=args.port,
                      tenants=tenants, drain_grace=args.drain_grace,
                      own_service=True)


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.serve",
        description="Serve a repro QueryService over HTTP.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listen port (0 = ephemeral; see --port-file)")
    parser.add_argument("--demo", action="store_true",
                        help="preload the demo graphs (default + citations)")
    parser.add_argument("--tenants", default=None, metavar="FILE",
                        help="JSON tenant config; enables auth + quotas")
    parser.add_argument("--port-file", default=None, metavar="FILE",
                        help="write the bound port here once listening")
    parser.add_argument("--drain-grace", type=float,
                        default=DEFAULT_DRAIN_GRACE,
                        help="seconds to wait for in-flight requests on "
                             "SIGTERM")
    parser.add_argument("--max-in-flight", type=int, default=8,
                        help="service worker threads")
    parser.add_argument("--queue-capacity", type=int, default=64,
                        help="admission queue depth")
    parser.add_argument("--default-timeout", type=float, default=None,
                        help="default per-query deadline (seconds)")
    parser.add_argument("--strict", action="store_true",
                        help="statically analyze queries on admission and "
                             "reject ones with analyzer errors (structured "
                             "diagnostics in the response)")
    parser.add_argument("--log-level", default="INFO")
    return parser.parse_args(argv)


async def _amain(args: argparse.Namespace) -> None:
    server = build_server(args)
    server.install_signal_handlers(asyncio.get_running_loop())
    await server.start()
    if args.port_file is not None:
        pathlib.Path(args.port_file).write_text(f"{server.port}\n")
    print(f"serving on http://{server.host}:{server.port}", flush=True)
    await server.serve_until_closed()


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    configure_logging(args.log_level)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
