"""Path routing for the HTTP serving tier.

A :class:`Router` maps ``(method, path)`` to a handler.  Patterns are
literal segments plus ``{name}`` placeholders::

    router.add("POST", "/v1/graphs/{graph}/edges", handler)

Resolution returns the handler and the captured path parameters.  An
unknown path raises :class:`RouteNotFound` (404); a known path hit with
the wrong method raises :class:`MethodNotAllowed` (405, carrying the
``Allow`` set) — both derive from :class:`~repro.errors.NetworkError`
so the server's single error-mapping path handles them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import NetworkError


class RouteNotFound(NetworkError):
    """No route matches the request path."""

    status = 404


class MethodNotAllowed(NetworkError):
    """The path exists but not for this method; ``allowed`` lists those."""

    status = 405

    def __init__(self, message: str, *, allowed: tuple[str, ...] = ()):
        super().__init__(message)
        self.allowed = allowed


@dataclass(frozen=True)
class Route:
    """One registered route: compiled pattern plus its handler."""

    method: str
    pattern: str
    segments: tuple[str, ...]
    handler: Callable
    #: Label used for metrics/log cardinality ("/v1/graphs/{graph}/edges").
    name: str

    def match(self, parts: tuple[str, ...]) -> dict[str, str] | None:
        if len(parts) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for segment, part in zip(self.segments, parts):
            if segment.startswith("{") and segment.endswith("}"):
                if not part:
                    return None
                params[segment[1:-1]] = part
            elif segment != part:
                return None
        return params


def _split(path: str) -> tuple[str, ...]:
    return tuple(part for part in path.strip("/").split("/"))


class Router:
    """Ordered route table with ``{param}`` placeholder patterns."""

    def __init__(self) -> None:
        self._routes: list[Route] = []

    def add(self, method: str, pattern: str, handler: Callable) -> Route:
        route = Route(method=method.upper(), pattern=pattern,
                      segments=_split(pattern), handler=handler,
                      name=pattern)
        self._routes.append(route)
        return route

    @property
    def routes(self) -> tuple[Route, ...]:
        return tuple(self._routes)

    def resolve(self, method: str, path: str
                ) -> tuple[Route, dict[str, str]]:
        """The matching route and its captured path parameters.

        Raises :class:`RouteNotFound` / :class:`MethodNotAllowed`.
        """
        parts = _split(path)
        allowed: list[str] = []
        for route in self._routes:
            params = route.match(parts)
            if params is None:
                continue
            if route.method == method.upper():
                return route, params
            allowed.append(route.method)
        if allowed:
            raise MethodNotAllowed(
                f"{method} not allowed on {path} "
                f"(allowed: {', '.join(sorted(set(allowed)))})",
                allowed=tuple(sorted(set(allowed))))
        raise RouteNotFound(f"no route matches {path}")
