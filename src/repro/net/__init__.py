"""Network serving tier: the asyncio HTTP front end over a QueryService.

Layers (each its own module, wire-up in :mod:`repro.net.server`):

* :mod:`repro.net.protocol` — HTTP/1.1 parsing and response framing
  (buffered and chunked), stdlib ``asyncio`` streams only,
* :mod:`repro.net.router` — method + path-template dispatch,
* :mod:`repro.net.tenancy` — auth tokens, graph mapping, token-bucket
  rate limits and max-in-flight quotas,
* :mod:`repro.net.server` — :class:`HttpServer` (endpoints, tracing,
  metrics, graceful drain) and the :class:`ServerThread` test/example
  harness,
* :mod:`repro.net.client` — :class:`ServiceClient`, the blocking
  ``http.client`` counterpart,
* :mod:`repro.net.serve` — the ``python -m repro.net.serve`` CLI.

See the "Serving tier" section of ``DESIGN.md`` for the endpoint table,
the tenancy model and the shutdown state machine.
"""

from .client import ResponseError, ServiceClient
from .protocol import (ChunkedResponseWriter, HttpRequest, json_body,
                       read_request, render_response, send_response)
from .router import MethodNotAllowed, Route, RouteNotFound, Router
from .server import (CLOSED, DEFAULT_DRAIN_GRACE, DRAINING, SERVING,
                     HttpServer, Response, ServerThread)
from .tenancy import (ALL_GRAPHS, ANONYMOUS, Tenant, TenantRegistry,
                      TokenBucket)

__all__ = [
    "ALL_GRAPHS",
    "ANONYMOUS",
    "CLOSED",
    "ChunkedResponseWriter",
    "DEFAULT_DRAIN_GRACE",
    "DRAINING",
    "HttpRequest",
    "HttpServer",
    "MethodNotAllowed",
    "Response",
    "ResponseError",
    "Route",
    "RouteNotFound",
    "Router",
    "SERVING",
    "ServerThread",
    "ServiceClient",
    "Tenant",
    "TenantRegistry",
    "TokenBucket",
    "json_body",
    "read_request",
    "render_response",
    "send_response",
]
