"""Blocking HTTP client for the serving tier (``http.client``, stdlib).

:class:`ServiceClient` speaks the ``/v1/*`` protocol of
:class:`~repro.net.server.HttpServer` over one persistent keep-alive
connection: buffered queries, streamed queries (chunked ndjson with
continuation-token pagination), edge mutations, EXPLAIN ANALYZE and the
ops endpoints.  Non-2xx responses raise :class:`ResponseError` carrying
the HTTP status and the decoded error payload.

The client is deliberately **not thread-safe** — it owns a single
``http.client.HTTPConnection``.  Give each thread or process its own
instance (that is exactly what the throughput benchmark does); a stale
or half-closed connection is transparently re-opened once per request.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Iterator

from ..errors import NetworkError
from ..service import UNBOUNDED


class ResponseError(NetworkError):
    """A non-2xx response, with the decoded error payload attached."""

    def __init__(self, status: int, payload: object, *,
                 retry_after: float | None = None):
        detail = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(detail or f"HTTP {status}", status=status,
                         retry_after=retry_after)
        self.payload = payload


class ServiceClient:
    """A blocking client for one server; see the module docstring."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8080, *,
                 token: str | None = None, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.token = token
        self.timeout = timeout
        self._connection: http.client.HTTPConnection | None = None

    # -- Wire plumbing ---------------------------------------------------------

    def _open(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def _drop(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except Exception:
                pass
            self._connection = None

    def _send(self, method: str, path: str,
              body: dict | None = None) -> http.client.HTTPResponse:
        payload = (json.dumps(body, sort_keys=True).encode("utf-8")
                   if body is not None else None)
        headers = {}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        last_error: Exception | None = None
        for _attempt in range(2):
            if self._connection is None:
                self._connection = self._open()
            try:
                self._connection.request(method, path, body=payload,
                                         headers=headers)
                return self._connection.getresponse()
            except (ConnectionError, http.client.HTTPException,
                    socket.timeout, OSError) as error:
                # A dead keep-alive connection (server restarted, idle
                # timeout, abandoned stream): reconnect once.
                last_error = error
                self._drop()
        raise NetworkError(
            f"request to {self.host}:{self.port} failed: "
            f"{last_error!r}") from last_error

    def _json(self, response: http.client.HTTPResponse) -> dict:
        data = response.read()
        payload = json.loads(data) if data else None
        if response.will_close:
            self._drop()
        if response.status >= 400:
            raise ResponseError(response.status, payload,
                                retry_after=_retry_after(response))
        return payload

    # -- Queries ---------------------------------------------------------------

    def query(self, query: str, *, graph: str | None = None,
              strategy: str | None = None, frontend: str | None = None,
              timeout: float | None = None) -> dict:
        """Run one query; returns the decoded response payload."""
        body: dict[str, object] = {"query": query}
        if graph is not None:
            body["graph"] = graph
        if strategy is not None:
            body["strategy"] = strategy
        if frontend is not None:
            body["frontend"] = frontend
        if timeout is not None:
            # The wire form of repro.service.UNBOUNDED is timeout=0.
            body["timeout"] = 0 if timeout is UNBOUNDED else timeout
        return self._json(self._send("POST", "/v1/query", body))

    def analyze(self, query: str, *, graph: str | None = None,
                frontend: str | None = None) -> dict:
        """Statically analyze a query without executing it.

        The payload mirrors ``DiagnosticReport.to_dict()``: ``ok``, the
        ``diagnostics`` list (stable codes, severities, spans) and the
        ``recursion`` shape with the applicable paper strategies.
        """
        body: dict[str, object] = {"query": query}
        if graph is not None:
            body["graph"] = graph
        if frontend is not None:
            body["frontend"] = frontend
        return self._json(self._send("POST", "/v1/analyze", body))

    def stream_query(self, query: str | None = None, *,
                     graph: str | None = None, strategy: str | None = None,
                     batch_size: int | None = None, limit: int | None = None,
                     cursor: str | None = None) -> Iterator[dict]:
        """Yield the streamed ndjson events of one ``/v1/query/stream``.

        Pass either ``query`` (a fresh stream) or ``cursor`` (resume a
        previous stream's continuation token).  The final event carries
        ``done``, ``row_count``, ``snapshot_version`` and (when rows
        remain) ``next_cursor``.
        """
        body: dict[str, object] = {}
        if cursor is not None:
            body["cursor"] = cursor
        elif query is not None:
            body["query"] = query
        else:
            raise ValueError("stream_query needs a query or a cursor")
        if graph is not None:
            body["graph"] = graph
        if strategy is not None:
            body["strategy"] = strategy
        if batch_size is not None:
            body["batch_size"] = batch_size
        if limit is not None:
            body["limit"] = limit
        response = self._send("POST", "/v1/query/stream", body)
        if response.status >= 400:
            data = response.read()
            raise ResponseError(response.status,
                                json.loads(data) if data else None,
                                retry_after=_retry_after(response))
        try:
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        except http.client.IncompleteRead as error:
            self._drop()
            raise NetworkError(
                "the stream ended before its terminator (the server "
                "failed mid-stream)") from error
        finally:
            # An abandoned generator leaves unread chunks on the socket;
            # drop the connection so the next request starts clean.
            if not response.isclosed():
                self._drop()

    def stream_rows(self, query: str, *, graph: str | None = None,
                    strategy: str | None = None,
                    batch_size: int | None = None,
                    page_limit: int | None = None) -> Iterator[list]:
        """Yield every row of a query, following continuation tokens.

        ``page_limit`` bounds the rows served per HTTP request (forcing
        cursor pagination); the iteration is still exhaustive because
        each response's ``next_cursor`` is followed automatically.  All
        pages read the same pinned snapshot.
        """
        cursor: str | None = None
        first = True
        while first or cursor is not None:
            events = self.stream_query(
                query if first else None, graph=graph if first else None,
                strategy=strategy if first else None, batch_size=batch_size,
                limit=page_limit, cursor=cursor)
            cursor = None
            for event in events:
                if event.get("done"):
                    cursor = event.get("next_cursor")
                else:
                    yield from event["batch"]
            first = False

    def explain(self, query: str, *, graph: str | None = None,
                strategy: str | None = None,
                frontend: str | None = None) -> dict:
        from urllib.parse import urlencode
        params = {"query": query}
        if graph is not None:
            params["graph"] = graph
        if strategy is not None:
            params["strategy"] = strategy
        if frontend is not None:
            params["frontend"] = frontend
        return self._json(
            self._send("GET", f"/v1/explain?{urlencode(params)}"))

    # -- Mutations -------------------------------------------------------------

    def mutate(self, graph: str, label: str, *,
               add: list[tuple] | None = None,
               remove: list[tuple] | None = None) -> dict:
        body: dict[str, object] = {"label": label}
        if add:
            body["add"] = [list(pair) for pair in add]
        if remove:
            body["remove"] = [list(pair) for pair in remove]
        return self._json(
            self._send("POST", f"/v1/graphs/{graph}/edges", body))

    def add_edges(self, graph: str, label: str,
                  pairs: list[tuple]) -> dict:
        return self.mutate(graph, label, add=pairs)

    def remove_edges(self, graph: str, label: str,
                     pairs: list[tuple]) -> dict:
        return self.mutate(graph, label, remove=pairs)

    # -- Ops -------------------------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload; 503 (draining/degraded) included.

        Unlike the other calls a non-2xx health answer is data, not an
        error — the payload's ``server_state``/``status`` say why.
        """
        response = self._send("GET", "/healthz")
        data = response.read()
        payload = json.loads(data) if data else {}
        payload["http_status"] = response.status
        if response.will_close:
            self._drop()
        return payload

    def metrics(self) -> str:
        """The Prometheus exposition text of ``/metrics``."""
        response = self._send("GET", "/metrics")
        data = response.read()
        if response.status >= 400:
            raise ResponseError(response.status, data.decode("utf-8",
                                                             "replace"))
        return data.decode("utf-8")

    def close(self) -> None:
        self._drop()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServiceClient({self.host}:{self.port})"


def _retry_after(response: http.client.HTTPResponse) -> float | None:
    value = response.getheader("Retry-After")
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        return None
