"""The asyncio HTTP serving tier over one :class:`QueryService`.

:class:`HttpServer` binds ``asyncio.start_server`` to a
:class:`~repro.service.QueryService` and exposes the session pipeline on
the wire — stdlib only, one process, many concurrent connections:

====== ============================ ===========================================
Method Path                         Purpose
====== ============================ ===========================================
POST   ``/v1/query``                One query, buffered JSON result
POST   ``/v1/query/stream``         Chunked ndjson batches + continuation
                                    tokens (snapshot-pinned pagination)
POST   ``/v1/analyze``              Static analysis: diagnostics, no execution
POST   ``/v1/graphs/{graph}/edges`` Edge mutations through the commit lock
GET    ``/v1/explain``              EXPLAIN ANALYZE as JSON
GET    ``/healthz``                 :meth:`QueryService.health` + server state
GET    ``/metrics``                 Prometheus text from the process registry
====== ============================ ===========================================

Request handling is fully asynchronous: parsing and dispatch run on the
event loop, query execution rides the service's worker threads (the
loop awaits the admission future), and blocking session calls
(mutations, result materialization, EXPLAIN ANALYZE) run on the loop's
default thread-pool executor.  Every request runs inside an
``http.request`` trace span whose id is echoed in the ``X-Trace-Id``
response header and in the JSON access log, and publishes
``repro_http_*`` metrics into the process registry.

**Tenancy.**  With a :class:`~repro.net.tenancy.TenantRegistry`, every
``/v1/*`` request must carry ``Authorization: Bearer <token>``; the
token maps to named graphs and the tenant's token-bucket rate limit and
max-in-flight quota (breaches answer 429 with ``Retry-After``).  The
ops endpoints stay unauthenticated so probes and scrapers need no
credentials.  Without a registry the server runs open (anonymous tenant,
no quotas).

**Shutdown state machine.**  ``serving → draining → closed``: the first
SIGTERM (or :meth:`shutdown`) closes the listener and answers 503 on
kept-alive connections while in-flight requests — including streaming
responses — run to completion within a bounded grace period; a second
SIGTERM forces the close immediately.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import math
import secrets
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field

from ..errors import (AnalysisError, AuthorizationError, DatasetError,
                      NetworkError, ProtocolError, QuotaExceededError,
                      ReproError, ServiceError, ServiceOverloadError)
from ..obs import tracing
from ..obs.logs import get_logger, log_event
from ..obs.metrics import get_registry
from ..service.server import UNBOUNDED, QueryService
from ..session.query import DatalogQuery, Query
from .protocol import (DEFAULT_MAX_BODY_BYTES, ChunkedResponseWriter,
                       json_body, read_request, send_response)
from .router import MethodNotAllowed, Router
from .tenancy import ANONYMOUS, Tenant, TenantRegistry

_LOGGER = get_logger("repro.net")

#: Server lifecycle states (see the shutdown state machine above).
SERVING = "serving"
DRAINING = "draining"
CLOSED = "closed"

#: Default bounded grace (seconds) for draining in-flight requests.
DEFAULT_DRAIN_GRACE = 5.0
#: Default rows per streamed batch.
DEFAULT_STREAM_BATCH = 256
#: Continuation-token registry bounds.
DEFAULT_CONTINUATION_CAPACITY = 256
DEFAULT_CONTINUATION_TTL = 300.0

#: Query front-ends a request body may select.
_FRONTENDS = ("ucrpq", "datalog")


@dataclass
class Response:
    """A buffered handler outcome, rendered by the dispatch loop."""

    status: int = 200
    payload: object = None
    headers: tuple[tuple[str, str], ...] = ()
    content_type: str = "application/json"
    #: Pre-encoded body (``/metrics``); wins over ``payload``.
    body: bytes | None = None


@dataclass
class _Streamed:
    """A handler already wrote its (chunked) response itself."""

    status: int
    bytes_written: int
    keep_alive: bool = True


@dataclass
class _RequestContext:
    """What a handler may need beyond the parsed request."""

    tenant: Tenant
    writer: asyncio.StreamWriter
    keep_alive: bool
    #: Headers the dispatch loop wants on every response (trace id).
    base_headers: tuple[tuple[str, str], ...]


@dataclass
class _Continuation:
    """One registered cursor: a pinned handle plus its read position."""

    handle: Query
    offset: int
    strategy: str | None
    graph: str
    tenant: str
    created: float = field(default_factory=time.monotonic)


class HttpServer:
    """HTTP/1.1 front end over one :class:`QueryService` (stdlib asyncio)."""

    def __init__(self, service: QueryService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 tenants: TenantRegistry | None = None,
                 drain_grace: float = DEFAULT_DRAIN_GRACE,
                 stream_batch_size: int = DEFAULT_STREAM_BATCH,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
                 continuation_capacity: int = DEFAULT_CONTINUATION_CAPACITY,
                 continuation_ttl: float = DEFAULT_CONTINUATION_TTL,
                 own_service: bool = False):
        self.service = service
        self.host = host
        self.port = port
        self.tenants = tenants
        self.drain_grace = drain_grace
        self.stream_batch_size = stream_batch_size
        self.max_body_bytes = max_body_bytes
        self.continuation_capacity = continuation_capacity
        self.continuation_ttl = continuation_ttl
        self._own_service = own_service
        self._state = SERVING
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[asyncio.Task] = set()
        self._in_flight_requests = 0
        self._signals = 0
        self._force: asyncio.Event | None = None
        self._closed_event: asyncio.Event | None = None
        #: token -> continuation; insertion-ordered, bounded, TTL-purged.
        self._continuations: dict[str, _Continuation] = {}
        self.router = Router()
        self.router.add("POST", "/v1/query", self._handle_query)
        self.router.add("POST", "/v1/query/stream", self._handle_stream)
        self.router.add("POST", "/v1/analyze", self._handle_analyze)
        self.router.add("POST", "/v1/graphs/{graph}/edges",
                        self._handle_edges)
        self.router.add("GET", "/v1/explain", self._handle_explain)
        self.router.add("GET", "/healthz", self._handle_healthz)
        self.router.add("GET", "/metrics", self._handle_metrics)

    # -- Lifecycle -------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    async def start(self) -> "HttpServer":
        """Bind the listener; ``self.port`` then holds the bound port."""
        self._loop = asyncio.get_running_loop()
        self._force = asyncio.Event()
        self._closed_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log_event(_LOGGER, "server started", host=self.host, port=self.port,
                  tenants=len(self.tenants.tenants) if self.tenants else 0)
        return self

    async def serve_until_closed(self) -> None:
        """Block until :meth:`shutdown` completed (the serve loop body)."""
        await self._closed_event.wait()

    async def run(self) -> None:
        """Start and serve until shut down (the ``serve.py`` entry)."""
        await self.start()
        await self.serve_until_closed()

    def install_signal_handlers(self,
                                loop: asyncio.AbstractEventLoop) -> None:
        """SIGTERM/SIGINT → graceful drain; a second signal forces close."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, self._on_signal)

    def _on_signal(self) -> None:
        """First signal starts the drain; the second forces the close.

        Runs on the event loop (``loop.add_signal_handler`` contract), so
        the counter and the force event need no locking.
        """
        self._signals += 1
        if self._signals == 1:
            log_event(_LOGGER, "shutdown signal: draining",
                      grace_seconds=self.drain_grace)
            self._loop.create_task(self.shutdown())
        else:
            log_event(_LOGGER, "second shutdown signal: forcing close")
            self._force.set()

    async def shutdown(self, grace: float | None = None) -> None:
        """Stop accepting, drain with bounded grace, then close.

        Idempotent: a second concurrent call returns once the first
        finishes (set :attr:`_force` — or send a second signal — to make
        the first skip the remaining grace).
        """
        if self._state == CLOSED:
            return
        if self._state == DRAINING:
            await self._closed_event.wait()
            return
        self._state = DRAINING
        self._server.close()
        await self._server.wait_closed()
        grace = self.drain_grace if grace is None else grace
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        while (self._in_flight_requests > 0 and not self._force.is_set()
               and loop.time() < deadline):
            with contextlib.suppress(TimeoutError):
                await asyncio.wait_for(self._force.wait(), timeout=0.02)
        forced = self._in_flight_requests > 0
        self._state = CLOSED
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._continuations.clear()
        if self._own_service:
            self.service.close()
        log_event(_LOGGER, "server closed", forced=forced)
        self._closed_event.set()

    # -- Connection loop -------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_body_bytes)
                except ProtocolError as error:
                    with contextlib.suppress(Exception):
                        await send_response(
                            writer, error.status,
                            json_body({"error": str(error)}),
                            keep_alive=False)
                    break
                if request is None:
                    break
                if not await self._dispatch(request, writer):
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request, writer) -> bool:
        """One request end to end; returns whether to keep the connection."""
        if self._state != SERVING:
            # Draining: kept-alive connections get a clean 503 + close.
            with contextlib.suppress(Exception):
                await send_response(
                    writer, 503,
                    json_body({"error": "server is draining"}),
                    headers=(("Retry-After", "1"),), keep_alive=False)
            return False
        started = time.perf_counter()
        registry = get_registry()
        self._in_flight_requests += 1
        registry.gauge("repro_http_in_flight").inc()
        route_name = request.path
        tenant_name = "-"
        status = 500
        bytes_out = 0
        keep_alive = request.keep_alive
        admission = None
        trace_id = uuid.uuid4().hex[:16]
        try:
            with tracing.span("http.request", method=request.method,
                              path=request.path) as span:
                if span.enabled:
                    trace_id = span.trace_id
                base_headers = (("X-Trace-Id", trace_id),)
                try:
                    route, params = self.router.resolve(request.method,
                                                        request.path)
                    route_name = route.name
                    tenant = self._authenticate(request)
                    tenant_name = tenant.name
                    if self.tenants is not None \
                            and request.path.startswith("/v1/"):
                        admission = self.tenants.admit(tenant)
                    context = _RequestContext(
                        tenant=tenant, writer=writer, keep_alive=keep_alive,
                        base_headers=base_headers)
                    outcome = await route.handler(request, params, context)
                except asyncio.CancelledError:
                    raise
                except BaseException as error:
                    if isinstance(error, QuotaExceededError):
                        registry.counter("repro_http_rate_limited_total",
                                         tenant=tenant_name).inc()
                    status, payload, extra = _map_error(error)
                    if status >= 500 and not isinstance(error, ReproError):
                        log_event(_LOGGER, "request failed",
                                  path=request.path, error=repr(error))
                    bytes_out = await send_response(
                        writer, status, json_body(payload),
                        headers=base_headers + extra, keep_alive=keep_alive)
                else:
                    if isinstance(outcome, _Streamed):
                        status = outcome.status
                        bytes_out = outcome.bytes_written
                        keep_alive = keep_alive and outcome.keep_alive
                    else:
                        status = outcome.status
                        body = (outcome.body if outcome.body is not None
                                else json_body(outcome.payload))
                        bytes_out = await send_response(
                            writer, status, body,
                            content_type=outcome.content_type,
                            headers=base_headers + outcome.headers,
                            keep_alive=keep_alive)
                if span.enabled:
                    span.set_attribute("status", status)
                    span.set_attribute("tenant", tenant_name)
        except (ConnectionResetError, BrokenPipeError):
            keep_alive = False
        finally:
            if admission is not None:
                admission.release()
            self._in_flight_requests -= 1
            registry.gauge("repro_http_in_flight").dec()
            elapsed = time.perf_counter() - started
            registry.counter("repro_http_requests_total", route=route_name,
                             method=request.method, status=status).inc()
            registry.histogram("repro_http_request_seconds",
                               route=route_name).observe(elapsed)
            log_event(_LOGGER, "http.request", method=request.method,
                      path=request.path, route=route_name, status=status,
                      tenant=tenant_name,
                      duration_seconds=round(elapsed, 6),
                      bytes=bytes_out, trace_id=trace_id)
        return keep_alive

    def _authenticate(self, request) -> Tenant:
        """The request's tenant; ops endpoints stay open to probes."""
        if self.tenants is None or not request.path.startswith("/v1/"):
            return ANONYMOUS
        return self.tenants.authenticate(request.header("authorization"))

    # -- Query endpoints -------------------------------------------------------

    async def _handle_query(self, request, params, context) -> Response:
        body = request.json()
        handle, graph = self._build_handle(body, context.tenant)
        timeout = _parse_timeout(body.get("timeout"))
        future = self.service.submit(handle,
                                     strategy=body.get("strategy") or None,
                                     timeout=timeout)
        served = await asyncio.wrap_future(future)
        payload = _served_payload(served, handle)
        return Response(_served_status(served), payload)

    async def _handle_stream(self, request, params, context) -> _Streamed:
        body = request.json()
        cursor = body.get("cursor")
        if cursor is not None:
            continuation = self._lookup_continuation(cursor, context.tenant)
            handle = continuation.handle
            offset = continuation.offset
            strategy = continuation.strategy
            graph = continuation.graph
        else:
            handle, graph = self._build_handle(body, context.tenant)
            if not isinstance(handle, Query):
                raise ProtocolError(
                    "the streaming endpoint serves the ucrpq front-end "
                    "only")
            offset = 0
            strategy = body.get("strategy") or None
        batch_size = _positive_int(body.get("batch_size"),
                                   self.stream_batch_size, "batch_size")
        limit = body.get("limit")
        if limit is not None:
            limit = _positive_int(limit, None, "limit")
        loop = asyncio.get_running_loop()
        # Materialize (and pin) before the chunked head goes out, so
        # planning/execution errors still map to clean error responses.
        rows, total = await loop.run_in_executor(
            None, handle.page, offset,
            min(batch_size, limit) if limit else batch_size, strategy)
        end = min(total, offset + limit) if limit is not None else total
        get_registry().counter("repro_http_streams_total").inc()
        chunked = ChunkedResponseWriter(context.writer,
                                        headers=context.base_headers,
                                        keep_alive=context.keep_alive)
        await chunked.start()
        keep_alive = context.keep_alive
        try:
            index = 0
            while rows:
                await chunked.write_json({
                    "batch": [list(row) for row in rows],
                    "index": index,
                    "offset": offset,
                })
                offset += len(rows)
                index += 1
                if offset >= end:
                    break
                take = min(batch_size, end - offset)
                rows, total = await loop.run_in_executor(
                    None, handle.page, offset, take, strategy)
            next_cursor = None
            if offset < total:
                next_cursor = self._register_continuation(
                    handle, offset, strategy, graph, context.tenant)
            snapshot = handle.pinned_snapshot
            await chunked.write_json({
                "done": True,
                "row_count": total,
                "offset": offset,
                "snapshot_version": (snapshot.version
                                     if snapshot is not None else None),
                "next_cursor": next_cursor,
            })
            await chunked.finish()
        except (ConnectionResetError, BrokenPipeError):
            keep_alive = False
        except ReproError:
            # The chunked head is already on the wire; the truncated
            # stream (no terminator) is the error signal the client sees.
            keep_alive = False
        return _Streamed(status=200, bytes_written=chunked.bytes_written,
                         keep_alive=keep_alive and chunked.finished)

    async def _handle_analyze(self, request, params, context) -> Response:
        """Static analysis of a query body — diagnostics, no execution.

        Always answers 200 when the analysis itself ran (the verdict is
        in the payload's ``ok`` / ``diagnostics``); parse failures are
        analysis *findings*, not protocol errors.
        """
        body = request.json()
        query_text = body.get("query")
        if not isinstance(query_text, str) or not query_text.strip():
            raise ProtocolError("request body requires a 'query' string")
        frontend = body.get("frontend", "ucrpq")
        if frontend not in _FRONTENDS:
            raise ProtocolError(f"unknown frontend {frontend!r} "
                                f"(supported: {', '.join(_FRONTENDS)})")
        graph = context.tenant.resolve_graph(body.get("graph"))
        scope = self._scope(graph)
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(
            None, lambda: scope.analyze(query_text, frontend=frontend))
        payload = report.to_dict()
        payload["graph"] = graph
        payload["frontend"] = frontend
        return Response(200, payload)

    async def _handle_explain(self, request, params, context) -> Response:
        query_text = request.query.get("query")
        if not query_text:
            raise ProtocolError(
                "/v1/explain requires a ?query= parameter")
        graph = context.tenant.resolve_graph(request.query.get("graph"))
        scope = self._scope(graph)
        strategy = request.query.get("strategy") or None
        frontend = request.query.get("frontend", "ucrpq")
        if frontend not in _FRONTENDS:
            raise ProtocolError(f"unknown frontend {frontend!r} "
                                f"(supported: {', '.join(_FRONTENDS)})")
        loop = asyncio.get_running_loop()
        if frontend == "datalog":
            handle = scope.datalog(query_text)
            report = await loop.run_in_executor(None, handle.explain_analyze)
        else:
            handle = scope.ucrpq(query_text)
            report = await loop.run_in_executor(
                None, lambda: handle.explain_analyze(strategy))
        payload = report.to_dict()
        payload["graph"] = graph
        return Response(200, payload)

    # -- Mutation endpoint -----------------------------------------------------

    async def _handle_edges(self, request, params, context) -> Response:
        graph = context.tenant.resolve_graph(params["graph"])
        body = request.json()
        label = body.get("label")
        if not isinstance(label, str) or not label:
            raise ProtocolError("mutation body requires a 'label' string")
        additions = _edge_pairs(body.get("add"), "add")
        removals = _edge_pairs(body.get("remove"), "remove")
        if not additions and not removals:
            raise ProtocolError(
                "mutation body requires 'add' and/or 'remove' pairs")
        scope = self._scope(graph)

        def mutate() -> tuple[tuple[str, ...], int]:
            if additions and removals:
                transaction = scope.transaction()
                transaction.add_edges(label, additions)
                transaction.remove_edges(label, removals)
                touched = transaction.commit()
            elif additions:
                touched = scope.add_edges(label, additions)
            else:
                touched = scope.remove_edges(label, removals)
            return touched, scope.snapshot().version

        loop = asyncio.get_running_loop()
        touched, version = await loop.run_in_executor(None, mutate)
        return Response(200, {
            "graph": graph,
            "label": label,
            "touched": sorted(touched),
            "committed": bool(touched),
            "snapshot_version": version,
        })

    # -- Ops endpoints ---------------------------------------------------------

    async def _handle_healthz(self, request, params, context) -> Response:
        loop = asyncio.get_running_loop()
        health = await loop.run_in_executor(None, self.service.health)
        health["server_state"] = self._state
        health["open_connections"] = len(self._connections)
        healthy = self._state == SERVING and health["status"] == "ok"
        return Response(200 if healthy else 503, health)

    async def _handle_metrics(self, request, params, context) -> Response:
        def render() -> str:
            # health() refreshes the uptime / queue-high-water gauges so
            # a scrape never reads stale values.
            self.service.health()
            return get_registry().render_prometheus()

        loop = asyncio.get_running_loop()
        text = await loop.run_in_executor(None, render)
        return Response(200, body=text.encode("utf-8"),
                        content_type="text/plain; version=0.0.4")

    # -- Shared handler plumbing -----------------------------------------------

    def _scope(self, graph: str):
        """The session view for ``graph`` (404 when not attached)."""
        try:
            return self.service.session.graph(graph)
        except DatasetError as error:
            raise NetworkError(str(error), status=404) from None

    def _build_handle(self, body: dict, tenant: Tenant):
        """Build the (authorized, graph-scoped) handle a body describes."""
        query_text = body.get("query")
        if not isinstance(query_text, str) or not query_text.strip():
            raise ProtocolError("request body requires a 'query' string")
        graph = tenant.resolve_graph(body.get("graph"))
        scope = self._scope(graph)
        frontend = body.get("frontend", "ucrpq")
        if frontend == "datalog":
            return scope.datalog(query_text), graph
        if frontend == "ucrpq":
            return scope.ucrpq(query_text), graph
        raise ProtocolError(f"unknown frontend {frontend!r} "
                            f"(supported: {', '.join(_FRONTENDS)})")

    def _register_continuation(self, handle: Query, offset: int,
                               strategy: str | None, graph: str,
                               tenant: Tenant) -> str:
        now = time.monotonic()
        expired = [token for token, continuation in self._continuations.items()
                   if now - continuation.created > self.continuation_ttl]
        for token in expired:
            del self._continuations[token]
        while len(self._continuations) >= self.continuation_capacity:
            self._continuations.pop(next(iter(self._continuations)))
        token = secrets.token_urlsafe(16)
        self._continuations[token] = _Continuation(
            handle=handle, offset=offset, strategy=strategy, graph=graph,
            tenant=tenant.name)
        return token

    def _lookup_continuation(self, token: str,
                             tenant: Tenant) -> _Continuation:
        continuation = self._continuations.get(token)
        if continuation is None or (time.monotonic() - continuation.created
                                    > self.continuation_ttl):
            self._continuations.pop(token, None)
            raise NetworkError("unknown or expired continuation token",
                               status=410)
        if continuation.tenant != tenant.name:
            raise AuthorizationError(
                "this continuation token belongs to another tenant")
        return continuation

    def __repr__(self) -> str:
        return (f"HttpServer({self.host}:{self.port}, state={self._state}, "
                f"connections={len(self._connections)})")


# -- Module helpers -------------------------------------------------------------


def _parse_timeout(value: object):
    """Body ``timeout`` → submit's: absent = default, 0 = unbounded."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"bad timeout {value!r}") from None
    if seconds < 0:
        raise ProtocolError("timeout must be >= 0 (0 disables the deadline)")
    return UNBOUNDED if seconds == 0 else seconds


def _positive_int(value: object, default: int | None, name: str) -> int:
    if value is None:
        return default
    try:
        number = int(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"bad {name} {value!r}") from None
    if number <= 0:
        raise ProtocolError(f"{name} must be positive")
    return number


def _edge_pairs(value: object, name: str) -> list[tuple]:
    if value is None:
        return []
    if not isinstance(value, list):
        raise ProtocolError(f"'{name}' must be a list of [src, trg] pairs")
    pairs = []
    for item in value:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ProtocolError(
                f"'{name}' must be a list of [src, trg] pairs")
        pairs.append(tuple(item))
    return pairs


def _plan_digest(handle) -> str | None:
    """A short stable identity of the selected logical plan."""
    try:
        if isinstance(handle, Query):
            key = handle.cache_key
        elif isinstance(handle, DatalogQuery):
            key = f"datalog:{handle.describe()}"
        else:  # pragma: no cover - defensive
            return None
    except ReproError:  # pragma: no cover - a failed query has no plan
        return None
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def _served_status(served) -> int:
    if served.succeeded:
        return 200
    detail = served.detail
    if detail.startswith("timed out") or detail.startswith(
            "deadline exceeded"):
        return 504
    return 400


def _served_payload(served, handle) -> dict:
    payload: dict[str, object] = {
        "status": served.status,
        "graph": served.graph,
        "timing": {
            "queue_wait_seconds": round(served.queue_wait_seconds, 6),
            "service_seconds": round(served.service_seconds, 6),
            "latency_seconds": round(served.latency_seconds, 6),
        },
    }
    if not served.succeeded:
        payload["detail"] = served.detail
        if served.diagnostics:
            payload["diagnostics"] = list(served.diagnostics)
        return payload
    result = served.result
    relation = result.relation
    rows = sorted(relation.rows, key=repr)
    cost = getattr(result, "estimated_cost", None)
    if cost is not None and math.isnan(cost):
        cost = None
    payload.update({
        "columns": list(relation.columns),
        "rows": [list(row) for row in rows],
        "row_count": len(rows),
        "snapshot_version": getattr(result, "snapshot_version", None),
        "plan": {
            "digest": _plan_digest(handle),
            "cost": cost,
            "plans_explored": getattr(result, "plans_explored", None),
            "physical": list(getattr(result, "physical_strategies", ())),
        },
        "cache": {
            "plan_hit": served.plan_cache_hit,
            "result_hit": served.result_cache_hit,
        },
    })
    return payload


def _map_error(error: BaseException
               ) -> tuple[int, dict, tuple[tuple[str, str], ...]]:
    """Exception → (HTTP status, JSON payload, extra headers)."""
    headers: list[tuple[str, str]] = []
    if isinstance(error, NetworkError):
        status = error.status
        payload: dict[str, object] = {"error": str(error)}
        if error.retry_after is not None:
            payload["retry_after_seconds"] = round(error.retry_after, 3)
            headers.append(
                ("Retry-After", str(max(1, math.ceil(error.retry_after)))))
        if isinstance(error, MethodNotAllowed) and error.allowed:
            headers.append(("Allow", ", ".join(error.allowed)))
        return status, payload, tuple(headers)
    if isinstance(error, ServiceOverloadError):
        return 503, {"error": str(error)}, (("Retry-After", "1"),)
    if isinstance(error, ServiceError):
        return 503, {"error": str(error)}, ()
    if isinstance(error, DatasetError):
        return 404, {"error": str(error)}, ()
    if isinstance(error, AnalysisError):
        return 400, {"error": str(error),
                     "diagnostics": [d.to_dict()
                                     for d in error.diagnostics]}, ()
    if isinstance(error, ReproError):
        return 400, {"error": str(error)}, ()
    return 500, {"error": f"internal error: {error!r}"}, ()


class ServerThread:
    """Run an :class:`HttpServer` on its own event loop in a thread.

    What tests, the example and the benchmark use to host a server
    without blocking the calling thread::

        with ServerThread(HttpServer(service)) as running:
            client = ServiceClient("127.0.0.1", running.port)
            ...
    """

    def __init__(self, server: HttpServer):
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-http-server")
        self._thread.start()
        if not self._ready.wait(timeout):
            raise NetworkError("the server did not start in time")
        if self._error is not None:
            raise NetworkError(
                f"the server failed to start: {self._error!r}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - startup failure
            self._error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_closed()

    def signal(self) -> None:
        """Deliver the equivalent of one SIGTERM to the server."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server._on_signal)

    def stop(self, grace: float | None = None,
             timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                future = asyncio.run_coroutine_threadsafe(
                    self.server.shutdown(grace), self._loop)
                future.result(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
