"""Dataset generators: Yago-like, Uniprot-like, random graphs, social suite."""

from .random_graphs import (chain_graph, erdos_renyi_graph, layered_graph,
                            random_tree)
from .registry import available_datasets, load_dataset, register_dataset
from .social import (preferential_attachment_graph, relabel_for_anbn,
                     social_graph_suite)
from .uniprot import uniprot_constants, uniprot_graph
from .yago import yago_like_graph

__all__ = [
    "available_datasets",
    "chain_graph",
    "erdos_renyi_graph",
    "layered_graph",
    "load_dataset",
    "preferential_attachment_graph",
    "random_tree",
    "register_dataset",
    "relabel_for_anbn",
    "social_graph_suite",
    "uniprot_constants",
    "uniprot_graph",
    "yago_like_graph",
]
