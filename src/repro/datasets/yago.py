"""Synthetic knowledge graph with a Yago-like shape.

The paper's Yago experiments run over a cleaned Yago 2s dump (62.6M triples
over 83 predicates).  That dump is not redistributable nor tractable here,
so this module generates a knowledge graph with the same *shape*: the same
predicates as the benchmark queries (Fig. 7), a location hierarchy with a
transitive ``isLocatedIn``, an international ``dealsWith`` web, family
trees (``hasChild``, ``isMarriedTo``), an airport ``isConnectedTo``
network, movie/actor relations, prizes, teams and academic lineages.  The
named entities the queries filter on (``Argentina``, ``Japan``,
``Kevin_Bacon``, ``Marie_Curie``, ...) are guaranteed to exist.

The ``scale`` parameter controls the number of entities of each kind; the
triple count grows roughly linearly with it.
"""

from __future__ import annotations

import random

from ..data.graph import LabeledGraph
from ..errors import DatasetError

#: The named entities that the Yago workload queries reference explicitly.
NAMED_COUNTRIES = ("Argentina", "United_States", "Japan", "France", "Germany",
                   "USA")
NAMED_PEOPLE = ("Kevin_Bacon", "Marie_Curie", "Stephen_Hawking",
                "John_Lawrence_Toole", "Jay_Kappraff", "Lionel_Messi")
NAMED_PLACES = ("London", "Shannon_Airport", "Tokyo", "Buenos_Aires")
NAMED_CLASSES = ("wikicat_Capitals_in_Europe",)


def yago_like_graph(scale: int = 200, seed: int = 0,
                    name: str | None = None) -> LabeledGraph:
    """Generate a Yago-shaped labelled graph.

    ``scale`` is the base entity count: the graph has about ``scale`` people,
    ``scale // 2`` places, ``scale // 4`` movies, and so on; a scale of 200
    yields a few thousand triples, a scale of 2000 a few tens of thousands.
    """
    if scale < 10:
        raise DatasetError("scale must be at least 10")
    rng = random.Random(seed)
    graph = LabeledGraph(name=name or f"yago_like_{scale}")

    people = [f"person_{i}" for i in range(scale)] + list(NAMED_PEOPLE)
    cities = [f"city_{i}" for i in range(scale // 2)] + list(NAMED_PLACES)
    regions = [f"region_{i}" for i in range(max(4, scale // 10))]
    countries = [f"country_{i}" for i in range(max(4, scale // 20))] + \
        list(NAMED_COUNTRIES)
    continents = ["Europe", "America", "Asia", "Africa"]
    movies = [f"movie_{i}" for i in range(scale // 4)]
    airports = [f"airport_{i}" for i in range(max(6, scale // 8))] + \
        ["Shannon_Airport"]
    prizes = [f"prize_{i}" for i in range(max(4, scale // 20))]
    clubs = [f"club_{i}" for i in range(max(4, scale // 20))]
    organizations = [f"org_{i}" for i in range(max(4, scale // 20))]
    works = [f"work_{i}" for i in range(scale // 4)]
    classes = [f"class_{i}" for i in range(max(4, scale // 20))] + \
        list(NAMED_CLASSES)

    # Location hierarchy: city -> region -> country -> continent, plus a few
    # extra hops so that isLocatedIn+ has real depth.
    for city in cities:
        graph.add_edge(city, "isLocatedIn", rng.choice(regions))
    for region in regions:
        graph.add_edge(region, "isLocatedIn", rng.choice(countries))
    for country in countries:
        graph.add_edge(country, "isLocatedIn", rng.choice(continents))
    # dealsWith: a country-level web with cycles.
    for country in countries:
        for _ in range(2):
            graph.add_edge(country, "dealsWith", rng.choice(countries))

    # People: families, marriages, residences, births.
    for index, person in enumerate(people):
        if rng.random() < 0.6:
            graph.add_edge(person, "livesIn", rng.choice(cities))
        if rng.random() < 0.6:
            graph.add_edge(person, "wasBornIn", rng.choice(cities))
        if rng.random() < 0.35:
            graph.add_edge(person, "isMarriedTo", rng.choice(people))
        if rng.random() < 0.5 and index + 1 < len(people):
            # Children point to later people, keeping hasChild acyclic with
            # chains of several generations.
            child = people[rng.randrange(index + 1, len(people))]
            graph.add_edge(person, "hasChild", child)
        if rng.random() < 0.3:
            graph.add_edge(person, "influences", rng.choice(people))
        if rng.random() < 0.25:
            graph.add_edge(person, "hasAcademicAdvisor", rng.choice(people))
        if rng.random() < 0.25:
            graph.add_edge(person, "hasWonPrize", rng.choice(prizes))
        if rng.random() < 0.3:
            graph.add_edge(person, "playsFor", rng.choice(clubs))
        if rng.random() < 0.25:
            graph.add_edge(person, "isAffiliatedTo", rng.choice(organizations))
        if rng.random() < 0.2:
            graph.add_edge(person, "owns", rng.choice(organizations))
        if rng.random() < 0.3:
            graph.add_edge(person, "created", rng.choice(works))
        if rng.random() < 0.15:
            graph.add_edge(person, "directed", rng.choice(movies))
        if rng.random() < 0.1:
            graph.add_edge(person, "isLeaderOf", rng.choice(
                countries + organizations))
        graph.add_edge(person, "type", rng.choice(classes))

    # Movies and actors (the Kevin Bacon playground).
    for movie in movies:
        cast_size = rng.randint(2, 6)
        for _ in range(cast_size):
            graph.add_edge(rng.choice(people), "actedIn", movie)
    for _ in range(max(3, scale // 40)):
        graph.add_edge("Kevin_Bacon", "actedIn", rng.choice(movies))
        graph.add_edge("Marie_Curie", "hasWonPrize", rng.choice(prizes))
        graph.add_edge("Stephen_Hawking", "influences", rng.choice(people))
        graph.add_edge("Lionel_Messi", "playsFor", rng.choice(clubs))

    # Airports network.
    for airport in airports:
        for _ in range(3):
            graph.add_edge(airport, "isConnectedTo", rng.choice(airports))
    # Organisations are located somewhere; classes form a small hierarchy.
    for organization in organizations + clubs:
        graph.add_edge(organization, "isLocatedIn", rng.choice(cities))
    for class_name in classes:
        graph.add_edge(class_name, "rdfs:subClassOf", rng.choice(classes))
    # Capitals-in-Europe instances used by Q6.
    for city in rng.sample(cities, k=min(10, len(cities))):
        graph.add_edge(city, "type", "wikicat_Capitals_in_Europe")

    return graph
