"""Random graph generators: Erdos-Renyi graphs and random trees.

These are the synthetic topologies used throughout the paper's evaluation:

* ``rnd_n_p`` — Erdos-Renyi random graphs with ``n`` nodes and edge
  probability ``p`` (used for the transitive-closure experiments of Fig. 5
  and the concatenated-closure experiments of Fig. 12, where the edges are
  additionally labelled from a small label set),
* ``tree_n`` — random recursive trees where node ``i+1`` attaches to a
  uniformly chosen earlier node (used by the same-generation workloads).

All generators are deterministic for a given ``seed``.
"""

from __future__ import annotations

import random

from ..data.graph import LabeledGraph
from ..errors import DatasetError

DEFAULT_LABEL = "edge"


def erdos_renyi_graph(num_nodes: int, edge_probability: float | None = None,
                      num_edges: int | None = None,
                      labels: tuple[str, ...] = (DEFAULT_LABEL,),
                      seed: int = 0, name: str | None = None) -> LabeledGraph:
    """Generate an Erdos-Renyi style random graph.

    Either ``edge_probability`` (the G(n, p) model) or ``num_edges`` (the
    G(n, m) model, faster for sparse graphs) must be given.  When several
    ``labels`` are provided, each edge gets one chosen uniformly at random —
    this is how the concatenated-closure benchmark builds its 10-label
    graph.
    """
    if num_nodes <= 0:
        raise DatasetError("num_nodes must be positive")
    if (edge_probability is None) == (num_edges is None):
        raise DatasetError("give exactly one of edge_probability or num_edges")
    if not labels:
        raise DatasetError("at least one edge label is required")
    rng = random.Random(seed)
    graph_name = name or (f"rnd_{num_nodes}_{edge_probability}"
                          if edge_probability is not None
                          else f"rnd_{num_nodes}_m{num_edges}")
    graph = LabeledGraph(name=graph_name)
    if edge_probability is not None:
        if not 0.0 <= edge_probability <= 1.0:
            raise DatasetError("edge_probability must be within [0, 1]")
        # G(n, m) sampling with m = p * n * (n-1): statistically equivalent
        # for the sparse graphs used here and much faster than n^2 trials.
        expected_edges = int(round(edge_probability * num_nodes * (num_nodes - 1)))
        num_edges = expected_edges
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = max(10 * num_edges, 100)
    while len(seen) < num_edges and attempts < max_attempts:
        attempts += 1
        src = rng.randrange(num_nodes)
        trg = rng.randrange(num_nodes)
        if src == trg or (src, trg) in seen:
            continue
        seen.add((src, trg))
        graph.add_edge(src, rng.choice(labels), trg)
    return graph


def random_tree(num_nodes: int, label: str = DEFAULT_LABEL, seed: int = 0,
                name: str | None = None, direction: str = "child-to-parent") -> LabeledGraph:
    """Generate a random recursive tree of ``num_nodes`` nodes.

    ``tree_1`` is a single node; ``tree_{i+1}`` attaches node ``i`` as a
    child of a uniformly chosen existing node (the construction described in
    Section V-B).  ``direction`` controls edge orientation: the
    same-generation workloads expect ``child-to-parent`` edges.
    """
    if num_nodes <= 0:
        raise DatasetError("num_nodes must be positive")
    if direction not in ("child-to-parent", "parent-to-child"):
        raise DatasetError(f"unknown direction {direction!r}")
    rng = random.Random(seed)
    graph = LabeledGraph(name=name or f"tree_{num_nodes}")
    for node in range(1, num_nodes):
        parent = rng.randrange(node)
        if direction == "child-to-parent":
            graph.add_edge(node, label, parent)
        else:
            graph.add_edge(parent, label, node)
    return graph


def chain_graph(length: int, label: str = DEFAULT_LABEL,
                name: str | None = None) -> LabeledGraph:
    """A simple directed chain 0 -> 1 -> ... -> length (for depth testing)."""
    if length <= 0:
        raise DatasetError("length must be positive")
    graph = LabeledGraph(name=name or f"chain_{length}")
    for node in range(length):
        graph.add_edge(node, label, node + 1)
    return graph


def layered_graph(num_layers: int, width: int, labels: tuple[str, ...],
                  seed: int = 0, fan_out: int = 2,
                  name: str | None = None) -> LabeledGraph:
    """A layered DAG where edges only go from layer i to layer i+1.

    Useful for the anbn workloads: labelling the first half of the layers
    ``a`` and the second half ``b`` yields graphs with many a^n b^n paths.
    """
    if num_layers < 2 or width <= 0:
        raise DatasetError("need at least two layers and a positive width")
    rng = random.Random(seed)
    graph = LabeledGraph(name=name or f"layered_{num_layers}x{width}")
    for layer in range(num_layers - 1):
        label = labels[layer * len(labels) // (num_layers - 1)] \
            if labels else DEFAULT_LABEL
        for position in range(width):
            source = f"n{layer}_{position}"
            for _ in range(fan_out):
                target = f"n{layer + 1}_{rng.randrange(width)}"
                graph.add_edge(source, label, target)
    return graph
