"""Synthetic protein graphs modelled after the gMark Uniprot benchmark.

The paper's scalability experiments use ``uniprot_n`` graphs generated with
the gMark tool from the Uniprot schema.  This module generates graphs with
the same schema (the predicates the Q26-Q50 workload navigates) and
comparable degree shapes:

* ``interacts`` (abbreviated ``int``): protein - protein, scale-free-ish,
* ``encodes`` (``enc``): gene - protein,
* ``occurs`` (``occ``): protein - tissue,
* ``hasKeyword`` (``hKw``): protein - keyword (keywords are hubs),
* ``reference`` (``ref``): protein - publication,
* ``authoredBy`` (``auth``): publication - author,
* ``publishes`` (``pub``): journal - publication.

``uniprot_graph(num_edges=...)`` targets an approximate edge count, which
is how the paper names its instances (uniprot_1M, uniprot_5M, ...); the
reproduction uses much smaller instances, documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import random

from ..data.graph import LabeledGraph
from ..errors import DatasetError

#: The abbreviations used in the paper's query figure, mapped to predicates.
ABBREVIATIONS = {
    "int": "int",
    "enc": "enc",
    "occ": "occ",
    "hKw": "hKw",
    "ref": "ref",
    "auth": "auth",
    "pub": "pub",
}

#: Relative share of each predicate in the generated edge budget, roughly
#: following the gMark Uniprot schema proportions.
_EDGE_SHARES = {
    "int": 0.30,
    "enc": 0.10,
    "occ": 0.15,
    "hKw": 0.15,
    "ref": 0.15,
    "auth": 0.10,
    "pub": 0.05,
}


def uniprot_graph(num_edges: int = 10_000, seed: int = 0,
                  name: str | None = None) -> LabeledGraph:
    """Generate a Uniprot-shaped labelled graph with about ``num_edges`` edges."""
    if num_edges < 100:
        raise DatasetError("num_edges must be at least 100")
    rng = random.Random(seed)
    graph = LabeledGraph(name=name or f"uniprot_{num_edges}")

    num_proteins = max(20, num_edges // 8)
    num_genes = max(10, num_proteins // 3)
    num_tissues = max(5, num_proteins // 20)
    num_keywords = max(5, num_proteins // 25)
    num_publications = max(10, num_proteins // 4)
    num_authors = max(5, num_publications // 3)
    num_journals = max(3, num_publications // 20)

    proteins = [f"protein_{i}" for i in range(num_proteins)]
    genes = [f"gene_{i}" for i in range(num_genes)]
    tissues = [f"tissue_{i}" for i in range(num_tissues)]
    keywords = [f"keyword_{i}" for i in range(num_keywords)]
    publications = [f"pub_{i}" for i in range(num_publications)]
    authors = [f"author_{i}" for i in range(num_authors)]
    journals = [f"journal_{i}" for i in range(num_journals)]

    def preferential(pool: list[str]) -> str:
        """Skewed choice: low indices are hubs (a cheap power-law stand-in)."""
        exponent = rng.random() ** 2.5
        return pool[int(exponent * (len(pool) - 1))]

    budget = {label: int(share * num_edges) for label, share in _EDGE_SHARES.items()}
    for _ in range(budget["int"]):
        graph.add_edge(rng.choice(proteins), "int", preferential(proteins))
    for _ in range(budget["enc"]):
        graph.add_edge(rng.choice(genes), "enc", rng.choice(proteins))
    for _ in range(budget["occ"]):
        graph.add_edge(rng.choice(proteins), "occ", preferential(tissues))
    for _ in range(budget["hKw"]):
        graph.add_edge(rng.choice(proteins), "hKw", preferential(keywords))
    for _ in range(budget["ref"]):
        graph.add_edge(rng.choice(proteins), "ref", rng.choice(publications))
    for _ in range(budget["auth"]):
        graph.add_edge(rng.choice(publications), "auth", preferential(authors))
    for _ in range(budget["pub"]):
        graph.add_edge(rng.choice(journals), "pub", rng.choice(publications))
    return graph


def uniprot_constants(graph: LabeledGraph) -> dict[str, str]:
    """Return representative constants for the filtered Uniprot queries.

    The paper's queries use opaque constants (``C``); the workload
    definitions substitute them with entities that actually occur in the
    generated graph, chosen deterministically: the most connected protein,
    tissue, keyword, publication and author.
    """
    def busiest_source(label: str, fallback: str) -> str:
        edges = graph.edges(label)
        if not edges:
            return fallback
        counts: dict[str, int] = {}
        for row in edges.to_dicts():
            counts[row["src"]] = counts.get(row["src"], 0) + 1
        return max(sorted(counts), key=lambda node: counts[node])

    def busiest_target(label: str, fallback: str) -> str:
        edges = graph.edges(label)
        if not edges:
            return fallback
        counts: dict[str, int] = {}
        for row in edges.to_dicts():
            counts[row["trg"]] = counts.get(row["trg"], 0) + 1
        return max(sorted(counts), key=lambda node: counts[node])

    return {
        "protein": busiest_source("int", "protein_0"),
        "tissue": busiest_target("occ", "tissue_0"),
        "keyword": busiest_target("hKw", "keyword_0"),
        "publication": busiest_target("ref", "pub_0"),
        "author": busiest_target("auth", "author_0"),
        "journal": busiest_source("pub", "journal_0"),
    }
