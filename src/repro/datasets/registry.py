"""A name-based registry of the datasets used by benchmarks and examples.

Benchmarks refer to datasets by name (``yago_like``, ``uniprot_10k``,
``rnd_1000_0.01`` ...).  The registry maps those names to generator calls so
that every benchmark, example and test builds its data the same way, with
the same seeds, and the mapping from paper dataset to reproduction dataset
is recorded in one place.
"""

from __future__ import annotations

from collections.abc import Callable

from ..data.graph import LabeledGraph
from ..errors import DatasetError
from .random_graphs import chain_graph, erdos_renyi_graph, random_tree
from .social import social_graph_suite
from .uniprot import uniprot_graph
from .yago import yago_like_graph

#: Factory registry: name -> zero-argument callable building the graph.
_REGISTRY: dict[str, Callable[[], LabeledGraph]] = {
    # Knowledge graph (Yago stand-in) at two scales.
    "yago_like_small": lambda: yago_like_graph(scale=120, seed=7),
    "yago_like": lambda: yago_like_graph(scale=400, seed=7),
    "yago_like_large": lambda: yago_like_graph(scale=1200, seed=7),
    # Uniprot-shaped graphs (the paper's 1M/5M/10M-edge instances, scaled).
    "uniprot_small": lambda: uniprot_graph(num_edges=2_000, seed=11),
    "uniprot_medium": lambda: uniprot_graph(num_edges=6_000, seed=11),
    "uniprot_large": lambda: uniprot_graph(num_edges=12_000, seed=11),
    # Random graphs for the closure experiments.
    "rnd_small": lambda: erdos_renyi_graph(400, num_edges=2_000, seed=3,
                                           name="rnd_small"),
    "rnd_labeled": lambda: erdos_renyi_graph(
        500, num_edges=2_500, seed=3,
        labels=tuple(f"a{i}" for i in range(1, 11)), name="rnd_labeled"),
    "tree_medium": lambda: random_tree(800, seed=5, name="tree_medium"),
    "chain": lambda: chain_graph(200, name="chain"),
}


def available_datasets() -> tuple[str, ...]:
    """Names of all registered datasets (social suite graphs excluded)."""
    return tuple(sorted(_REGISTRY))


def load_dataset(name: str) -> LabeledGraph:
    """Build a registered dataset by name."""
    if name in _REGISTRY:
        return _REGISTRY[name]()
    suite = social_graph_suite(scale=1.0)
    if name in suite:
        return suite[name]
    raise DatasetError(
        f"unknown dataset {name!r}; known datasets: "
        f"{', '.join(available_datasets() + tuple(sorted(suite)))}")


def register_dataset(name: str, factory: Callable[[], LabeledGraph]) -> None:
    """Register a custom dataset factory (used by tests and user code)."""
    _REGISTRY[name] = factory
