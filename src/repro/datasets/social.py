"""Stand-ins for the real social / collaboration graphs of the paper.

The non-regular query experiments (Fig. 11) run over graphs from the SNAP
and ICON collections (Facebook, Epinions, Reddit, academic co-authorship
and genealogy trees).  Those dumps are not available offline, so this
module provides small synthetic graphs with comparable topological
character, each registered under the name the benchmark tables use:

* preferential-attachment graphs for the social networks (hubs, short
  diameters),
* deep random trees for the genealogy / academic-tree datasets,
* denser Erdos-Renyi graphs for the interaction networks.

Every generator produces a single-label (``edge``) graph, which is what the
same-generation and anbn workloads expect, plus an ``a``/``b`` labelling
variant used by the anbn queries.
"""

from __future__ import annotations

import random

from ..data.graph import LabeledGraph
from ..errors import DatasetError
from .random_graphs import erdos_renyi_graph, random_tree


def preferential_attachment_graph(num_nodes: int, edges_per_node: int = 2,
                                  label: str = "edge", seed: int = 0,
                                  name: str | None = None) -> LabeledGraph:
    """Barabasi-Albert style graph: new nodes attach to well-connected ones."""
    if num_nodes < 3 or edges_per_node < 1:
        raise DatasetError("need at least 3 nodes and 1 edge per node")
    rng = random.Random(seed)
    graph = LabeledGraph(name=name or f"pa_{num_nodes}_{edges_per_node}")
    targets: list[int] = [0, 1]
    graph.add_edge(1, label, 0)
    for node in range(2, num_nodes):
        for _ in range(edges_per_node):
            target = rng.choice(targets)
            if target != node:
                graph.add_edge(node, label, target)
                targets.append(target)
        targets.append(node)
    return graph


def relabel_for_anbn(graph: LabeledGraph, seed: int = 0,
                     a_label: str = "a", b_label: str = "b") -> LabeledGraph:
    """Return a copy of ``graph`` whose edges are randomly labelled a or b.

    The anbn workload needs two labels; real datasets have only one, so the
    paper (and this reproduction) randomly split the edges.
    """
    rng = random.Random(seed)
    relabelled = LabeledGraph(name=f"{graph.name}_ab")
    for src, _, trg in graph.iter_triples():
        relabelled.add_edge(src, a_label if rng.random() < 0.5 else b_label, trg)
    return relabelled


def social_graph_suite(scale: float = 1.0, seed: int = 0) -> dict[str, LabeledGraph]:
    """The graph suite used by the non-regular query benchmark (Fig. 11).

    ``scale`` multiplies every node count, so the suite can be shrunk for
    quick test runs or grown for longer benchmark runs.
    """
    def nodes(base: int) -> int:
        return max(20, int(base * scale))

    return {
        # Genealogy / academic trees: deep, sparse.
        "AcTree": random_tree(nodes(400), seed=seed, name="AcTree"),
        "Wikitree": random_tree(nodes(800), seed=seed + 1, name="Wikitree"),
        "Fr-Royalty": random_tree(nodes(150), seed=seed + 2, name="Fr-Royalty"),
        # Social networks: hubby, short paths.
        "Facebook": preferential_attachment_graph(nodes(300), 3, seed=seed + 3,
                                                  name="Facebook"),
        "Epinions": preferential_attachment_graph(nodes(500), 2, seed=seed + 4,
                                                  name="Epinions"),
        "Reddit": preferential_attachment_graph(nodes(600), 2, seed=seed + 5,
                                                name="Reddit"),
        "TW-Cannes": preferential_attachment_graph(nodes(350), 2, seed=seed + 6,
                                                   name="TW-Cannes"),
        "Coauth-MAG": preferential_attachment_graph(nodes(450), 3, seed=seed + 7,
                                                    name="Coauth-MAG"),
        # Interaction / rating networks: denser random graphs.
        "Ragusan": erdos_renyi_graph(nodes(120), num_edges=nodes(480),
                                     seed=seed + 8, name="Ragusan"),
        "Wikidata_p": erdos_renyi_graph(nodes(200), num_edges=nodes(700),
                                        seed=seed + 9, name="Wikidata_p"),
        "Higgs-RW": erdos_renyi_graph(nodes(250), num_edges=nodes(900),
                                      seed=seed + 10, name="Higgs-RW"),
        "Gottron": erdos_renyi_graph(nodes(180), num_edges=nodes(650),
                                     seed=seed + 11, name="Gottron"),
    }
