"""EXPLAIN ANALYZE: render one traced execution as an annotated span tree.

:meth:`Query.explain_analyze` executes a query under a private, enabled
:class:`~repro.obs.tracing.Tracer` and hands the finished records here.
The report shows, per pipeline stage, the measured wall time and what the
stage observed — plan-cache and result-cache outcomes, the physical
strategy chosen per fixpoint, per-iteration delta and accumulated
cardinalities, and the **estimate-vs-actual drift**: the ratio between
the cost model's estimated cardinality and the rows the execution
actually produced.  Drift is the raw material of ROADMAP item 4's
feedback-driven optimizer — a recorded actual to compare future
estimates against.

The renderer is deliberately dumb: it only reads
:class:`~repro.obs.tracing.SpanRecord` data, so anything that shows up
in a trace (maintenance decisions, commits, service requests) renders
the same way, and tests can assert on the structured report rather than
on screen-scraped text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .tracing import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..session.session import QueryResult

#: Span names the instrumented pipeline emits (shared vocabulary between
#: the call sites, this renderer and the tests — see DESIGN.md's span
#: taxonomy table).
QUERY = "query"
PARSE = "query.parse"
TRANSLATE = "query.translate"
PLAN = "session.resolve_plan"
EXECUTE = "session.execute_plan"
PHYSICAL = "execute.term"
FIXPOINT = "fixpoint"
ITERATION = "fixpoint.iteration"
LOCAL_LOOP = "fixpoint.local_loop"
COMMIT = "session.commit"
MAINTENANCE = "maintenance.pass"
MAINTENANCE_ENTRY = "maintenance.entry"
SERVICE_REQUEST = "service.request"
HTTP_REQUEST = "http.request"

#: Attributes whose values are rendered specially.
_HIDDEN_ATTRIBUTES = frozenset({"graph"})


@dataclass
class SpanNode:
    """One span with its children resolved (the render tree)."""

    record: SpanRecord
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.name

    def attribute(self, key: str, default: object = None) -> object:
        return self.record.attribute(key, default)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["SpanNode"]:
        return [node for node in self.walk() if node.name == name]

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly rendering of the subtree (the wire shape)."""
        return {
            "name": self.record.name,
            "duration_seconds": round(self.record.duration_seconds, 6),
            "attributes": {key: value
                           for key, value in self.record.attributes},
            "children": [child.to_dict() for child in self.children],
        }


def build_tree(records: list[SpanRecord]) -> list[SpanNode]:
    """Resolve parent links into trees (roots in start order).

    Records arrive in *finish* order (children before parents); children
    of one parent are re-sorted by start time so iteration spans render
    in iteration order.
    """
    nodes = {record.span_id: SpanNode(record) for record in records}
    roots: list[SpanNode] = []
    for record in records:
        node = nodes[record.span_id]
        parent = nodes.get(record.parent_id) if record.parent_id else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.record.started_at)
    roots.sort(key=lambda root: root.record.started_at)
    return roots


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _format_attributes(record: SpanRecord) -> str:
    parts = [f"{key}={_format_value(value)}"
             for key, value in record.attributes
             if key not in _HIDDEN_ATTRIBUTES]
    return f"  [{', '.join(parts)}]" if parts else ""


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} us"


def render_tree(roots: list[SpanNode]) -> str:
    """The classic box-drawing tree, one line per span."""
    lines: list[str] = []

    def visit(node: SpanNode, prefix: str, branch: str,
              child_prefix: str) -> None:
        record = node.record
        lines.append(f"{prefix}{branch}{record.name}"
                     f"{_format_attributes(record)}"
                     f"  ({_format_duration(record.duration_seconds)})")
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            visit(child, child_prefix,
                  "└─ " if last else "├─ ",
                  child_prefix + ("   " if last else "│  "))

    for root in roots:
        visit(root, "", "", "")
    return "\n".join(lines)


@dataclass
class ExplainAnalyzeReport:
    """Everything :meth:`Query.explain_analyze` produced.

    ``str(report)`` (or ``report.render()``) is the human surface;
    the fields are the structured surface tests and the future
    feedback-driven optimizer read.
    """

    query_text: str
    result: "QueryResult"
    records: list[SpanRecord]
    roots: list[SpanNode] = field(init=False)

    def __post_init__(self) -> None:
        self.roots = build_tree(self.records)

    # -- Structured accessors ------------------------------------------------

    def spans(self, name: str) -> list[SpanNode]:
        """Every span of the given name, in start order."""
        found = [node for root in self.roots for node in root.find(name)]
        found.sort(key=lambda node: node.record.started_at)
        return found

    @property
    def fixpoints(self) -> list[SpanNode]:
        return self.spans(FIXPOINT)

    @property
    def iterations(self) -> list[SpanNode]:
        return self.spans(ITERATION)

    @property
    def plan_cache_hit(self) -> bool | None:
        return self._stage_attribute(PLAN, "cache_hit")

    @property
    def result_cache_hit(self) -> bool | None:
        return self._stage_attribute(EXECUTE, "result_cache_hit")

    @property
    def estimated_rows(self) -> int | None:
        value = self._stage_attribute(PLAN, "estimated_rows")
        return int(value) if value is not None else None

    @property
    def actual_rows(self) -> int:
        return len(self.result.relation)

    @property
    def drift(self) -> float | None:
        """actual / estimated rows (1.0 = the cost model was spot on).

        ``None`` when no estimate exists (optimizer off, cached plan
        without a recorded estimate).
        """
        estimated = self.estimated_rows
        if not estimated:
            return None
        return self.actual_rows / estimated

    def _stage_attribute(self, span_name: str, key: str) -> object:
        for node in self.spans(span_name):
            value = node.attribute(key)
            if value is not None:
                return value
        return None

    def to_dict(self) -> dict[str, object]:
        """The report as JSON-friendly data (the ``/v1/explain`` body)."""
        return {
            "query": self.query_text,
            "rows": self.actual_rows,
            "estimated_rows": self.estimated_rows,
            "drift": self.drift,
            "plan_cache_hit": self.plan_cache_hit,
            "result_cache_hit": self.result_cache_hit,
            "fixpoint_iterations": len(self.iterations),
            "spans": [root.to_dict() for root in self.roots],
        }

    # -- Rendering -----------------------------------------------------------

    def render(self) -> str:
        header = [f"EXPLAIN ANALYZE  {self.query_text}"]
        drift = self.drift
        summary = [
            f"rows: {self.actual_rows}",
            f"estimated: {self.estimated_rows if self.estimated_rows is not None else 'n/a'}",
            f"drift: {f'{drift:.2f}x' if drift is not None else 'n/a'}",
            f"plan cache: {_cache_label(self.plan_cache_hit)}",
            f"result cache: {_cache_label(self.result_cache_hit)}",
        ]
        iterations = self.iterations
        if iterations:
            summary.append(f"fixpoint iterations: {len(iterations)}")
        header.append("  " + "  |  ".join(summary))
        return "\n".join(header) + "\n\n" + render_tree(self.roots) + "\n"

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return (f"ExplainAnalyzeReport(rows={self.actual_rows}, "
                f"spans={len(self.records)})")


def _cache_label(hit: bool | None) -> str:
    if hit is None:
        return "off"
    return "hit" if hit else "miss"
