"""Observability: tracing, metrics, structured logs, EXPLAIN ANALYZE.

The operational layer of the system (ROADMAP item 5's substrate):

* :mod:`repro.obs.tracing` — hierarchical spans, ContextVar-propagated
  across threads, picklable handoff across processes; off by default
  with near-zero cost,
* :mod:`repro.obs.metrics` — one registry of named counters / gauges /
  histograms with Prometheus-text and JSON-lines exports,
* :mod:`repro.obs.logs` — JSON-lines structured logging with trace
  correlation (``configure_logging`` is the documented entry point),
* :mod:`repro.obs.explain` — the span-tree report behind
  :meth:`Query.explain_analyze`.
"""

from .explain import ExplainAnalyzeReport, SpanNode, build_tree, render_tree
from .logs import (
    JsonLinesFormatter,
    configure_logging,
    get_logger,
    log_event,
    span_exporter,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .tracing import (
    NOOP_SPAN,
    Span,
    SpanRecord,
    TraceHandoff,
    Tracer,
    activate,
    configure_tracing,
    current_handoff,
    current_span_id,
    current_trace_id,
    current_tracer,
    run_traced_task,
    span,
    suspended,
    tracing_enabled,
)

__all__ = [
    "NOOP_SPAN",
    "Counter",
    "ExplainAnalyzeReport",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "Span",
    "SpanNode",
    "SpanRecord",
    "TraceHandoff",
    "Tracer",
    "activate",
    "build_tree",
    "configure_logging",
    "configure_tracing",
    "current_handoff",
    "current_span_id",
    "current_trace_id",
    "current_tracer",
    "get_logger",
    "get_registry",
    "log_event",
    "render_tree",
    "run_traced_task",
    "set_registry",
    "span",
    "span_exporter",
    "suspended",
    "tracing_enabled",
]
