"""One metrics registry for the whole pipeline.

Before this module the system's telemetry was three disjoint islands —
:class:`~repro.service.metrics.ServiceMetrics` (serving counters),
:class:`~repro.distributed.cluster.ClusterMetrics` (per-execution
communication counters) and
:class:`~repro.service.view_maintenance.MaintenanceStats` (per-commit
decisions) — each with its own ``summary()`` and no shared read surface.
They all still exist (their shapes are load-bearing for benchmarks and
tests), but they now additionally *publish* into a
:class:`MetricsRegistry` of named instruments:

* :class:`Counter` — monotonically increasing totals
  (``repro_queries_served_total``),
* :class:`Gauge` — last-written values (``repro_snapshot_version``),
* :class:`Histogram` — bounded sliding windows with percentile snapshots
  (``repro_query_latency_seconds``).

Instruments carry optional **labels** (``counter("repro_commits_total",
graph="yago")``), so multi-graph sessions stay distinguishable.  The
registry is thread-safe, and has two export surfaces:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  every scraper understands (the precursor to ROADMAP item 5's
  ``/metrics`` endpoint),
* :meth:`MetricsRegistry.render_jsonl` — one JSON object per instrument,
  the shape the structured log pipeline ingests.

A process-global default registry (:func:`get_registry`) is what the
instrumented call sites publish to; tests build private registries.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass

from ..percentiles import DEFAULT_PERCENTILES, percentiles
from ..check.sanitizer import ordered_lock

#: Samples retained per histogram window (same bound and rationale as
#: ServiceMetrics: long-running services must not grow without limit).
DEFAULT_WINDOW = 8192

#: A label set, normalized to a sorted tuple so it can key a dict.
LabelSet = tuple[tuple[str, str], ...]


def _labels(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = ordered_lock("obs.counter")

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go anywhere (queue depth, head version)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = ordered_lock("obs.gauge")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded sliding window of observations with percentile snapshots.

    Count and sum are exact over the lifetime; percentiles describe the
    window (the same contract ServiceMetrics always had).
    """

    __slots__ = ("_window", "_count", "_sum", "_lock")

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._window: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._lock = ordered_lock("obs.histogram")

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentiles(self, fractions=DEFAULT_PERCENTILES) -> dict[float, float]:
        with self._lock:
            return percentiles(self._window, fractions)


@dataclass(frozen=True)
class _Key:
    name: str
    labels: LabelSet


class MetricsRegistry:
    """Thread-safe home of every named instrument.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so call sites
    never pre-register: ``registry.counter("repro_commits_total",
    graph="yago").inc()`` is the whole API.  Re-requesting a name with a
    different instrument kind raises — one name, one meaning.
    """

    def __init__(self) -> None:
        self._instruments: dict[_Key, object] = {}
        self._kinds: dict[str, type] = {}
        self._lock = ordered_lock("obs.registry")

    # -- Instrument access ---------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    def _get(self, kind: type, name: str, labels: dict[str, object]):
        key = _Key(name, _labels(labels))
        with self._lock:
            registered = self._kinds.get(name)
            if registered is not None and registered is not kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a "
                    f"{registered.__name__}, not a {kind.__name__}")
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = kind()
                self._instruments[key] = instrument
                self._kinds[name] = kind
            return instrument

    # -- Read surfaces -------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A flat, consistent ``name{labels} -> value`` view.

        Counters and gauges map to their value; histograms expand into
        ``_count`` / ``_sum`` / per-percentile entries.
        """
        with self._lock:
            items = list(self._instruments.items())
        flat: dict[str, object] = {}
        for key, instrument in sorted(items, key=lambda kv:
                                      (kv[0].name, kv[0].labels)):
            label = _render_labels(key.labels)
            if isinstance(instrument, Histogram):
                flat[f"{key.name}_count{label}"] = instrument.count
                flat[f"{key.name}_sum{label}"] = round(instrument.sum, 6)
                for fraction, value in instrument.percentiles().items():
                    flat[f"{key.name}_p{_fraction_name(fraction)}{label}"] = \
                        round(value, 6)
            else:
                flat[f"{key.name}{label}"] = instrument.value
        return flat

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (one metric per line)."""
        with self._lock:
            items = list(self._instruments.items())
        lines: list[str] = []
        typed: set[str] = set()
        for key, instrument in sorted(items, key=lambda kv:
                                      (kv[0].name, kv[0].labels)):
            if key.name not in typed:
                kind = ("counter" if isinstance(instrument, Counter)
                        else "gauge" if isinstance(instrument, Gauge)
                        else "histogram")
                lines.append(f"# TYPE {key.name} {kind}")
                typed.add(key.name)
            label = _render_labels(key.labels)
            if isinstance(instrument, Histogram):
                lines.append(f"{key.name}_count{label} {instrument.count}")
                lines.append(f"{key.name}_sum{label} {instrument.sum:g}")
                for fraction, value in instrument.percentiles().items():
                    quantile = _merge_labels(key.labels,
                                             ("quantile", f"{fraction:g}"))
                    lines.append(f"{key.name}{quantile} {value:g}")
            else:
                lines.append(f"{key.name}{label} {instrument.value:g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_jsonl(self) -> str:
        """One JSON object per instrument (the structured-log export)."""
        stamp = time.time()
        with self._lock:
            items = list(self._instruments.items())
        lines = []
        for key, instrument in sorted(items, key=lambda kv:
                                      (kv[0].name, kv[0].labels)):
            entry: dict[str, object] = {
                "ts": round(stamp, 3),
                "metric": key.name,
                "labels": dict(key.labels),
            }
            if isinstance(instrument, Histogram):
                entry["type"] = "histogram"
                entry["count"] = instrument.count
                entry["sum"] = round(instrument.sum, 6)
                entry["percentiles"] = {
                    f"p{_fraction_name(fraction)}": round(value, 6)
                    for fraction, value in instrument.percentiles().items()}
            else:
                entry["type"] = ("counter" if isinstance(instrument, Counter)
                                 else "gauge")
                entry["value"] = instrument.value
            lines.append(json.dumps(entry, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._kinds.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self)})"


def _fraction_name(fraction: float) -> str:
    """0.5 -> '50', 0.999 -> '99.9'."""
    scaled = fraction * 100.0
    return f"{int(scaled)}" if scaled == int(scaled) else f"{scaled:g}"


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _merge_labels(labels: LabelSet, extra: tuple[str, str]) -> str:
    return _render_labels(tuple(sorted((*labels, extra))))


#: The default registry instrumented call sites publish into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (tests isolate themselves here).

    Returns the previous registry so callers can restore it.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
