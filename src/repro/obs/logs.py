"""Structured (JSON-lines) logging with trace correlation.

The whole of ``src/`` used to contain exactly one ad-hoc
``logging.getLogger`` call site.  This module replaces that with a small
operational layer on top of the standard :mod:`logging` machinery:

* :func:`get_logger` — namespaced loggers under the ``repro.`` hierarchy
  (``repro.session``, ``repro.service``, ``repro.distributed``, ...);
  callers pass structured fields through ``extra={"fields": {...}}`` or
  the :func:`log_event` convenience,
* :func:`configure_logging` — the one documented entry point: attaches a
  JSON-lines handler to the ``repro`` root logger (idempotent —
  reconfiguring replaces the previous handler rather than stacking),
* :class:`JsonLinesFormatter` — one JSON object per record with
  timestamp, level, logger, message, the structured fields, and — when a
  span is open in the calling context — the current ``trace_id`` /
  ``span_id``, which is what correlates a log line with the query that
  emitted it,
* :func:`span_exporter` — an adapter streaming finished
  :class:`~repro.obs.tracing.SpanRecord`\\ s through a logger as JSON
  lines, for services that want a trace event log rather than an
  in-memory buffer.

Nothing here configures itself at import time: until
:func:`configure_logging` is called, the ``repro`` loggers propagate to
whatever the application configured, exactly like any well-behaved
library.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

from .tracing import SpanRecord, current_span_id, current_trace_id

#: The root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

#: Name of the handler installed by :func:`configure_logging` (used to
#: make reconfiguration replace instead of stack).
_HANDLER_NAME = "repro-obs-jsonl"


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """A logger in the ``repro.`` hierarchy.

    ``get_logger("repro.session")`` and ``get_logger("session")`` return
    the same logger; bare names are prefixed so every module logger
    shares the one root configured by :func:`configure_logging`.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per log record, trace-correlated when possible."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict[str, object] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            entry.update(fields)
        trace_id = current_trace_id()
        if trace_id is not None:
            entry["trace_id"] = trace_id
            entry["span_id"] = current_span_id()
        if record.exc_info:
            entry["exception"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True, default=str)


def configure_logging(level: int | str = logging.INFO,
                      stream: IO[str] | None = None) -> logging.Logger:
    """Attach the JSON-lines handler to the ``repro`` logger hierarchy.

    The single operational entry point: every module logger
    (``repro.session``, ``repro.service``, ``repro.distributed``, ...)
    inherits the handler and level.  Calling it again replaces the
    previous handler (new level, new stream) instead of stacking a
    second one, and propagation to the application's root logger is
    turned off so lines are not emitted twice.  Returns the root
    ``repro`` logger.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if handler.get_name() == _HANDLER_NAME:
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.set_name(_HANDLER_NAME)
    handler.setFormatter(JsonLinesFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def log_event(logger: logging.Logger, message: str,
              level: int = logging.INFO, **fields: object) -> None:
    """Emit one structured event: ``message`` plus key/value fields.

    The fields land as first-class JSON keys (not interpolated into the
    message), so downstream tooling filters on them directly.  Cheap when
    the level is disabled: the fields dict is the only work done.
    """
    if logger.isEnabledFor(level):
        logger.log(level, message, extra={"fields": fields})


def span_exporter(logger: logging.Logger | None = None,
                  level: int = logging.DEBUG):
    """An exporter streaming finished spans through a structured logger.

    Plug into ``Tracer(exporter=span_exporter())`` to get a JSON line per
    finished span (name, duration, attributes, ids) instead of — or in
    addition to — the tracer's in-memory record buffer.
    """
    target = logger if logger is not None else get_logger("repro.trace")

    def export(record: SpanRecord) -> None:
        if target.isEnabledFor(level):
            target.log(level, record.name, extra={"fields": {
                "event": "span",
                "trace_id": record.trace_id,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "duration_seconds": round(record.duration_seconds, 6),
                **dict(record.attributes),
            }})

    return export
