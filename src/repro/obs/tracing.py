"""Low-overhead hierarchical tracing for the query pipeline.

One query through the session is a *trip*: parse, translate, plan,
execute, fixpoint loops, per-iteration deltas, cache lookups, commits and
maintenance decisions.  This module records that trip as a tree of
**spans** — named, timed intervals with attributes — so the operator of a
long-running service (and :meth:`Query.explain_analyze`) can see where a
query's time went and what each stage observed.

Design constraints, in order:

1. **Off means free.**  Tracing is disabled by default and the disabled
   path must stay invisible on the hot fixpoint loop
   (``benchmarks/bench_obs_overhead.py`` asserts <= 5%).  Call sites
   either hoist ``tracer.enabled`` into a local before a loop, or call
   :func:`span` / :func:`current_tracer` at per-query granularity where a
   single :class:`~contextvars.ContextVar` read is noise.
2. **Spans nest across threads.**  The active tracer and the current
   span travel in :class:`~contextvars.ContextVar`\\ s.  Thread hand-offs
   inside the system (the session's background worker, the service's
   request workers, the ``threads`` executor backend) copy the submitting
   context with :func:`contextvars.copy_context`, so a span opened by the
   submitter is the parent of everything the worker does — and two
   concurrent queries never adopt each other's spans, because each task
   runs in its own context copy.
3. **Process boundaries hand off span ids.**  A ``processes`` executor
   cannot share the tracer object.  The task payload carries a
   :class:`TraceHandoff` (trace id + parent span id); the child process
   records into a fresh local tracer and returns the finished
   :class:`SpanRecord`\\ s with the task outcome, which the driver adopts
   into the live tracer (:meth:`Tracer.adopt`).

A :class:`Tracer` owns a bounded buffer of finished span records; the
buffer (not live ``Span`` objects) is the read surface — renderers build
the tree from records after the fact.
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar

from ..check.sanitizer import ordered_lock
from dataclasses import dataclass, field

#: Default bound on buffered finished spans per tracer: a forgotten
#: enabled tracer must not grow without limit on a busy service.
DEFAULT_SPAN_CAPACITY = 8192

#: Per-process monotonically increasing span id suffix.
_ids = itertools.count(1)


def _new_span_id() -> str:
    """A span id unique across the processes of one execution.

    The pid prefix keeps ids from a ``processes`` executor's children
    disjoint from the driver's without any cross-process coordination.
    """
    return f"{os.getpid():x}-{next(_ids):x}"


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: picklable, immutable, renderer-friendly."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    started_at: float
    duration_seconds: float
    attributes: tuple[tuple[str, object], ...] = ()

    def attribute(self, key: str, default: object = None) -> object:
        for name, value in self.attributes:
            if name == key:
                return value
        return default

    def reparented(self, parent_id: str | None,
                   trace_id: str | None = None) -> "SpanRecord":
        """A copy grafted under another parent (process-boundary adoption)."""
        return SpanRecord(
            trace_id=trace_id if trace_id is not None else self.trace_id,
            span_id=self.span_id, parent_id=parent_id, name=self.name,
            started_at=self.started_at,
            duration_seconds=self.duration_seconds,
            attributes=self.attributes)


@dataclass(frozen=True)
class TraceHandoff:
    """What crosses a process boundary: enough to re-join the trace."""

    trace_id: str
    parent_span_id: str | None


class Span:
    """A live span: context manager, attribute sink, ContextVar scope."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_id",
                 "started_at", "_perf_started", "_attributes", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: str | None, attributes: dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.started_at = time.time()
        self._perf_started = time.perf_counter()
        self._attributes = attributes
        self._token = None

    @property
    def enabled(self) -> bool:
        return True

    def set_attribute(self, key: str, value: object) -> "Span":
        self._attributes[key] = value
        return self

    def __enter__(self) -> "Span":
        self._token = _current_span.set(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _current_span.reset(self._token)
            self._token = None
        self.tracer._finish(SpanRecord(
            trace_id=self.trace_id, span_id=self.span_id,
            parent_id=self.parent_id, name=self.name,
            started_at=self.started_at,
            duration_seconds=time.perf_counter() - self._perf_started,
            attributes=tuple(self._attributes.items())))

    def __repr__(self) -> str:
        return f"Span({self.name!r}, id={self.span_id})"


class _NoopSpan:
    """The shared do-nothing span the disabled path hands out.

    Entering it does not touch the ContextVar, so a disabled ``with``
    block costs two method calls and nothing else.
    """

    __slots__ = ()

    enabled = False
    span_id = None
    trace_id = None

    def set_attribute(self, key: str, value: object) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Nothing to finish; never swallows the exception."""

    def __repr__(self) -> str:
        return "Span(<disabled>)"


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Produces spans and buffers their finished records (bounded).

    ``enabled=False`` (the default) makes :meth:`span` return the shared
    no-op span without allocating anything.  An optional ``exporter``
    callable receives every finished :class:`SpanRecord` — the JSON-lines
    structured logger plugs in here (see :mod:`repro.obs.logs`).
    """

    def __init__(self, enabled: bool = False,
                 capacity: int = DEFAULT_SPAN_CAPACITY,
                 exporter: Callable[[SpanRecord], None] | None = None):
        self.enabled = enabled
        self.exporter = exporter
        self._records: deque[SpanRecord] = deque(maxlen=capacity)
        self._lock = ordered_lock("obs.tracer")

    def span(self, name: str, **attributes: object):
        """Open a span under the current one (a no-op span when disabled)."""
        if not self.enabled:
            return NOOP_SPAN
        parent = _current_span.get()
        if parent is not None and parent.enabled:
            return Span(self, name, parent.trace_id, parent.span_id,
                        attributes)
        # A new root: the trace id doubles as the root span's id, so log
        # correlation needs only one value.
        span = Span(self, name, "pending", None, attributes)
        span.trace_id = span.span_id
        return span

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
        if self.exporter is not None:
            self.exporter(record)

    def adopt(self, records: Iterable[SpanRecord],
              handoff: TraceHandoff | None = None) -> None:
        """Graft records produced elsewhere (another process) into this
        tracer.

        Records whose parent is missing from the batch are re-rooted under
        ``handoff.parent_span_id`` and every record takes the handoff's
        trace id, so the driver's renderer sees one tree.
        """
        records = list(records)
        if handoff is not None:
            local_ids = {record.span_id for record in records}
            records = [
                record.reparented(
                    record.parent_id if record.parent_id in local_ids
                    else handoff.parent_span_id,
                    trace_id=handoff.trace_id)
                for record in records
            ]
        with self._lock:
            self._records.extend(records)

    def records(self) -> list[SpanRecord]:
        """Finished spans, oldest first (an independent copy)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:
        return (f"Tracer(enabled={self.enabled}, "
                f"buffered={len(self)})")


#: The disabled singleton ambient tracer: what every call site sees until
#: someone activates a real one.
_DISABLED_TRACER = Tracer(enabled=False)

#: Process-wide default, swapped by :func:`configure_tracing`.  Contexts
#: (and threads, which start on fresh contexts) that never called
#: :func:`activate` fall back to it.
_default_tracer: Tracer = _DISABLED_TRACER

_active_tracer: ContextVar[Tracer | None] = ContextVar("repro_active_tracer",
                                                       default=None)
_current_span: ContextVar[Span | None] = ContextVar("repro_current_span",
                                                    default=None)

#: Benchmark escape hatch (see :func:`suspended`): when set, the ambient
#: helpers short-circuit before the ContextVar read, giving the overhead
#: benchmark a floor to measure the disabled path against.
_suspended = False


def current_tracer() -> Tracer:
    """The tracer active in this context (a disabled one by default)."""
    if _suspended:
        return _DISABLED_TRACER
    tracer = _active_tracer.get()
    return tracer if tracer is not None else _default_tracer


def tracing_enabled() -> bool:
    """Fast ambient check call sites hoist before hot loops."""
    return current_tracer().enabled


def span(name: str, **attributes: object):
    """Open a span on the ambient tracer (no-op span when disabled)."""
    if _suspended:
        return NOOP_SPAN
    return current_tracer().span(name, **attributes)


def current_span_id() -> str | None:
    """Id of the innermost open span of this context, or ``None``."""
    current = _current_span.get()
    return current.span_id if current is not None else None


def current_trace_id() -> str | None:
    """Trace id of this context (for log correlation), or ``None``."""
    current = _current_span.get()
    return current.trace_id if current is not None else None


def current_handoff() -> TraceHandoff | None:
    """The handoff a process-boundary task should ship, or ``None``.

    ``None`` whenever tracing is off — shipping nothing keeps the
    disabled pickle payload identical to the pre-tracing one.
    """
    if _suspended or not current_tracer().enabled:
        return None
    current = _current_span.get()
    if current is None or not current.enabled:
        return None
    return TraceHandoff(trace_id=current.trace_id,
                        parent_span_id=current.span_id)


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the ambient tracer of this context.

    Scoped: the previous tracer is restored on exit, and the activation
    travels with :func:`contextvars.copy_context` into worker threads.
    """
    token = _active_tracer.set(tracer)
    try:
        yield tracer
    finally:
        _active_tracer.reset(token)


def configure_tracing(enabled: bool = True,
                      capacity: int = DEFAULT_SPAN_CAPACITY,
                      exporter: Callable[[SpanRecord], None] | None = None,
                      ) -> Tracer:
    """Install a process-default tracer (the non-scoped entry point).

    For scoped tracing — one query, one test — prefer ``activate(Tracer
    (enabled=True))``; this function swaps the process-wide *fallback*,
    affecting every thread and context that has not activated its own.
    """
    global _default_tracer
    tracer = Tracer(enabled=enabled, capacity=capacity, exporter=exporter)
    _default_tracer = tracer
    return tracer


@contextmanager
def suspended() -> Iterator[None]:
    """Short-circuit even the disabled-path ContextVar reads.

    This exists for one caller: ``benchmarks/bench_obs_overhead.py``
    measures the cost of the *disabled* tracing path against this floor
    (the same pattern as ``storage.compatibility_mode()``).  It is not a
    general off switch — it is the measurement baseline.
    """
    global _suspended
    _suspended = True
    try:
        yield
    finally:
        _suspended = False


def run_traced_task(fn, args: tuple, handoff: TraceHandoff | None):
    """Run one task under a handed-off trace context (worker side).

    With no handoff the call is direct.  With one — a traced task landed
    in another process — a fresh enabled tracer collects the task's
    spans, and the caller gets ``(value, records)`` so the records can
    travel back to the driver as data (see :meth:`Tracer.adopt`).
    """
    if handoff is None:
        return fn(*args), ()
    local = Tracer(enabled=True)
    with activate(local):
        value = fn(*args)
    return value, tuple(local.records())
