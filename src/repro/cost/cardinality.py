"""Cardinality estimation for mu-RA terms.

The estimator follows the classic System-R recipe for the non-recursive
operators (equality selectivity ``1/V``, join size ``|L|.|R| / max(V)``)
and the logarithm-based technique of the Dist-mu-RA cost model for
fixpoints: the growth of the recursion is simulated on the *estimates*
themselves, iterating at most ``log2(domain)`` times, which is the expected
convergence depth of a reachability-style fixpoint.

Estimates are represented with :class:`repro.data.stats.RelationStats`
(cardinality plus per-column distinct counts) so that they compose through
the operators.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from ..data.predicates import (And, ColumnEq, Compare, Eq, In, Not, Or,
                               Predicate, TruePredicate)
from ..data.relation import Relation
from ..data.stats import RelationStats, StatisticsCatalog
from ..errors import CostEstimationError
from ..algebra.conditions import decompose
from ..algebra.terms import (AntiProject, Antijoin, Filter, Fixpoint, Join,
                             Literal, Rename, RelVar, Term, Union)

#: Default selectivity for predicates the estimator has no statistics for.
DEFAULT_SELECTIVITY = 0.33
#: Hard cap on the number of simulated fixpoint iterations.
MAX_SIMULATED_ITERATIONS = 64


class CardinalityEstimator:
    """Estimate the cardinality (and per-column distinct counts) of terms."""

    def __init__(self, database: Mapping[str, Relation] | None = None,
                 catalog: StatisticsCatalog | None = None):
        if database is None and catalog is None:
            raise CostEstimationError(
                "the estimator needs a database or a statistics catalog")
        self.catalog = catalog if catalog is not None else StatisticsCatalog(database)

    # -- Public API -----------------------------------------------------------

    def estimate(self, term: Term,
                 env: Mapping[str, RelationStats] | None = None) -> RelationStats:
        """Return the estimated statistics of ``term``.

        ``env`` binds recursive variables to the statistics assumed for them
        (used internally when simulating fixpoint growth).
        """
        return self._estimate(term, dict(env or {}))

    def cardinality(self, term: Term) -> int:
        """Shortcut returning only the estimated row count."""
        return self.estimate(term).cardinality

    # -- Dispatch -------------------------------------------------------------

    def _estimate(self, term: Term, env: dict[str, RelationStats]) -> RelationStats:
        if isinstance(term, RelVar):
            if term.name in env:
                return env[term.name]
            return self.catalog.get(term.name)
        if isinstance(term, Literal):
            return RelationStats.of(term.relation)
        if isinstance(term, Filter):
            return self._estimate_filter(term, env)
        if isinstance(term, Union):
            return self._estimate_union(term, env)
        if isinstance(term, Join):
            return self._estimate_join(term, env)
        if isinstance(term, Antijoin):
            return self._estimate_antijoin(term, env)
        if isinstance(term, Rename):
            return self._estimate_rename(term, env)
        if isinstance(term, AntiProject):
            return self._estimate_antiproject(term, env)
        if isinstance(term, Fixpoint):
            return self._estimate_fixpoint(term, env)
        raise CostEstimationError(f"cannot estimate term of type {type(term).__name__}")

    # -- Non-recursive operators ----------------------------------------------

    def _estimate_filter(self, term: Filter, env) -> RelationStats:
        child = self._estimate(term.child, env)
        selectivity = self._selectivity(term.predicate, child)
        estimate = child.scaled(selectivity)
        distinct = dict(estimate.distinct_values)
        for column in term.predicate.columns():
            if isinstance(term.predicate, (Eq,)):
                distinct[column] = 1
            elif column in distinct:
                distinct[column] = max(1, int(distinct[column] * selectivity))
        return RelationStats(cardinality=estimate.cardinality, distinct_values=distinct)

    def _estimate_union(self, term: Union, env) -> RelationStats:
        left = self._estimate(term.left, env)
        right = self._estimate(term.right, env)
        cardinality = left.cardinality + right.cardinality
        distinct = dict(left.distinct_values)
        for column, count in right.distinct_values.items():
            distinct[column] = min(cardinality, distinct.get(column, 0) + count)
        return RelationStats(cardinality=cardinality, distinct_values=distinct)

    def _estimate_join(self, term: Join, env) -> RelationStats:
        left = self._estimate(term.left, env)
        right = self._estimate(term.right, env)
        common = set(left.distinct_values) & set(right.distinct_values)
        cardinality = left.cardinality * right.cardinality
        for column in common:
            cardinality /= max(left.distinct(column), right.distinct(column))
        cardinality = max(0, int(round(cardinality)))
        distinct: dict[str, int] = {}
        for column in set(left.distinct_values) | set(right.distinct_values):
            counts = []
            if column in left.distinct_values:
                counts.append(left.distinct(column))
            if column in right.distinct_values:
                counts.append(right.distinct(column))
            distinct[column] = max(1, min(min(counts), cardinality or 1))
        return RelationStats(cardinality=cardinality, distinct_values=distinct)

    def _estimate_antijoin(self, term: Antijoin, env) -> RelationStats:
        left = self._estimate(term.left, env)
        right = self._estimate(term.right, env)
        common = set(left.distinct_values) & set(right.distinct_values)
        if not common:
            survival = 0.0 if right.cardinality else 1.0
        else:
            # Fraction of left keys with no partner: crude independence model.
            survival = 1.0
            for column in common:
                coverage = min(1.0, right.distinct(column) / left.distinct(column))
                survival *= (1.0 - coverage * 0.5)
        return left.scaled(max(0.05, survival))

    def _estimate_rename(self, term: Rename, env) -> RelationStats:
        child = self._estimate(term.child, env)
        distinct = dict(child.distinct_values)
        if term.old in distinct:
            distinct[term.new] = distinct.pop(term.old)
        return RelationStats(cardinality=child.cardinality, distinct_values=distinct)

    def _estimate_antiproject(self, term: AntiProject, env) -> RelationStats:
        child = self._estimate(term.child, env)
        distinct = {column: count for column, count in child.distinct_values.items()
                    if column not in set(term.columns)}
        # Dropping columns can only merge duplicates: cap the cardinality by
        # the size of the remaining column domain.
        domain = 1
        for count in distinct.values():
            domain *= max(1, count)
            if domain > child.cardinality:
                domain = child.cardinality
                break
        cardinality = min(child.cardinality, max(1, domain)) if distinct else min(
            child.cardinality, 1)
        return RelationStats(cardinality=cardinality, distinct_values=distinct)

    # -- Fixpoints ---------------------------------------------------------------

    def _estimate_fixpoint(self, term: Fixpoint, env) -> RelationStats:
        decomposition = decompose(term)
        seed = self._estimate(decomposition.constant_part, env)
        if decomposition.variable_part is None:
            return seed
        # Simulate the semi-naive iteration on the estimates: the delta of
        # round i feeds the variable part of round i+1.  The number of
        # simulated rounds is logarithmic in the domain size, following the
        # log-based estimation technique used by the Dist-mu-RA cost model.
        domain = max(2, max([seed.cardinality] + list(seed.distinct_values.values())))
        rounds = min(MAX_SIMULATED_ITERATIONS, max(1, int(math.ceil(math.log2(domain))) + 1))
        total_cardinality = seed.cardinality
        total_distinct = dict(seed.distinct_values)
        delta = seed
        bound = self._fixpoint_bound(seed)
        for _ in range(rounds):
            inner_env = dict(env)
            inner_env[term.var] = delta
            produced = self._estimate(decomposition.variable_part, inner_env)
            if produced.cardinality <= 0:
                break
            delta = produced
            total_cardinality = min(bound, total_cardinality + produced.cardinality)
            for column, count in produced.distinct_values.items():
                current = total_distinct.get(column, 0)
                total_distinct[column] = min(bound, max(current, count))
            if total_cardinality >= bound:
                break
        return RelationStats(cardinality=int(total_cardinality),
                             distinct_values=total_distinct)

    @staticmethod
    def _fixpoint_bound(seed: RelationStats) -> int:
        """Upper bound on a fixpoint size: the product of column domains."""
        bound = 1
        for count in seed.distinct_values.values():
            bound *= max(1, count)
        # The reachability relation cannot exceed |domain|^2-ish; also never
        # let the bound drop below the seed itself.
        return max(seed.cardinality, min(bound * 64, 10 ** 12))

    # -- Predicates ----------------------------------------------------------------

    def _selectivity(self, predicate: Predicate, stats: RelationStats) -> float:
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, Eq):
            return stats.selectivity_equals(predicate.column)
        if isinstance(predicate, In):
            return min(1.0, len(predicate.values) * stats.selectivity_equals(
                predicate.column))
        if isinstance(predicate, Compare):
            if predicate.op in ("==",):
                return stats.selectivity_equals(predicate.column)
            if predicate.op in ("!=",):
                return 1.0 - stats.selectivity_equals(predicate.column)
            return DEFAULT_SELECTIVITY
        if isinstance(predicate, ColumnEq):
            return 1.0 / max(stats.distinct(predicate.left),
                             stats.distinct(predicate.right))
        if isinstance(predicate, And):
            return (self._selectivity(predicate.left, stats)
                    * self._selectivity(predicate.right, stats))
        if isinstance(predicate, Or):
            left = self._selectivity(predicate.left, stats)
            right = self._selectivity(predicate.right, stats)
            return min(1.0, left + right - left * right)
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self._selectivity(predicate.inner, stats))
        return DEFAULT_SELECTIVITY
