"""Cost estimation: cardinalities, operator costs, plan ranking."""

from .cardinality import (DEFAULT_SELECTIVITY, MAX_SIMULATED_ITERATIONS,
                          CardinalityEstimator)
from .cost_model import CostModel, CostReport
from .selection import RankedPlan, rank_plans, select_best_plan

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "CostReport",
    "DEFAULT_SELECTIVITY",
    "MAX_SIMULATED_ITERATIONS",
    "RankedPlan",
    "rank_plans",
    "select_best_plan",
]
