"""Plan ranking and selection based on the cost model."""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..data.relation import Relation
from ..data.stats import StatisticsCatalog
from ..errors import PlanSelectionError
from ..algebra.terms import Term
from .cost_model import CostModel


@dataclass(frozen=True)
class RankedPlan:
    """One logical plan together with its estimated cost."""

    term: Term
    cost: float
    estimated_cardinality: int


def rank_plans(plans: Iterable[Term],
               database: Mapping[str, Relation] | None = None,
               catalog: StatisticsCatalog | None = None,
               cost_model: CostModel | None = None) -> list[RankedPlan]:
    """Cost every plan and return them sorted by increasing estimated cost.

    Plans the cost model cannot estimate (which should not happen for terms
    produced by the rewriter, but may for hand-written ones) are ranked
    last with an infinite cost rather than dropped, so the caller still
    sees the full plan space.
    """
    model = cost_model if cost_model is not None else CostModel(
        database=database, catalog=catalog)
    ranked: list[RankedPlan] = []
    for plan in plans:
        try:
            report = model.report(plan)
            ranked.append(RankedPlan(term=plan, cost=report.cost,
                                     estimated_cardinality=report.estimate.cardinality))
        except Exception:
            ranked.append(RankedPlan(term=plan, cost=float("inf"),
                                     estimated_cardinality=0))
    ranked.sort(key=lambda plan: plan.cost)
    return ranked


def select_best_plan(plans: Iterable[Term],
                     database: Mapping[str, Relation] | None = None,
                     catalog: StatisticsCatalog | None = None,
                     cost_model: CostModel | None = None) -> RankedPlan:
    """Return the cheapest plan according to the cost model."""
    ranked = rank_plans(plans, database=database, catalog=catalog,
                        cost_model=cost_model)
    if not ranked:
        raise PlanSelectionError("no plan to select from")
    return ranked[0]
