"""Selinger-style cost model over mu-RA terms.

The CostEstimator component of Dist-mu-RA assigns to every logical plan an
abstract cost built from the estimated cardinalities of its sub-terms.  The
model here mirrors that design:

* scanning a relation costs its cardinality,
* a hash join costs the sum of its input and output cardinalities,
* a union costs its inputs plus the duplicate-eliminating pass on its
  output,
* a fixpoint costs the per-iteration cost of its variable part multiplied
  by the estimated number of iterations, plus the accumulation of the
  result (this is where plans that push filters/joins into the recursion
  win: their per-iteration input is much smaller).

Costs are unit-less; only their relative order matters for plan selection.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from ..data.relation import Relation
from ..data.stats import RelationStats, StatisticsCatalog
from ..errors import CostEstimationError
from ..algebra.conditions import decompose
from ..algebra.terms import (AntiProject, Antijoin, Filter, Fixpoint, Join,
                             Literal, Rename, RelVar, Term, Union)
from .cardinality import MAX_SIMULATED_ITERATIONS, CardinalityEstimator

#: Relative weight of one duplicate-elimination pass.
DEDUP_FACTOR = 1.0
#: Fixed per-iteration overhead of a fixpoint (scheduling, set difference).
ITERATION_OVERHEAD = 10.0


@dataclass(frozen=True)
class CostReport:
    """Cost of a term together with its estimated output cardinality."""

    cost: float
    estimate: RelationStats


class CostModel:
    """Assign an abstract evaluation cost to mu-RA terms."""

    def __init__(self, database: Mapping[str, Relation] | None = None,
                 catalog: StatisticsCatalog | None = None,
                 estimator: CardinalityEstimator | None = None):
        if estimator is not None:
            self.estimator = estimator
        else:
            self.estimator = CardinalityEstimator(database=database, catalog=catalog)

    # -- Public API -----------------------------------------------------------

    def cost(self, term: Term) -> float:
        """Return the estimated cost of evaluating ``term``."""
        return self.report(term).cost

    def report(self, term: Term,
               env: Mapping[str, RelationStats] | None = None) -> CostReport:
        """Return both the cost and the cardinality estimate of ``term``."""
        return self._report(term, dict(env or {}))

    # -- Dispatch -------------------------------------------------------------

    def _report(self, term: Term, env: dict[str, RelationStats]) -> CostReport:
        if isinstance(term, RelVar):
            estimate = self.estimator.estimate(term, env=env)
            return CostReport(cost=float(estimate.cardinality), estimate=estimate)
        if isinstance(term, Literal):
            estimate = RelationStats.of(term.relation)
            return CostReport(cost=float(estimate.cardinality), estimate=estimate)
        if isinstance(term, Filter):
            child = self._report(term.child, env)
            estimate = self.estimator.estimate(term, env=env)
            return CostReport(cost=child.cost + child.estimate.cardinality,
                              estimate=estimate)
        if isinstance(term, (Rename, AntiProject)):
            child = self._report(term.child, env)
            estimate = self.estimator.estimate(term, env=env)
            return CostReport(cost=child.cost + child.estimate.cardinality,
                              estimate=estimate)
        if isinstance(term, Union):
            left = self._report(term.left, env)
            right = self._report(term.right, env)
            estimate = self.estimator.estimate(term, env=env)
            dedup = DEDUP_FACTOR * estimate.cardinality
            return CostReport(cost=left.cost + right.cost + dedup, estimate=estimate)
        if isinstance(term, Join):
            left = self._report(term.left, env)
            right = self._report(term.right, env)
            estimate = self.estimator.estimate(term, env=env)
            work = (left.estimate.cardinality + right.estimate.cardinality
                    + estimate.cardinality)
            return CostReport(cost=left.cost + right.cost + work, estimate=estimate)
        if isinstance(term, Antijoin):
            left = self._report(term.left, env)
            right = self._report(term.right, env)
            estimate = self.estimator.estimate(term, env=env)
            work = left.estimate.cardinality + right.estimate.cardinality
            return CostReport(cost=left.cost + right.cost + work, estimate=estimate)
        if isinstance(term, Fixpoint):
            return self._report_fixpoint(term, env)
        raise CostEstimationError(f"cannot cost term of type {type(term).__name__}")

    # -- Fixpoint -------------------------------------------------------------

    def _report_fixpoint(self, term: Fixpoint, env: dict[str, RelationStats]) -> CostReport:
        decomposition = decompose(term)
        seed_report = self._report(decomposition.constant_part, env)
        estimate = self.estimator.estimate(term, env=env)
        if decomposition.variable_part is None:
            return CostReport(cost=seed_report.cost, estimate=estimate)
        # Estimated number of iterations: logarithmic in the result size
        # (log-based technique), never below 2.
        iterations = max(2, int(math.ceil(math.log2(max(2, estimate.cardinality)))))
        iterations = min(iterations, MAX_SIMULATED_ITERATIONS)
        # Cost of one iteration of the variable part, with the recursive
        # variable bound to an "average delta" (total size / iterations).
        average_delta = estimate.scaled(1.0 / iterations)
        inner_env = dict(env)
        inner_env[term.var] = average_delta
        iteration_report = self._report(decomposition.variable_part, inner_env)
        loop_cost = iterations * (iteration_report.cost + ITERATION_OVERHEAD)
        accumulation = DEDUP_FACTOR * estimate.cardinality
        total = seed_report.cost + loop_cost + accumulation
        return CostReport(cost=total, estimate=estimate)
