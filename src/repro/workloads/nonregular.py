"""Non-regular (class C7) workloads: anbn and same-generation queries.

These queries cannot be written as UCRPQs; they are expressed directly as
mu-RA terms (Section V-D of the paper).  For the BigDatalog comparison the
module also provides the equivalent Datalog programs, so both systems
evaluate exactly the same semantics.

* :func:`anbn_term` — pairs of nodes connected by ``a^n b^n`` paths,
* :func:`same_generation_term` — pairs of nodes at the same depth below a
  common ancestor (edges point child -> parent),
* :func:`same_generation_facts_term` — the per-predicate variant over the
  (src, pred, trg) facts table, whose output keeps the ``pred`` column so it
  can be filtered (:func:`filtered_same_generation_term`) or joined with a
  predicate list (:func:`joined_same_generation_term`), exactly as in the
  paper's Filtered SG and Joined SG queries.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..algebra.builders import compose, fresh_fixpoint_variable, swap_src_trg
from ..algebra.terms import (Filter, Fixpoint, Join, Literal, RelVar, Term,
                             Union)
from ..baselines.datalog.ast import Atom, Const, Program, Rule, Var
from ..data.graph import PRED, SRC, TRG
from ..data.predicates import Eq
from ..data.relation import Relation
from .common import WorkloadQuery, mu_ra_query

# ---------------------------------------------------------------------------
# anbn
# ---------------------------------------------------------------------------


def anbn_term(a_label: str = "a", b_label: str = "b") -> Fixpoint:
    """The a^n b^n query as a mu-RA fixpoint.

    ``mu(X = compose(a, b) U compose(a, compose(X, b)))``: the base case is
    one ``a`` edge followed by one ``b`` edge; the recursive case wraps an
    existing a^n b^n path with one more ``a`` on the left and one more ``b``
    on the right.  The fixpoint has no stable column, which is the paper's
    example of a query where stable-column partitioning cannot apply (the
    split falls back to round-robin).
    """
    var = fresh_fixpoint_variable("ANBN")
    a, b = RelVar(a_label), RelVar(b_label)
    base = compose(a, b)
    step = compose(a, compose(RelVar(var), b))
    return Fixpoint(var, Union(base, step), direction="both-ends")


def anbn_datalog(a_label: str = "a", b_label: str = "b") -> Program:
    """The same a^n b^n query as a Datalog program (goal ``answer``)."""
    x, y, m, n = Var("x"), Var("y"), Var("m"), Var("n")
    program = Program(goal="answer")
    program.add(Rule(Atom("anbn", (x, y)),
                     (Atom(a_label, (x, m)), Atom(b_label, (m, y)))))
    program.add(Rule(Atom("anbn", (x, y)),
                     (Atom(a_label, (x, m)), Atom("anbn", (m, n)),
                      Atom(b_label, (n, y)))))
    program.add(Rule(Atom("answer", (x, y)), (Atom("anbn", (x, y)),)))
    return program


# ---------------------------------------------------------------------------
# Same generation (single edge relation)
# ---------------------------------------------------------------------------


def same_generation_term(edge_label: str = "edge") -> Fixpoint:
    """Same-generation pairs over a child -> parent edge relation.

    ``sg(x, y)`` holds when x and y share a parent, or when their parents
    are themselves of the same generation::

        mu(X = compose(R, R^-1) U compose(compose(R, X), R^-1))
    """
    var = fresh_fixpoint_variable("SG")
    up = RelVar(edge_label)
    down = swap_src_trg(up)
    base = compose(up, down)
    step = compose(compose(up, RelVar(var)), down)
    return Fixpoint(var, Union(base, step), direction="both-ends")


def same_generation_datalog(edge_label: str = "edge") -> Program:
    """The equivalent Datalog program (goal ``answer``)."""
    x, y, z, w = Var("x"), Var("y"), Var("z"), Var("w")
    program = Program(goal="answer")
    program.add(Rule(Atom("sg", (x, y)),
                     (Atom(edge_label, (x, z)), Atom(edge_label, (y, z)))))
    program.add(Rule(Atom("sg", (x, y)),
                     (Atom(edge_label, (x, z)), Atom("sg", (z, w)),
                      Atom(edge_label, (y, w)))))
    program.add(Rule(Atom("answer", (x, y)), (Atom("sg", (x, y)),)))
    return program


# ---------------------------------------------------------------------------
# Same generation over the facts table (keeps the predicate column)
# ---------------------------------------------------------------------------


def same_generation_facts_term(facts: str = "facts") -> Fixpoint:
    """Per-predicate same generation: output columns (src, trg, pred).

    ``sg(x, y, p)`` holds when x and y are of the same generation following
    edges labelled ``p`` only.  This is the TSG term of the paper, whose
    ``pred`` column survives so that Filtered SG and Joined SG can be
    expressed on top of it.
    """
    var = fresh_fixpoint_variable("TSG")
    # A(src, pred, m): an edge from src to the shared ancestor m.
    a_side = RelVar(facts).rename(TRG, "_sgm")
    # B(trg, pred, m): an edge from trg to the same ancestor m.
    b_side = RelVar(facts).rename(TRG, "_sgm").rename(SRC, TRG)
    base = Join(a_side, b_side).antiproject("_sgm")
    # Recursive case: the ancestors of src and trg are of the same generation.
    x_mid = RelVar(var).rename(SRC, "_sgm").rename(TRG, "_sgn")
    c_side = RelVar(facts).rename(TRG, "_sgn").rename(SRC, TRG)
    step = Join(Join(a_side, x_mid), c_side).antiproject(("_sgm", "_sgn"))
    return Fixpoint(var, Union(base, step), direction="both-ends")


def filtered_same_generation_term(predicate: str, facts: str = "facts") -> Term:
    """Filtered SG: same-generation pairs for one particular predicate."""
    return Filter(Eq(PRED, predicate), same_generation_facts_term(facts))


def joined_same_generation_term(predicates: Iterable[str],
                                facts: str = "facts") -> Term:
    """Joined SG: same-generation pairs for a set of predicates.

    The predicate set is a one-column relation joined with the TSG term on
    the ``pred`` column, exactly as in the paper.
    """
    rows = [{PRED: predicate} for predicate in predicates]
    predicate_relation = (Relation.from_dicts(rows, columns=(PRED,))
                          if rows else Relation.empty((PRED,)))
    return Join(Literal(predicate_relation, name="P"),
                same_generation_facts_term(facts))


def same_generation_facts_datalog(facts: str = "facts",
                                  predicate: str | None = None) -> Program:
    """Datalog counterpart of the facts-table same-generation query.

    With ``predicate`` the goal is restricted to that predicate (Filtered
    SG); otherwise all (src, trg, pred) triples are returned.
    """
    x, y, z, w, p = Var("x"), Var("y"), Var("z"), Var("w"), Var("p")
    program = Program(goal="answer")
    program.add(Rule(Atom("sg", (x, y, p)),
                     (Atom(facts, (x, p, z)), Atom(facts, (y, p, z)))))
    program.add(Rule(Atom("sg", (x, y, p)),
                     (Atom(facts, (x, p, z)), Atom("sg", (z, w, p)),
                      Atom(facts, (y, p, w)))))
    if predicate is None:
        program.add(Rule(Atom("answer", (x, y, p)), (Atom("sg", (x, y, p)),)))
    else:
        program.add(Rule(Atom("answer", (x, y)),
                         (Atom("sg", (x, y, Const(predicate))),)))
    return program


# ---------------------------------------------------------------------------
# Workload entries
# ---------------------------------------------------------------------------


def nonregular_queries(edge_label: str = "edge",
                       filtered_predicate: str | None = None,
                       joined_predicates: Iterable[str] = ()) -> list[WorkloadQuery]:
    """The C7 workload entries used by the Fig. 11 benchmark."""
    queries = [
        mu_ra_query("anbn", anbn_term(), description="a^n b^n paths"),
        mu_ra_query("SG", same_generation_term(edge_label),
                    description="same generation"),
    ]
    if filtered_predicate is not None:
        queries.append(mu_ra_query(
            "FilteredSG", filtered_same_generation_term(filtered_predicate),
            description=f"same generation filtered on {filtered_predicate!r}"))
    joined = list(joined_predicates)
    if joined:
        queries.append(mu_ra_query(
            "JoinedSG", joined_same_generation_term(joined),
            description="same generation joined with a predicate list"))
    return queries
