"""Common structures shared by the workload definitions."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algebra.terms import Term
from ..query.ast import UCRPQ
from ..query.classes import classify_query
from ..query.parser import parse_query


@dataclass(frozen=True)
class WorkloadQuery:
    """One benchmark query: either a UCRPQ text or a raw mu-RA term (C7)."""

    qid: str
    text: str | None = None
    term: Term | None = None
    classes: frozenset[str] = field(default_factory=frozenset)
    description: str = ""

    @property
    def is_ucrpq(self) -> bool:
        return self.text is not None

    def parsed(self) -> UCRPQ:
        if self.text is None:
            raise ValueError(f"{self.qid} is a raw mu-RA workload query")
        return parse_query(self.text)

    def as_query(self, session):
        """Lazy :class:`~repro.session.Query` handle for this entry.

        UCRPQ entries go through the text front-end; raw mu-RA entries
        (class C7) through the term front-end, carrying their classes.
        """
        if self.is_ucrpq:
            return session.ucrpq(self.text)
        return session.term(self.term, classes=self.classes)

    def __str__(self) -> str:
        return f"{self.qid}: {self.text if self.text else '<mu-RA term>'}"


def ucrpq_query(qid: str, text: str, description: str = "") -> WorkloadQuery:
    """Build a UCRPQ workload entry, classifying it automatically."""
    classes = classify_query(parse_query(text))
    return WorkloadQuery(qid=qid, text=text, classes=classes,
                         description=description)


def mu_ra_query(qid: str, term: Term, description: str = "") -> WorkloadQuery:
    """Build a raw mu-RA workload entry (class C7: non-regular recursion)."""
    return WorkloadQuery(qid=qid, term=term, classes=frozenset({"C7"}),
                         description=description)
