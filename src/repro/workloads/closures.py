"""Concatenated-closure workload (Fig. 12): a1+/a2+/.../an+ queries.

These queries exercise class C6 at increasing depth: the rewriter can merge
or push the fixpoints (never materialising the intermediate closures), while
a Datalog engine must materialise every closure before joining, which is why
BigDatalog fails beyond n = 4 in the paper.
"""

from __future__ import annotations

from .common import WorkloadQuery, ucrpq_query


def concatenated_closure_query(depth: int, label_prefix: str = "a") -> WorkloadQuery:
    """Build the query ``?x,?y <- ?x a1+/a2+/.../a<depth>+ ?y``."""
    if depth < 2:
        raise ValueError("a concatenated-closure query needs depth >= 2")
    path = "/".join(f"{label_prefix}{i}+" for i in range(1, depth + 1))
    text = f"?x,?y <- ?x {path} ?y"
    return ucrpq_query(f"CC{depth}", text,
                       description=f"concatenation of {depth} closures")


def concatenated_closure_queries(max_depth: int = 10,
                                 label_prefix: str = "a") -> list[WorkloadQuery]:
    """The full Fig. 12 workload: depths 2 to ``max_depth``."""
    return [concatenated_closure_query(depth, label_prefix)
            for depth in range(2, max_depth + 1)]
