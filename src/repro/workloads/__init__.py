"""Benchmark workloads: Yago, Uniprot, concatenated closures, non-regular."""

from .closures import concatenated_closure_queries, concatenated_closure_query
from .common import WorkloadQuery, mu_ra_query, ucrpq_query
from .nonregular import (anbn_datalog, anbn_term, filtered_same_generation_term,
                         joined_same_generation_term, nonregular_queries,
                         same_generation_datalog, same_generation_facts_datalog,
                         same_generation_facts_term, same_generation_term)
from .uniprot_queries import UNIPROT_QUICK_SUBSET, uniprot_queries
from .yago_queries import YAGO_QUICK_SUBSET, yago_queries

__all__ = [
    "UNIPROT_QUICK_SUBSET",
    "WorkloadQuery",
    "YAGO_QUICK_SUBSET",
    "anbn_datalog",
    "anbn_term",
    "concatenated_closure_queries",
    "concatenated_closure_query",
    "filtered_same_generation_term",
    "joined_same_generation_term",
    "mu_ra_query",
    "nonregular_queries",
    "same_generation_datalog",
    "same_generation_facts_datalog",
    "same_generation_facts_term",
    "same_generation_term",
    "ucrpq_query",
    "uniprot_queries",
    "yago_queries",
]
