"""The Uniprot workload: the 25 UCRPQs of Fig. 8, over the Uniprot-like graph.

The abbreviations of the paper map to the predicates of
:func:`repro.datasets.uniprot_graph` unchanged (``int``, ``enc``, ``occ``,
``hKw``, ``ref``, ``auth``, ``pub``).  The opaque constants ``C`` of the
paper are instantiated per graph with :func:`repro.datasets.uniprot_constants`
so that the filtered queries select well-connected entities.
"""

from __future__ import annotations

from ..data.graph import LabeledGraph
from ..datasets.uniprot import uniprot_constants
from .common import WorkloadQuery, ucrpq_query

#: Query templates; ``{protein}``, ``{gene}``, ``{tissue}``, ``{keyword}``,
#: ``{publication}``, ``{author}`` and ``{journal}`` are substituted per graph.
_UNIPROT_TEMPLATES: dict[str, str] = {
    "Q26": "?x,?y <- ?x -hKw/(ref/-ref)+ ?y",
    "Q27": "?x,?y <- ?x -hKw/(enc/-enc)+ ?y",
    "Q28": "?x <- {protein} (occ/-occ)+ ?x",
    "Q29": "?x,?y <- ?x int+/(occ/-occ)+/(hKw/-hKw)+ ?y",
    "Q30": "?x <- ?x (enc/-enc|occ/-occ)+ {protein}",
    "Q31": "?x,?y <- ?x int+/(occ/-occ)+ ?y",
    "Q32": "?x,?y <- ?x int+/(enc/-enc)+ ?y",
    "Q33": "?x,?y <- ?x int/(enc/-enc)+ ?y",
    "Q34": "?x,?y <- ?x -hKw/int/ref/(auth/-auth)+ ?y",
    "Q35": "?x,?y <- ?x (enc/-enc)+/hKw ?y",
    "Q36": "?x <- ?x (enc/-enc)+ {protein}",
    "Q37": "?x,?y,?z,?t <- ?x (enc/-enc)+ ?y, ?x int+ ?z, ?x ref ?t",
    "Q38": "?x,?y <- ?x (int|(enc/-enc))+ ?y, {protein} (occ/-occ)+ ?y",
    "Q39": "?x <- ?x int+/ref ?y, {publication} (auth/-auth)+ ?y",
    "Q40": "?x <- ?x int+/ref ?y, {journal} pub/(auth/-auth)+ ?y",
    "Q41": "?x <- {journal} pub/(auth/-auth)+ ?x",
    "Q42": "?x,?y <- ?x -occ/int+/occ ?y",
    "Q43": "?x,?y <- ?x (-ref/ref)+ ?y",
    "Q44": "?x,?y <- ?x int/ref/(-ref/ref)+ ?y",
    "Q45": "?x <- {protein} (ref/-ref)+ ?x",
    "Q46": "?x,?y <- ?x (-ref/ref)+/auth ?y",
    "Q47": "?x,?y <- ?x int/(occ/-occ)+ ?y",
    "Q48": "?x <- {protein} int/(enc/-enc|occ/-occ)+ ?x",
    "Q49": "?x <- {gene} (enc/-enc)+ ?x",
    "Q50": "?x,?y <- ?x -hKw/(occ/-occ)+ ?y",
}


def uniprot_queries(graph: LabeledGraph,
                    subset: tuple[str, ...] | None = None) -> list[WorkloadQuery]:
    """Instantiate the Uniprot workload for one generated graph."""
    constants = uniprot_constants(graph)
    constants.setdefault("gene", _busiest_gene(graph))
    selected = subset if subset is not None else tuple(_UNIPROT_TEMPLATES)
    queries = []
    for qid in selected:
        text = _UNIPROT_TEMPLATES[qid].format(**constants)
        queries.append(ucrpq_query(qid, text))
    return queries


def _busiest_gene(graph: LabeledGraph) -> str:
    edges = graph.edges("enc")
    if not edges:
        return "gene_0"
    counts: dict[str, int] = {}
    for row in edges.to_dicts():
        counts[row["src"]] = counts.get(row["src"], 0) + 1
    return max(sorted(counts), key=lambda node: counts[node])


#: Subset used by quick benchmark runs.
UNIPROT_QUICK_SUBSET = ("Q28", "Q30", "Q33", "Q36", "Q41", "Q42", "Q45",
                        "Q47", "Q49")
