"""The query service: concurrent, cached serving on top of a Session.

:class:`QueryService` turns a single-caller :class:`~repro.session.Session`
into a serving subsystem for many concurrent clients:

* **Admission control** — submissions go through a bounded queue; when it
  is full, :meth:`QueryService.submit` rejects the query
  (:class:`~repro.errors.ServiceOverloadError`) instead of letting work
  pile up unboundedly.  Blocking entry points apply backpressure instead.
* **Scheduling** — a configurable number of worker threads
  (``max_in_flight``) drain the queue.  The *plan phase* (translation,
  rewriting, cost ranking, cache lookups) runs concurrently across
  workers; the *execution phase* serializes on the session's execution
  lock so all queries share the cluster's one
  :class:`~repro.distributed.executor.ExecutorBackend` instead of
  oversubscribing it (mirroring a Spark driver scheduling jobs onto one
  fixed pool of executors).
* **One pipeline** — every request is coerced into a lazy
  :class:`~repro.session.Query` handle and served through the session's
  shared :meth:`~repro.session.Session.resolve_plan` /
  :meth:`~repro.session.Session.execute_plan` stages — the exact same
  code path (and therefore the exact same cache keys) as embedded use.
* **Caching** — the session's :class:`~repro.service.plan_cache.PlanCache`
  and :class:`~repro.service.result_cache.ResultCache` (one pair per
  attached graph), gated by the service's ``enable_plan_cache`` /
  ``enable_result_cache`` flags.  Keys are snapshot-fingerprint-qualified,
  so result-cache hits are served without the execution lock and
  mutations never purge anything.
* **Mutations** — :meth:`add_edges` / :meth:`remove_edges` forward to the
  session's mutation API, which commits a copy-on-write successor
  snapshot and atomically swaps the graph's head; in-flight queries keep
  reading the snapshot they pinned.
* **Multi-graph** — ``submit(..., graph="yago")`` scopes a request to a
  graph previously registered with :meth:`Session.attach`: it is planned
  against that graph's head snapshot and lands in that graph's caches,
  so one service instance serves many datasets.
* **Timeouts** — a per-query deadline (``timeout`` seconds from
  submission) maps to the benchmark harness's ``failed`` status: queries
  that exceed it while queued are not executed at all, and queries that
  exceed it during execution are reported failed.

Typical use::

    from repro import Session, QueryService

    session = Session(graph, num_workers=4, executor="threads")
    with QueryService(session, max_in_flight=4) as service:
        future = service.submit("?x,?y <- ?x knows+ ?y")
        served = future.result()
        print(served.status, len(served.result.relation))
"""

from __future__ import annotations

import contextvars
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .._compat import warn_once
from ..check.sanitizer import ordered_lock
from ..errors import (AnalysisError, ReproError, ServiceError,
                      ServiceOverloadError)
from ..obs import tracing
from ..obs.metrics import get_registry
from .metrics import ServiceMetrics
from .plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache
from .result_cache import DEFAULT_RESULT_CACHE_SIZE, ResultCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..algebra.terms import Term
    from ..query.ast import UCRPQ
    from ..session.session import QueryResult, Session

#: Serving statuses; the strings match the benchmark harness's run
#: statuses so served results drop into the same reporting.
OK = "ok"
FAILED = "failed"
#: Strict-mode admission verdict: the query never reached the optimizer
#: because static analysis found errors (see :attr:`ServedResult.diagnostics`).
REJECTED = "rejected"


class _Unbounded:
    """Sentinel: explicitly *no* deadline, even when a default is set.

    ``submit(timeout=None)`` means "use the service default", which left
    no way to opt out of a configured ``default_timeout``.  Pass
    ``timeout=UNBOUNDED`` to run without any deadline.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "UNBOUNDED"


#: Pass as ``timeout=`` to disable the deadline regardless of the
#: service's ``default_timeout``.
UNBOUNDED = _Unbounded()

#: Default number of queries processed concurrently.
DEFAULT_MAX_IN_FLIGHT = 2
#: Default bound of the admission queue.
DEFAULT_QUEUE_CAPACITY = 64

_SHUTDOWN = object()


@dataclass
class ServedResult:
    """Everything the service reports about one query."""

    query_text: str
    status: str
    result: "QueryResult | None" = None
    detail: str = ""
    #: Name of the graph the query was actually served against (the
    #: submission's ``graph=`` or the handle's own scope; ``None`` only
    #: for requests that failed before reaching a graph).
    graph: str | None = None
    #: ``True``/``False`` when the cache was consulted, ``None`` otherwise.
    plan_cache_hit: bool | None = None
    result_cache_hit: bool | None = None
    queue_wait_seconds: float = 0.0
    #: Time spent planning + executing (excludes the queue wait).
    service_seconds: float = 0.0
    #: End-to-end latency: submission to completion.
    latency_seconds: float = 0.0
    #: Structured analyzer findings (``Diagnostic.to_dict()`` payloads).
    #: Populated when a strict-mode service rejects the query
    #: (``status == REJECTED``); empty otherwise.
    diagnostics: tuple = ()

    @property
    def succeeded(self) -> bool:
        return self.status == OK

    @property
    def rows(self) -> int:
        return len(self.result.relation) if self.result is not None else 0


@dataclass
class _Task:
    query: "str | UCRPQ | Term"
    strategy: str | None
    deadline: float | None
    submitted_at: float
    future: Future
    graph: str | None = None
    #: Copy of the submitter's context: the worker serves the request
    #: inside it, so the submitter's active tracer and open span parent
    #: the request's spans — and concurrent requests, each in their own
    #: copy, can never leak spans into one another.
    context: contextvars.Context = field(
        default_factory=contextvars.copy_context)


class QueryService:
    """A concurrent, cached, admission-controlled front end to one session.

    The service does not own the session unless ``own_engine=True``;
    closing the service then also closes the session (releasing executor
    pools).  At construction the service installs fresh plan/result
    caches of the requested sizes on the session — the serving layer owns
    the caching configuration of the session it fronts.
    """

    def __init__(self, engine: "Session", *,
                 max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
                 result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
                 enable_plan_cache: bool = True,
                 enable_result_cache: bool = True,
                 default_timeout: float | None = None,
                 strict: bool = False,
                 own_engine: bool = False):
        if max_in_flight <= 0:
            raise ServiceError("max_in_flight must be positive")
        if queue_capacity <= 0:
            raise ServiceError("queue_capacity must be positive")
        self.session = engine
        #: Legacy alias kept for callers written against the old facade.
        self.engine = engine
        self.enable_plan_cache = enable_plan_cache
        self.enable_result_cache = enable_result_cache
        self.default_timeout = default_timeout
        #: Strict mode: statically analyze each query on its first trip
        #: through the plan phase (plan-cache hits skip the analysis) and
        #: reject queries whose report has errors with ``status ==
        #: REJECTED`` and structured :attr:`ServedResult.diagnostics`.
        self.strict = strict
        engine.configure_caches(plan_cache_size, result_cache_size)
        self.metrics = ServiceMetrics()
        self._own_engine = own_engine
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._started_at = time.monotonic()
        #: Deepest the admission queue has ever been (an operator's early
        #: warning that capacity is being approached).  Monotone and
        #: advisory, so the benign read-modify-write race is acceptable.
        self._queue_high_water = 0
        self._closed = False
        self._close_lock = ordered_lock("service.close")
        self._in_flight = 0
        self._in_flight_lock = ordered_lock("service.in-flight")
        self._workers = [
            threading.Thread(target=self._worker_loop, daemon=True,
                             name=f"query-service-{index}")
            for index in range(max_in_flight)
        ]
        for worker in self._workers:
            worker.start()

    @property
    def plan_cache(self) -> PlanCache:
        """The session's plan cache (installed by this service)."""
        return self.session.plan_cache

    @property
    def result_cache(self) -> ResultCache:
        """The session's result cache (installed by this service)."""
        return self.session.result_cache

    # -- Client API -----------------------------------------------------------

    def submit(self, query: "str | UCRPQ | Term", strategy: str | None = None,
               timeout: "float | None | _Unbounded" = None,
               block: bool = False,
               graph: str | None = None) -> Future:
        """Enqueue a query; returns a future resolving to a :class:`ServedResult`.

        With ``block=False`` (the default) a full admission queue rejects
        the query with :class:`ServiceOverloadError`; with ``block=True``
        the caller waits for a slot (backpressure).  ``timeout`` starts a
        deadline at submission time (defaults to ``default_timeout``;
        pass :data:`UNBOUNDED` to explicitly disable the deadline even
        when a default is configured).  ``graph`` scopes the query to a
        named graph of the session (see :meth:`Session.attach`);
        ``None`` means the default graph.
        """
        if self._closed:
            raise ServiceError("the query service is closed")
        if timeout is UNBOUNDED:
            timeout = None
        elif timeout is None:
            timeout = self.default_timeout
        now = time.perf_counter()
        task = _Task(query=query, strategy=strategy,
                     deadline=now + timeout if timeout is not None else None,
                     submitted_at=now, future=Future(), graph=graph)
        try:
            self._queue.put(task, block=block)
        except queue.Full:
            self.metrics.record_rejected()
            raise ServiceOverloadError(
                f"admission queue full ({self._queue.maxsize} queued)") from None
        depth = self._queue.qsize()
        if depth > self._queue_high_water:
            self._queue_high_water = depth
        if self._closed:
            # close() may have finished between the check above and the put:
            # the task could sit behind the shutdown markers (or in an
            # already-drained queue) with nobody left to resolve its future.
            # Claim it; if a worker or the close-drain got there first the
            # claim fails and their outcome stands.
            if task.future.set_running_or_notify_cancel():
                task.future.set_exception(
                    ServiceError("the query service is closed"))
            raise ServiceError("the query service is closed")
        self.metrics.record_submitted()
        return task.future

    def query(self, query: "str | UCRPQ | Term", strategy: str | None = None,
              timeout: float | None = None) -> ServedResult:
        """Blocking submission: wait for a queue slot, then for the result.

        .. deprecated:: 1.3
           Use :meth:`submit` (a future, non-blocking admission) or, for
           embedded single-caller use, ``session.ucrpq(...).collect()``.
        """
        warn_once(
            "QueryService.query() is deprecated; use submit(...).result() "
            "for serving, or Session.ucrpq(...).collect() for embedded use")
        return self.submit(query, strategy=strategy, timeout=timeout,
                           block=True).result()

    def batch(self, queries, strategy: str | None = None,
              timeout: float | None = None) -> list[ServedResult]:
        """Submit many queries at once and wait for all of them (in order)."""
        futures = [self.submit(query, strategy=strategy, timeout=timeout,
                               block=True)
                   for query in queries]
        return [future.result() for future in futures]

    # -- Health ----------------------------------------------------------------

    def health(self) -> dict[str, object]:
        """Operational health of the service (the future ``/health`` body).

        Reports admission-queue depth and capacity, how many requests the
        workers are serving right now, the last committed snapshot
        version of every attached graph, and the view-maintenance
        backlog (queued async passes).  Cheap enough to poll: every
        field is a counter or a dictionary lookup — no locks that
        queries contend on.
        """
        with self._in_flight_lock:
            in_flight = self._in_flight
        session = self.session
        versions = {name: session.graph(name).snapshot().version
                    for name in session.graphs()}
        uptime = time.monotonic() - self._started_at
        registry = get_registry()
        registry.gauge("repro_service_uptime_seconds").set(uptime)
        registry.gauge("repro_service_queue_high_water").set(
            self._queue_high_water)
        return {
            "status": "closed" if self._closed else "ok",
            "uptime_seconds": uptime,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "queue_high_water": self._queue_high_water,
            "in_flight": in_flight,
            "workers": len(self._workers),
            "last_commit_version": versions,
            "maintenance_backlog": session.maintenance_backlog(),
        }

    # -- Mutations ------------------------------------------------------------

    def add_edges(self, label: str, pairs,
                  graph: str | None = None) -> tuple[str, ...]:
        """Add edges through the session (atomic snapshot commit).

        Never blocks behind running queries and never purges caches:
        the new head snapshot simply keys new cache entries.
        """
        return self._scope(graph).add_edges(label, pairs)

    def remove_edges(self, label: str, pairs,
                     graph: str | None = None) -> tuple[str, ...]:
        """Remove edges through the session (atomic snapshot commit)."""
        return self._scope(graph).remove_edges(label, pairs)

    def _scope(self, graph: str | None):
        """The session (view) a request or mutation addresses."""
        return self.session if graph is None else self.session.graph(graph)

    # -- Worker side -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            try:
                if task is _SHUTDOWN:
                    return
                # Serve inside the submitter's context copy (trace
                # propagation; see _Task.context).
                task.context.run(self._process, task)
            finally:
                self._queue.task_done()

    def _process(self, task: _Task) -> None:
        if not task.future.set_running_or_notify_cancel():
            return
        with self._in_flight_lock:
            self._in_flight += 1
        try:
            self._process_admitted(task)
        finally:
            with self._in_flight_lock:
                self._in_flight -= 1

    def _process_admitted(self, task: _Task) -> None:
        started = time.perf_counter()
        queue_wait = started - task.submitted_at
        if task.deadline is not None and started > task.deadline:
            served = ServedResult(
                query_text=str(task.query), status=FAILED,
                detail=f"timed out after {queue_wait:.3f}s in the admission "
                       f"queue", queue_wait_seconds=queue_wait)
        else:
            # Everything that can raise — including coercing the
            # submission into a handle (e.g. a Query built on a different
            # session) — runs inside the guard, so a bad submission fails
            # its own future instead of killing the worker thread.
            try:
                scope = self._scope(task.graph)
                handle = scope.as_query(task.query)
                if task.graph is not None \
                        and handle.session.graph_name != scope.graph_name:
                    # A pre-built handle carries its own graph scope; a
                    # conflicting graph= would silently serve the wrong
                    # dataset under the requested graph's name.
                    raise ServiceError(
                        f"the submitted handle is scoped to graph "
                        f"{handle.session.graph_name!r}; it cannot be "
                        f"served as graph {task.graph!r}")
                served = self._serve(handle, task, queue_wait)
            except AnalysisError as error:
                served = ServedResult(
                    query_text=str(task.query), status=REJECTED,
                    detail=str(error), graph=task.graph,
                    diagnostics=tuple(d.to_dict()
                                      for d in error.diagnostics),
                    queue_wait_seconds=queue_wait)
            except ReproError as error:
                served = ServedResult(query_text=str(task.query),
                                      status=FAILED, detail=str(error),
                                      graph=task.graph,
                                      queue_wait_seconds=queue_wait)
            except BaseException as error:  # pragma: no cover - defensive
                task.future.set_exception(error)
                return
        served.service_seconds = time.perf_counter() - started
        served.latency_seconds = queue_wait + served.service_seconds
        if task.deadline is not None and served.status == OK \
                and time.perf_counter() > task.deadline:
            served.status = FAILED
            served.detail = (f"deadline exceeded: served in "
                             f"{served.latency_seconds:.3f}s")
        self.metrics.record_served(
            latency_seconds=served.latency_seconds,
            queue_wait_seconds=served.queue_wait_seconds,
            failed=not served.succeeded,
            plan_cache_hit=served.plan_cache_hit,
            result_cache_hit=served.result_cache_hit,
            graph=served.graph)
        task.future.set_result(served)

    def _serve(self, handle, task: _Task, queue_wait: float) -> ServedResult:
        """One request through the session's shared staged pipeline.

        Delegates to :meth:`Query.run_once`, the un-memoized serving
        path: the handle's own default strategy and (for prepared
        bindings) its shared template plan are honored, ``task.strategy``
        takes precedence when given, and the session caches are consulted
        afresh per request against the head snapshot captured at the
        start of the call.  The plan phase and result-cache hits run
        concurrently across workers with no lock at all; only cache-miss
        executions serialize on the session's execution lock.
        """
        with tracing.span("service.request",
                          graph=handle.session.graph_name) as request_span:
            if hasattr(handle, "run_once"):
                result, plan_hit, result_hit = handle.run_once(
                    task.strategy,
                    use_plan_cache=self.enable_plan_cache,
                    use_result_cache=self.enable_result_cache,
                    check=self.strict)
            else:
                # Datalog baseline handles have no serving path (and no
                # plan/result caches); evaluate them directly.  Strict
                # mode still vets the translated program first.
                if self.strict:
                    handle.check().raise_if_errors()
                result = handle.collect()
                plan_hit = result_hit = None
            if request_span.enabled:
                request_span.set_attribute("rows", len(result.relation))
        # Attribute by the graph actually served: a pre-built handle
        # scoped to a named graph carries its scope even when submitted
        # without graph=.
        return ServedResult(query_text=handle.describe(), status=OK,
                            result=result, plan_cache_hit=plan_hit,
                            result_cache_hit=result_hit,
                            graph=handle.session.graph_name,
                            queue_wait_seconds=queue_wait)

    # -- Lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drain queued queries, stop the workers, optionally close the session.

        Queued queries submitted before ``close`` are still served (the
        shutdown markers sit behind them in the queue); new submissions are
        rejected immediately.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_SHUTDOWN, block=True)
        for worker in self._workers:
            worker.join()
        # A submit racing with close can slip a task in behind the shutdown
        # markers; fail it rather than leaving its future unresolved.
        while True:
            try:
                task = self._queue.get_nowait()
            except queue.Empty:
                break
            if task is not _SHUTDOWN and task.future.set_running_or_notify_cancel():
                task.future.set_exception(
                    ServiceError("the query service is closed"))
            self._queue.task_done()
        if self._own_engine:
            self.session.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"QueryService(workers={len(self._workers)}, "
                f"queue={self._queue.maxsize}, "
                f"plan_cache={self.enable_plan_cache}, "
                f"result_cache={self.enable_result_cache})")
