"""Query-serving subsystem: caches + concurrent multi-client scheduling.

This package wraps a :class:`~repro.engine.DistMuRA` session into a
:class:`QueryService` able to serve many concurrent clients:

* :mod:`repro.service.plan_cache` — memoizes the rewriter + cost-ranking
  decision per canonical query,
* :mod:`repro.service.result_cache` — memoizes whole query results against
  the engine's relation version counters,
* :mod:`repro.service.server` — admission control, scheduling, timeouts
  and the mutation pass-through,
* :mod:`repro.service.metrics` — throughput, latency percentiles and
  cache hit rates.

See the "Serving layer" section of ``DESIGN.md`` and ``examples/serve.py``.
"""

from .cache import CacheStats, LRUCache
from .metrics import MetricsSnapshot, ServiceMetrics, percentile
from .plan_cache import CachedPlan, PlanCache, PlanKey
from .result_cache import CachedResult, ResultCache, ResultKey
from .server import (DEFAULT_MAX_IN_FLIGHT, DEFAULT_QUEUE_CAPACITY, FAILED,
                     OK, QueryService, ServedResult)

__all__ = [
    "CacheStats",
    "CachedPlan",
    "CachedResult",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_QUEUE_CAPACITY",
    "FAILED",
    "LRUCache",
    "MetricsSnapshot",
    "OK",
    "PlanCache",
    "PlanKey",
    "QueryService",
    "ResultCache",
    "ResultKey",
    "ServedResult",
    "ServiceMetrics",
    "percentile",
]
