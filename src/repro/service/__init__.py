"""Query-serving subsystem: caches + concurrent multi-client scheduling.

This package wraps a :class:`~repro.session.Session` into a
:class:`QueryService` able to serve many concurrent clients through the
session's shared staged pipeline:

* :mod:`repro.service.plan_cache` — memoizes the rewriter + cost-ranking
  decision per (canonical query, snapshot fingerprint) (owned per graph
  by the session, shared with embedded use and prepared queries),
* :mod:`repro.service.result_cache` — memoizes whole query results keyed
  by the snapshot fingerprint of their inputs (no eager purges),
* :mod:`repro.service.view_maintenance` — incrementally maintains cached
  recursive results across commits (semi-naive resume for insertions,
  delete-and-rederive for deletions, cost-model fallback),
* :mod:`repro.service.server` — admission control, scheduling, timeouts
  and the mutation pass-through,
* :mod:`repro.service.metrics` — throughput, latency percentiles and
  cache hit rates.

See the "Serving layer" section of ``DESIGN.md`` and ``examples/serve.py``.
"""

from .cache import MISS, CacheStats, LRUCache
from ..percentiles import percentile
from .metrics import MetricsSnapshot, ServiceMetrics
from .plan_cache import CachedPlan, PlanCache, PlanKey
from .result_cache import ResultCache, ResultKey
from .server import (DEFAULT_MAX_IN_FLIGHT, DEFAULT_QUEUE_CAPACITY, FAILED,
                     OK, REJECTED, UNBOUNDED, QueryService, ServedResult)
from .view_maintenance import (MaintenanceDecision, MaintenanceStats,
                               ViewMaintainer)

__all__ = [
    "CacheStats",
    "CachedPlan",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_QUEUE_CAPACITY",
    "FAILED",
    "LRUCache",
    "MISS",
    "MaintenanceDecision",
    "MaintenanceStats",
    "MetricsSnapshot",
    "OK",
    "PlanCache",
    "PlanKey",
    "QueryService",
    "REJECTED",
    "ResultCache",
    "ResultKey",
    "ServedResult",
    "ServiceMetrics",
    "UNBOUNDED",
    "ViewMaintainer",
    "percentile",
]
