"""Plan cache: memoize the output of the rewriter and the cost ranking.

Optimizing a query — exploring up to ``max_plans`` equivalent mu-RA terms
and costing each of them — dominates the latency of small and repeated
queries.  The plan cache keys that work on

* the **canonical form** of the translated query
  (:func:`repro.rewriter.normalize.cache_key`), which erases the
  session-specific generated names so the same UCRPQ always maps to the
  same key, in any session,
* a **snapshot fingerprint**: the versions of the relations the query
  reads, taken from the immutable
  :class:`~repro.data.snapshot.DatabaseSnapshot` the query is planned
  against (statistics drive the cost ranking, so a plan selected on one
  snapshot must not be reused verbatim on another whose inputs changed),
  and
* the **engine configuration** that shaped the decision (strategy,
  worker count, memory budget, rewriter bounds).

A hit skips ``MuRewriter.explore`` and ``rank_plans`` entirely and goes
straight to execution with the previously selected plan.

Because keys are version-qualified there is **no eager invalidation**: a
mutation commits a new snapshot, queries planned against it use new keys,
and entries for superseded snapshots are simply never looked up again and
age out of the LRU ring.  Handles pinned to an old snapshot keep hitting
their old entries for as long as the LRU retains them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..algebra.terms import Term
from ..rewriter.normalize import cache_key
from .cache import CacheStats, LRUCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..data.snapshot import DatabaseSnapshot
    from ..session.session import Session

#: Default number of selected plans kept.
DEFAULT_PLAN_CACHE_SIZE = 128


@dataclass(frozen=True)
class PlanKey:
    """Identity of one plan-selection decision."""

    term_key: str
    database_fingerprint: tuple[tuple[str, int], ...]
    config: tuple
    #: Name of the graph the snapshot belongs to.  Statistics — and
    #: therefore the selected plan — are per graph, so a fingerprint
    #: collision between two graphs at the same versions (both freshly
    #: attached at version 0, say) must not let one graph's plan decision
    #: answer for the other's whenever a cache is shared across graphs.
    graph: str = ""

    @classmethod
    def of(cls, engine: "Session", term: Term,
           dependencies: frozenset[str],
           strategy: str | None,
           snapshot: "DatabaseSnapshot | None" = None) -> "PlanKey":
        """Build the key of ``term`` against one database snapshot.

        ``snapshot`` defaults to the engine's current head; pinned query
        handles pass their own so repeated plans of an old-version handle
        keep hitting the entry they created.
        """
        snapshot = snapshot if snapshot is not None else engine.snapshot()
        config = (
            strategy if strategy is not None else engine.strategy,
            engine.cluster.num_workers,
            engine.memory_per_task,
            engine.rewriter.max_plans,
            engine.rewriter.max_rounds,
            engine.optimize_plans,
        )
        return cls(term_key=cache_key(term),
                   database_fingerprint=snapshot.fingerprint(dependencies),
                   config=config,
                   graph=snapshot.graph_name)


@dataclass
class CachedPlan:
    """The decisions recorded for one optimized query."""

    #: The selected logical plan, in canonical form.
    term: Term
    cost: float
    plans_explored: int
    #: Free relation variables of the selected plan (result-cache deps).
    dependencies: frozenset[str]
    #: ``cache_key(term)``, precomputed so cache hits never re-canonicalize
    #: the selected plan (it is the result-cache key of every execution).
    term_key: str = ""
    #: Physical strategy decisions observed at the first execution of the
    #: plan (filled in lazily; purely informational).
    physical_strategies: tuple[str, ...] = field(default=())
    #: The cost model's estimated result cardinality for the selected
    #: plan (``None`` when the optimizer was off).  EXPLAIN ANALYZE
    #: compares it against the observed row count — the drift signal of
    #: the feedback-driven-optimizer roadmap item.
    estimated_cardinality: int | None = None
    #: Compiled columnar kernel programs for this plan's fixpoints
    #: (:class:`~repro.algebra.kernels.KernelProgramCache`).  Created
    #: lazily at first execution and carried on the entry, so a plan-cache
    #: hit also hits its compiled kernels.  Entries are schema-level —
    #: constants are re-resolved at every bind — so reuse across snapshots
    #: of the same graph is sound.
    kernel_program: "object | None" = None

    def __post_init__(self) -> None:
        if not self.term_key:
            self.term_key = cache_key(self.term)

    def with_strategies(self, strategies: tuple[str, ...]) -> "CachedPlan":
        return replace(self, physical_strategies=strategies)


class PlanCache:
    """LRU-bounded mapping from :class:`PlanKey` to :class:`CachedPlan`."""

    def __init__(self, capacity: int = DEFAULT_PLAN_CACHE_SIZE):
        self._cache = LRUCache(capacity)

    def get(self, key: PlanKey) -> CachedPlan | None:
        return self._cache.get(key)

    def put(self, key: PlanKey, plan: CachedPlan) -> None:
        self._cache.put(key, plan)

    def clear(self) -> None:
        self._cache.clear()

    def __contains__(self, key: PlanKey) -> bool:
        """Stats-neutral membership probe (no LRU or counter side effects).

        The strict-mode admission gate uses this to decide whether a
        query was already analyzed-and-planned for the current snapshot
        and config without distorting the cache's hit-rate statistics.
        """
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats
