"""Thread-safe bounded LRU cache shared by the plan and result caches.

Both serving-layer caches need the same mechanics: a capacity bound with
least-recently-used eviction, hit/miss/eviction counters, and safe access
from the service's worker threads.  :class:`LRUCache` provides exactly
that; the plan- and result-specific key construction and validity checks
live in :mod:`repro.service.plan_cache` and
:mod:`repro.service.result_cache`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from ..errors import ServiceError
from ..check.sanitizer import ordered_lock

#: Public miss sentinel: pass as ``default`` to :meth:`LRUCache.get` to
#: distinguish a cached ``None`` (or other falsy) value from a miss.
#: ``None`` itself is a storable value, never the cache's own marker.
MISS = object()


@dataclass
class CacheStats:
    """Counters of one cache (returned as an independent snapshot)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries dropped by an explicit ``clear()`` (there is no other
    #: invalidation left: keys are snapshot-qualified, so stale entries
    #: miss naturally and leave through LRU eviction).
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 3),
        }


class LRUCache:
    """A bounded mapping with LRU eviction and lookup counters."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ServiceError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = ordered_lock("service.cache")
        self._stats = CacheStats()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used) or ``default``.

        Presence, not truthiness, decides hit vs miss: a stored ``None``
        is returned (and counted) as a hit.  Callers that cache ``None``
        values pass :data:`MISS` (or their own sentinel) as ``default``
        to tell the two apart.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return self._entries[key]
            self._stats.misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the LRU one when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            if len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1
            self._entries[key] = value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value without touching LRU order or counters.

        Maintenance-style scans use this so observing the cache does not
        distort its recency ordering or its hit-rate statistics.
        """
        with self._lock:
            if key in self._entries:
                return self._entries[key]
            return default

    def clear(self) -> None:
        with self._lock:
            self._stats.invalidations += len(self._entries)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        """Snapshot of the keys, LRU first (mostly for tests/debugging)."""
        with self._lock:
            return list(self._entries)

    @property
    def stats(self) -> CacheStats:
        """An independent snapshot of the counters."""
        with self._lock:
            return CacheStats(hits=self._stats.hits, misses=self._stats.misses,
                              evictions=self._stats.evictions,
                              invalidations=self._stats.invalidations)
