"""Service-level metrics: throughput, latency percentiles, cache hit rates.

The serving layer reports the quantities an operator of a multi-tenant
query service watches: how many queries were admitted/served/failed/
rejected, the distribution of end-to-end latency and of time spent waiting
in the admission queue (p50/p95/p99), the served throughput, and the hit
rates of the plan and result caches.

Percentiles come from :mod:`repro.percentiles`, the implementation shared
with the benchmark reporting, so the serving benchmark and the
paper-figure tables use one formatter.

The latency and queue-wait samples are kept in bounded sliding windows
(:data:`DEFAULT_SAMPLE_CAPACITY` most recent samples): a long-running
service must not grow its metrics without bound, and sorting a bounded
window keeps :meth:`ServiceMetrics.snapshot` cheap.  The counters remain
exact over the whole lifetime.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from dataclasses import dataclass

from ..obs.metrics import get_registry
from ..check.sanitizer import ordered_lock
from ..percentiles import DEFAULT_PERCENTILES, percentiles

#: Size of the sliding windows of latency / queue-wait samples.
DEFAULT_SAMPLE_CAPACITY = 8192


@dataclass
class MetricsSnapshot:
    """Immutable view of the service counters at one point in time."""

    submitted: int
    served: int
    failed: int
    rejected: int
    elapsed_seconds: float
    throughput_qps: float
    latency_percentiles: dict[str, float]
    queue_wait_percentiles: dict[str, float]
    plan_cache_hits: int
    result_cache_hits: int
    plan_cache_hit_rate: float
    result_cache_hit_rate: float
    #: Per-graph served counts for multi-graph services.  Requests with
    #: no explicit graph are accounted under ``"default"``.
    served_by_graph: dict[str, int] = dataclasses.field(default_factory=dict)

    def summary(self) -> dict[str, object]:
        """Flat dictionary (the shape the benchmark reports consume)."""
        flat: dict[str, object] = {
            "submitted": self.submitted,
            "served": self.served,
            "failed": self.failed,
            "rejected": self.rejected,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "throughput_qps": round(self.throughput_qps, 2),
            "plan_cache_hits": self.plan_cache_hits,
            "result_cache_hits": self.result_cache_hits,
            "plan_cache_hit_rate": round(self.plan_cache_hit_rate, 3),
            "result_cache_hit_rate": round(self.result_cache_hit_rate, 3),
        }
        for name, value in self.latency_percentiles.items():
            flat[f"latency_{name}"] = round(value, 6)
        for name, value in self.queue_wait_percentiles.items():
            flat[f"queue_wait_{name}"] = round(value, 6)
        return flat


class ServiceMetrics:
    """Thread-safe accumulator fed by the service workers."""

    def __init__(self, sample_capacity: int = DEFAULT_SAMPLE_CAPACITY):
        self.submitted = 0
        self.served = 0
        self.failed = 0
        self.rejected = 0
        self.plan_cache_hits = 0
        self.plan_cache_lookups = 0
        self.result_cache_hits = 0
        self.result_cache_lookups = 0
        self.served_by_graph: dict[str, int] = {}
        #: Sliding windows of the most recent samples (bounded memory).
        self.latencies: deque[float] = deque(maxlen=sample_capacity)
        self.queue_waits: deque[float] = deque(maxlen=sample_capacity)
        self._lock = ordered_lock("service.metrics")
        self._started_at = time.perf_counter()

    def record_submitted(self) -> None:
        with self._lock:
            self.submitted += 1
        get_registry().counter("repro_service_submitted_total").inc()

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1
        get_registry().counter("repro_service_rejected_total").inc()

    def record_served(self, latency_seconds: float, queue_wait_seconds: float,
                      failed: bool, plan_cache_hit: bool | None,
                      result_cache_hit: bool | None,
                      graph: str | None = None) -> None:
        """Account one completed query.

        The cache flags are ``None`` when the corresponding cache was not
        consulted (disabled, or the query failed before reaching it).
        ``graph`` attributes the query to a named graph of a multi-graph
        session (``None`` = the default graph).
        """
        with self._lock:
            if failed:
                self.failed += 1
            else:
                self.served += 1
                scope = graph if graph is not None else "default"
                self.served_by_graph[scope] = \
                    self.served_by_graph.get(scope, 0) + 1
            self.latencies.append(latency_seconds)
            self.queue_waits.append(queue_wait_seconds)
            if plan_cache_hit is not None:
                self.plan_cache_lookups += 1
                self.plan_cache_hits += int(plan_cache_hit)
            if result_cache_hit is not None:
                self.result_cache_lookups += 1
                self.result_cache_hits += int(result_cache_hit)
        # Mirror into the process-wide registry (outside our lock; the
        # registry synchronizes itself), so service counters export
        # alongside session/cluster ones in one scrape.
        registry = get_registry()
        registry.counter("repro_service_requests_total",
                         status="failed" if failed else "ok").inc()
        registry.histogram("repro_service_latency_seconds") \
            .observe(latency_seconds)
        registry.histogram("repro_service_queue_wait_seconds") \
            .observe(queue_wait_seconds)

    def snapshot(self, fractions=DEFAULT_PERCENTILES) -> MetricsSnapshot:
        """Return a consistent view of every counter and distribution."""
        with self._lock:
            elapsed = max(time.perf_counter() - self._started_at, 1e-9)
            latency = {_percentile_name(f): value for f, value in
                       percentiles(self.latencies, fractions).items()}
            waits = {_percentile_name(f): value for f, value in
                     percentiles(self.queue_waits, fractions).items()}
            return MetricsSnapshot(
                submitted=self.submitted,
                served=self.served,
                failed=self.failed,
                rejected=self.rejected,
                elapsed_seconds=elapsed,
                throughput_qps=self.served / elapsed,
                latency_percentiles=latency,
                queue_wait_percentiles=waits,
                plan_cache_hits=self.plan_cache_hits,
                result_cache_hits=self.result_cache_hits,
                plan_cache_hit_rate=_rate(self.plan_cache_hits,
                                          self.plan_cache_lookups),
                result_cache_hit_rate=_rate(self.result_cache_hits,
                                            self.result_cache_lookups),
                served_by_graph=dict(self.served_by_graph),
            )


def _percentile_name(fraction: float) -> str:
    """0.50 -> 'p50', 0.999 -> 'p99.9'."""
    scaled = fraction * 100.0
    if scaled == int(scaled):
        return f"p{int(scaled)}"
    return f"p{scaled:g}"


def _rate(hits: int, lookups: int) -> float:
    return hits / lookups if lookups else 0.0
