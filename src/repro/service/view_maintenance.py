"""Incremental maintenance of cached recursive results across commits.

Result-cache keys are snapshot-qualified, so a commit never *corrupts* a
cached entry — but it does strand it: the next query against the new
head misses and pays a full fixpoint recomputation, even when the commit
touched one edge out of millions.  This module closes that gap.  After a
commit produces the successor snapshot, :class:`ViewMaintainer` walks
the graph's result cache and, for every entry whose inputs the commit
touched, tries to *maintain* the cached result instead of letting it go
stale:

* **Insert resume** — when the touched dependencies only gained rows,
  the semi-naive loop is resumed from the cached fixpoint: the
  accumulator is seeded with the old result, the new constant part and
  one application of the variable part against the old result provide
  the initial deltas, and the loop runs to convergence on genuinely new
  rows only.  Sound for the same reason semi-naive evaluation is —
  the Fcond conditions make the variable part distribute over unions
  (Proposition 1) and monotone in every touched input — so the old
  result is a subset of the new one and a valid seed.
* **Delete and re-derive (DRed)** — when rows were removed, maintenance
  *overdeletes* everything whose derivation may have used a removed row
  (seeded from the constant-part and one-step rule differences, then
  propagated through the old rules), subtracts the overdeleted set and
  resumes the semi-naive loop from the surviving subset under the new
  database.  The resume pass re-derives overdeleted rows that have
  surviving alternative derivations and absorbs any insertions of the
  same commit in one pass (Gupta, Mumick & Subrahmanian's DRed,
  specialized to one linear fixpoint).
* **Cost-model fallback** — when the commit's delta is a large fraction
  of the touched inputs (measured against the snapshot's
  :class:`~repro.data.stats.StatisticsCatalog` cardinalities),
  incremental work would approach a full recomputation while paying
  DRed's overdeletion overhead on top; the entry is skipped and the next
  query recomputes through the normal miss path.

Maintenance is *best effort by construction*: every skip (unsupported
plan shape, a touched input under an antijoin's right side — a
nonmonotone position where insertions can shrink the result — or an
oversized delta) merely leaves the entry stale, which is exactly the
pre-maintenance behaviour.  A maintained entry is re-registered under
the successor fingerprint with :meth:`ResultCache.promote`; the old
entry stays valid for readers pinned to the superseded snapshot.

Maintenance evaluates with the centralized reference
:class:`~repro.algebra.evaluate.Evaluator` (deltas are small by the
fallback policy, so distribution would cost more than it saves) and
never touches the cluster or the execution lock.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..algebra.conditions import decompose
from ..algebra.evaluate import Evaluator
from ..algebra.terms import Antijoin, Fixpoint, Rename, RelVar, Term
from ..algebra.visitors import walk
from ..data.relation import Relation
from ..data.snapshot import DatabaseSnapshot, RelationDelta
from ..data.storage import DeltaAccumulator
from ..errors import FixpointConditionError
from ..obs import tracing
from ..obs.logs import get_logger, log_event
from ..obs.metrics import get_registry
from .result_cache import ResultCache, ResultKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..session.session import QueryResult

#: Structured module logger (see :func:`repro.obs.configure_logging`).
logger = get_logger("repro.service")

#: Skip incremental maintenance when the commit changed more than this
#: fraction of the rows of the entry's touched inputs: past that point a
#: resume converges in nearly as many rounds as a cold start, and DRed's
#: overdeletion pass makes it a net loss.
DEFAULT_DELTA_THRESHOLD = 0.25

#: Most-recently-used entries maintained per commit.  Commits are on the
#: write path (synchronous mode runs under the graph's commit lock), so
#: the work per commit must stay bounded no matter how large the cache is;
#: entries past the bound just go stale, as they always did.
DEFAULT_MAX_ENTRIES_PER_COMMIT = 16

#: Most recent decisions retained in a :class:`MaintenanceStats` log.  A
#: long-running session keeps its last stats object alive (and "sync"
#: mode records one decision per touched entry per commit), so the log is
#: a bounded window — the integer counters stay exact over the lifetime.
DEFAULT_DECISION_LOG = 256

#: ``MaintenanceDecision.action`` values.
RESUMED = "insert-resume"
REDERIVED = "dred"
FALLBACK = "fallback-recompute"
SKIPPED_SHAPE = "skipped-shape"
SKIPPED_NONMONOTONE = "skipped-nonmonotone"
SKIPPED_STALE = "skipped-stale"


@dataclass(frozen=True)
class MaintenanceDecision:
    """What the maintainer did (or declined to do) for one cache entry."""

    plan_key: str
    graph: str
    action: str
    #: Changed rows across the entry's touched inputs (insertions plus
    #: deletions) and the catalog cardinality those inputs now have.
    delta_rows: int = 0
    base_rows: int = 0
    elapsed_seconds: float = 0.0

    @property
    def maintained(self) -> bool:
        return self.action in (RESUMED, REDERIVED)


@dataclass
class MaintenanceStats:
    """Outcome of one :meth:`ViewMaintainer.maintain_commit` pass."""

    examined: int = 0
    resumed: int = 0
    rederived: int = 0
    fallbacks: int = 0
    skipped: int = 0
    #: Bounded decision window (oldest evicted first); the counters above
    #: are exact regardless of the bound.
    decisions: deque[MaintenanceDecision] = field(
        default_factory=lambda: deque(maxlen=DEFAULT_DECISION_LOG))

    @property
    def maintained(self) -> int:
        return self.resumed + self.rederived

    def record(self, decision: MaintenanceDecision) -> None:
        self.decisions.append(decision)
        if decision.action == RESUMED:
            self.resumed += 1
        elif decision.action == REDERIVED:
            self.rederived += 1
        elif decision.action == FALLBACK:
            self.fallbacks += 1
        else:
            self.skipped += 1

    def summary(self) -> dict[str, int]:
        return {"examined": self.examined, "resumed": self.resumed,
                "rederived": self.rederived, "fallbacks": self.fallbacks,
                "skipped": self.skipped}


def _publish_decision(decision: MaintenanceDecision) -> None:
    """Count one maintenance decision in the process metrics registry."""
    get_registry().counter("repro_maintenance_decisions_total",
                           action=decision.action).inc()


class ViewMaintainer:
    """Maintain a graph's cached fixpoint results across one commit."""

    def __init__(self, *,
                 delta_threshold: float = DEFAULT_DELTA_THRESHOLD,
                 max_entries_per_commit: int = DEFAULT_MAX_ENTRIES_PER_COMMIT):
        self.delta_threshold = delta_threshold
        self.max_entries_per_commit = max_entries_per_commit

    # -- The per-commit pass -------------------------------------------------

    def maintain_commit(self, cache: ResultCache,
                        old_head: DatabaseSnapshot,
                        new_head: DatabaseSnapshot) -> MaintenanceStats:
        """Maintain every eligible entry of ``cache`` across one commit.

        ``old_head``/``new_head`` are the snapshots before and after the
        head swap (``new_head`` must be a direct :meth:`mutate` successor
        of ``old_head`` — its :meth:`~DatabaseSnapshot.deltas` describe
        exactly this commit).  Returns the decision log; never raises for
        an individual entry — an entry that cannot be maintained is left
        stale, which is the pre-maintenance behaviour.
        """
        stats = MaintenanceStats()
        deltas = {name: delta for name, delta in new_head.deltas().items()
                  if delta}
        if not deltas:
            return stats
        # Most recently used first: under the per-commit bound, the
        # entries kept warm are the ones traffic is actually hitting.
        candidates = list(reversed(cache.entries()))
        for key, result in candidates:
            if stats.examined >= self.max_entries_per_commit:
                break
            if key.graph != new_head.graph_name:
                continue
            dependencies = tuple(name for name, _ in key.fingerprint)
            touched = {name: deltas[name] for name in dependencies
                       if name in deltas}
            if not touched:
                # Untouched inputs: the entry's fingerprint still matches
                # the new head, so it keeps hitting without any work.
                continue
            if key.fingerprint != old_head.fingerprint(dependencies):
                # The entry belongs to an older version than the commit's
                # predecessor; maintaining it across *this* delta would
                # skip the intermediate commits' changes.
                stats.examined += 1
                decision = MaintenanceDecision(
                    plan_key=key.plan_key, graph=key.graph,
                    action=SKIPPED_STALE)
                stats.record(decision)
                _publish_decision(decision)
                continue
            stats.examined += 1
            entry_span = tracing.span(
                "maintenance.entry", graph=key.graph,
                plan_key=key.plan_key[:24]) if tracing.tracing_enabled() \
                else tracing.NOOP_SPAN
            with entry_span:
                decision = self._maintain_entry(cache, key, result, touched,
                                                old_head, new_head)
                if entry_span.enabled:
                    entry_span.set_attribute("action", decision.action)
                    entry_span.set_attribute("delta_rows",
                                             decision.delta_rows)
            stats.record(decision)
            _publish_decision(decision)
            log_event(logger, "view maintenance", level=logging.DEBUG,
                      graph=decision.graph, plan_key=decision.plan_key[:24],
                      action=decision.action, delta_rows=decision.delta_rows,
                      base_rows=decision.base_rows)
        return stats

    # -- One entry -----------------------------------------------------------

    def _maintain_entry(self, cache: ResultCache, key: ResultKey,
                        result: "QueryResult",
                        touched: dict[str, RelationDelta],
                        old_head: DatabaseSnapshot,
                        new_head: DatabaseSnapshot) -> MaintenanceDecision:
        started = time.perf_counter()
        delta_rows = sum(delta.size for delta in touched.values())
        base_rows = sum(len(new_head[name]) for name in touched
                        if name in new_head)

        def decide(action: str) -> MaintenanceDecision:
            return MaintenanceDecision(
                plan_key=key.plan_key, graph=key.graph, action=action,
                delta_rows=delta_rows, base_rows=base_rows,
                elapsed_seconds=time.perf_counter() - started)

        peeled = _peel_renames(result.selected_plan)
        if peeled is None:
            return decide(SKIPPED_SHAPE)
        renames, fixpoint = peeled
        if _touches_nonmonotone_position(fixpoint, touched):
            return decide(SKIPPED_NONMONOTONE)
        if delta_rows > self.delta_threshold * max(base_rows, 1):
            return decide(FALLBACK)
        try:
            old_result = _unwrap(result.relation, renames)
            removing = any(delta.removed for delta in touched.values())
            if removing:
                maintained = self._delete_and_rederive(
                    fixpoint, old_result, touched, old_head, new_head)
                action = REDERIVED
            else:
                maintained = self._insert_resume(
                    fixpoint, old_result, new_head)
                action = RESUMED
        except FixpointConditionError:
            # The plan's fixpoint does not decompose (no constant part,
            # or an Fcond violation the rewriter let through): the
            # maintenance algebra does not apply, recompute on next miss.
            return decide(SKIPPED_SHAPE)
        relation = _rewrap(maintained, renames)
        elapsed = time.perf_counter() - started
        maintained_result = replace(result, relation=relation,
                                    elapsed_seconds=elapsed,
                                    snapshot_version=new_head.version)
        new_key = replace(key, fingerprint=new_head.fingerprint(
            name for name, _ in key.fingerprint))
        cache.promote(key, new_key, maintained_result)
        return decide(action)

    # -- Insert resume -------------------------------------------------------

    def _insert_resume(self, fixpoint: Fixpoint, old_result: Relation,
                       new_head: DatabaseSnapshot) -> Relation:
        """Resume the semi-naive loop from the old fixpoint value.

        With insert-only deltas on monotone positions the old result is
        a subset of the new one, so seeding the accumulator with it is
        sound; convergence then costs O(new derivations) instead of
        O(whole fixpoint).
        """
        evaluator = Evaluator(new_head)
        decomposition = decompose(fixpoint)
        constant = evaluator.evaluate(decomposition.constant_part)
        if decomposition.variable_part is None:
            return constant
        return _resume(evaluator, decomposition.variable_part,
                       decomposition.var, seed=old_result,
                       constant=constant)

    # -- Delete and re-derive ------------------------------------------------

    def _delete_and_rederive(self, fixpoint: Fixpoint, old_result: Relation,
                             touched: dict[str, RelationDelta],
                             old_head: DatabaseSnapshot,
                             new_head: DatabaseSnapshot) -> Relation:
        """DRed: overdelete, subtract, then resume under the new database.

        The overdeletion pass works entirely against the *old* database
        (propagating through the old rules over-approximates, which is
        the safe direction); the resume pass then runs under the *new*
        database, re-deriving overdeleted rows with surviving alternative
        derivations and absorbing the commit's insertions in one loop.
        """
        # The old database minus the removed rows (insertions excluded):
        # the difference between rules over this and over the old
        # database is exactly what the removals can have broken.
        minus_db = dict(old_head)
        for name, delta in touched.items():
            if delta.removed and name in minus_db:
                minus_db[name] = minus_db[name].difference(delta.removed)
        eval_old = Evaluator(old_head)
        eval_minus = Evaluator(minus_db)
        decomposition = decompose(fixpoint)
        constant_old = eval_old.evaluate(decomposition.constant_part)
        constant_minus = eval_minus.evaluate(decomposition.constant_part)
        eval_new = Evaluator(new_head)
        constant_new = eval_new.evaluate(decomposition.constant_part)
        variable_part = decomposition.variable_part
        var = decomposition.var
        if variable_part is None:
            return constant_new
        # Overdeletion seed: rows whose *direct* derivation lost support —
        # from the constant part, or from one rule application over the
        # old result whose inputs included a removed row.
        lost_constant = constant_old.difference(constant_minus)
        step_old = eval_old.evaluate(variable_part, env={var: old_result})
        step_minus = eval_minus.evaluate(variable_part, env={var: old_result})
        overdeleted = DeltaAccumulator(lost_constant)
        frontier = overdeleted.absorb(step_old.difference(step_minus)) \
            .union(lost_constant)
        # Propagate: anything derivable *from* an overdeleted row may
        # itself have lost its derivation.  Old rules over-approximate.
        while frontier:
            produced = eval_old.evaluate(variable_part, env={var: frontier})
            frontier = overdeleted.absorb(produced)
        candidate = old_result.difference(overdeleted.relation())
        # Resume under the new database: re-derives overdeleted rows that
        # still have support and folds in this commit's insertions.
        return _resume(eval_new, variable_part, var, seed=candidate,
                       constant=constant_new)


# -- Shared semi-naive resume loop ----------------------------------------


def _resume(evaluator: Evaluator, variable_part: Term, var: str, *,
            seed: Relation, constant: Relation) -> Relation:
    """Run the semi-naive loop to convergence from an already-known subset.

    ``seed`` must be a subset of the fixpoint being computed (the insert
    path's old result; DRed's surviving candidate set).  The initial
    frontier is everything one step ahead of the seed — the constant
    part plus one application of the variable part — minus the seed.
    """
    accumulator = DeltaAccumulator(seed)
    frontier = accumulator.absorb(constant)
    step = evaluator.evaluate(variable_part, env={var: seed}) if seed \
        else Relation.empty(constant.columns)
    frontier = frontier.union(accumulator.absorb(step))
    iterations = 0
    while frontier:
        iterations += 1
        if iterations > evaluator.max_iterations:
            raise FixpointConditionError(
                f"maintenance resume on {var!r} did not converge after "
                f"{evaluator.max_iterations} iterations")
        produced = evaluator.evaluate(variable_part, env={var: frontier})
        frontier = accumulator.absorb(produced)
    return accumulator.relation()


# -- Plan-shape analysis ---------------------------------------------------


def _peel_renames(plan: Term) -> tuple[list[tuple[str, str]], Fixpoint] | None:
    """Split ``Rename*(Fixpoint)`` plans into the rename chain and the core.

    Renames are the one wrapper maintenance can see through: they are
    invertible column relabelings, so the cached (outer-schema) relation
    maps one-to-one onto the fixpoint's value.  Any other shape — joins
    above the fixpoint, projections (which drop the columns a resume
    needs), unions of fixpoints — returns ``None`` and the entry is left
    to the normal recompute path.
    """
    renames: list[tuple[str, str]] = []
    term = plan
    while isinstance(term, Rename):
        renames.append((term.old, term.new))
        term = term.child
    if not isinstance(term, Fixpoint):
        return None
    return renames, term


def _unwrap(relation: Relation, renames: list[tuple[str, str]]) -> Relation:
    """Undo the rename chain: outer cached schema -> fixpoint schema."""
    for old, new in renames:  # outermost first: invert in peel order
        relation = relation.rename(new, old)
    return relation


def _rewrap(relation: Relation, renames: list[tuple[str, str]]) -> Relation:
    """Re-apply the rename chain: fixpoint schema -> cached entry schema."""
    for old, new in reversed(renames):
        relation = relation.rename(old, new)
    return relation


def _touches_nonmonotone_position(fixpoint: Fixpoint,
                                  touched: dict[str, RelationDelta]) -> bool:
    """Whether a touched relation feeds an antijoin's right operand.

    The right side of an antijoin is the one nonmonotone position Fcond
    admits (it must be constant in the recursion variable, but it may
    read base relations): growing it can *shrink* the result, so neither
    the insert resume nor DRed's over-approximation argument holds and
    the entry must fall back to recomputation.
    """
    for node in walk(fixpoint):
        if isinstance(node, Antijoin):
            for sub in walk(node.right):
                if isinstance(sub, RelVar) and sub.name in touched:
                    return True
    return False
