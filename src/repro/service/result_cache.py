"""Result cache: memoize query results against a versioned database.

The cache maps (canonical selected plan, execution configuration) to the
:class:`~repro.session.QueryResult` produced when that plan last ran.  An
entry is only valid for the database state it was computed on; validity is
tracked through the engine's per-relation version counters:

* when the entry is stored, it records the versions of the relations the
  plan reads (its free relation variables),
* on lookup, the entry only hits if every one of those relations is still
  at the recorded version — otherwise it is dropped and counted as an
  invalidation (the caller then re-executes and re-stores).

The service additionally purges dependent entries eagerly when a mutation
goes through its API (:meth:`ResultCache.invalidate_relations`), so stale
results do not linger in the LRU ring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .cache import CacheStats, LRUCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..session.session import QueryResult, Session

#: Default number of memoized results kept.
DEFAULT_RESULT_CACHE_SIZE = 256


@dataclass(frozen=True)
class ResultKey:
    """Identity of one executed plan (the versions live in the entry)."""

    plan_key: str
    strategy: str
    num_workers: int
    memory_per_task: int


@dataclass
class CachedResult:
    """One memoized execution."""

    result: QueryResult
    #: Free relation variables of the plan: what the result depends on.
    dependencies: frozenset[str]
    #: ``(name, version)`` snapshot the result was computed at.
    versions: tuple[tuple[str, int], ...]


class ResultCache:
    """LRU result store with version-checked lookups."""

    def __init__(self, capacity: int = DEFAULT_RESULT_CACHE_SIZE):
        self._cache = LRUCache(capacity)

    def lookup(self, key: ResultKey, engine: "Session") -> QueryResult | None:
        """Return the memoized result if it is still valid, else ``None``.

        A version mismatch drops the entry (counted as an invalidation on
        top of the miss the dropped lookup already recorded).
        """
        entry: CachedResult | None = self._cache.get(key)
        if entry is None:
            return None
        if engine.relation_versions(entry.dependencies) != entry.versions:
            self._cache.demote_hit()
            self._cache.discard(key)
            return None
        return entry.result

    def store(self, key: ResultKey, result: QueryResult,
              dependencies: frozenset[str], engine: "Session") -> None:
        """Memoize ``result`` at the engine's current relation versions."""
        self._cache.put(key, CachedResult(
            result=result, dependencies=dependencies,
            versions=engine.relation_versions(dependencies)))

    def invalidate_relations(self, names) -> int:
        """Eagerly drop every result depending on one of ``names``."""
        doomed = set(names)
        return self._cache.discard_where(
            lambda _key, entry: bool(entry.dependencies & doomed))

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats
