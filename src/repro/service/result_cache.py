"""Result cache: memoize query results keyed by snapshot fingerprint.

The cache maps (canonical selected plan, execution configuration,
snapshot fingerprint of the plan's inputs) to the
:class:`~repro.session.QueryResult` produced when that plan last ran.
The fingerprint — the ``(name, version)`` tuple of the relations the plan
reads, taken from the immutable
:class:`~repro.data.snapshot.DatabaseSnapshot` the execution is pinned
to — is **part of the key**, not a validity check on the entry:

* a query pinned to snapshot version *v* looks up (and stores) entries
  under *v*'s fingerprint, so concurrent commits of later versions never
  disturb its hits,
* a query against the new head uses the new fingerprint and simply
  misses, re-executes and stores a fresh entry alongside the old one,
* entries of superseded snapshots are never looked up again and age out
  of the LRU ring — there is no eager purge-on-mutation anywhere.

Lookups and stores are plain (thread-safe) LRU operations with no
version re-validation, which is what lets the serving layer take the
result-cache hit path entirely outside the execution lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .cache import CacheStats, LRUCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..session.session import QueryResult

#: Default number of memoized results kept.
DEFAULT_RESULT_CACHE_SIZE = 256


@dataclass(frozen=True)
class ResultKey:
    """Identity of one executed plan on one database snapshot."""

    plan_key: str
    strategy: str
    num_workers: int
    memory_per_task: int
    #: ``snapshot.fingerprint(plan.dependencies)`` — the versions of the
    #: relations the plan reads.  Version-qualifying the key replaces the
    #: old store-time/lookup-time version comparison.
    fingerprint: tuple[tuple[str, int], ...] = ()


class ResultCache:
    """LRU store of memoized executions, keyed per snapshot version."""

    def __init__(self, capacity: int = DEFAULT_RESULT_CACHE_SIZE):
        self._cache = LRUCache(capacity)

    def lookup(self, key: ResultKey) -> "QueryResult | None":
        """Return the memoized result for this exact key, or ``None``.

        No validity check is needed: the fingerprint inside ``key`` ties
        the entry to the immutable snapshot it was computed on.
        """
        return self._cache.get(key)

    def store(self, key: ResultKey, result: "QueryResult") -> None:
        """Memoize ``result`` under its snapshot-qualified key."""
        self._cache.put(key, result)

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats
