"""Result cache: memoize query results keyed by snapshot fingerprint.

The cache maps (canonical selected plan, execution configuration,
snapshot fingerprint of the plan's inputs) to the
:class:`~repro.session.QueryResult` produced when that plan last ran.
The fingerprint — the ``(name, version)`` tuple of the relations the plan
reads, taken from the immutable
:class:`~repro.data.snapshot.DatabaseSnapshot` the execution is pinned
to — is **part of the key**, not a validity check on the entry:

* a query pinned to snapshot version *v* looks up (and stores) entries
  under *v*'s fingerprint, so concurrent commits of later versions never
  disturb its hits,
* a query against the new head uses the new fingerprint and simply
  misses, re-executes and stores a fresh entry alongside the old one,
* entries of superseded snapshots are never looked up again and age out
  of the LRU ring — there is no eager purge-on-mutation anywhere.

Lookups and stores are plain (thread-safe) LRU operations with no
version re-validation, which is what lets the serving layer take the
result-cache hit path entirely outside the execution lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .cache import CacheStats, LRUCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from ..session.session import QueryResult

#: Default number of memoized results kept.
DEFAULT_RESULT_CACHE_SIZE = 256


@dataclass(frozen=True)
class ResultKey:
    """Identity of one executed plan on one database snapshot."""

    plan_key: str
    strategy: str
    num_workers: int
    memory_per_task: int
    #: ``snapshot.fingerprint(plan.dependencies)`` — the versions of the
    #: relations the plan reads.  Version-qualifying the key replaces the
    #: old store-time/lookup-time version comparison.
    fingerprint: tuple[tuple[str, int], ...] = ()
    #: Name of the graph the snapshot belongs to.  The fingerprint alone
    #: is *under*-qualified across graphs: two attached graphs with the
    #: same relation names at the same versions (e.g. both freshly
    #: attached at version 0) would otherwise produce identical keys, and
    #: any deployment sharing one cache across graphs (a single memory
    #: budget, or the maintenance layer promoting entries) would serve
    #: graph A's rows to a query on graph B.
    graph: str = ""


class ResultCache:
    """LRU store of memoized executions, keyed per snapshot version."""

    def __init__(self, capacity: int = DEFAULT_RESULT_CACHE_SIZE):
        self._cache = LRUCache(capacity)

    def lookup(self, key: ResultKey) -> "QueryResult | None":
        """Return the memoized result for this exact key, or ``None``.

        No validity check is needed: the fingerprint inside ``key`` ties
        the entry to the immutable snapshot it was computed on.
        """
        return self._cache.get(key)

    def store(self, key: ResultKey, result: "QueryResult") -> None:
        """Memoize ``result`` under its snapshot-qualified key."""
        self._cache.put(key, result)

    def promote(self, old_key: ResultKey, new_key: ResultKey,
                maintained_result: "QueryResult") -> None:
        """Re-register a maintained entry under its successor fingerprint.

        The view-maintenance layer calls this after a commit: the entry
        under ``old_key`` (the pre-commit fingerprint) was incrementally
        updated to ``maintained_result``, which now answers lookups under
        ``new_key`` (the successor snapshot's fingerprint).  The old
        entry is deliberately left in place — readers pinned to the
        superseded snapshot keep hitting it until it ages out of the LRU.
        """
        if old_key.plan_key != new_key.plan_key:
            raise ValueError(
                "promote() must keep the plan identity: "
                f"{old_key.plan_key!r} != {new_key.plan_key!r}")
        self._cache.put(new_key, maintained_result)

    def entries(self) -> list[tuple[ResultKey, "QueryResult"]]:
        """Snapshot of ``(key, result)`` pairs, least recently used first.

        Used by the maintenance layer to find the entries a commit made
        stale; the list is an independent copy, so iterating it races
        with nothing.
        """
        cache = self._cache
        return [(key, value) for key in cache.keys()
                if (value := cache.peek(key)) is not None]

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats
