"""Regular path queries as finite automata over edge labels.

Evaluating an RPQ in the Pregel model requires an automaton-like algorithm
(Section VI of the paper): messages carry the automaton state a path has
reached, vertices advance the state along their outgoing edges, and a path
is an answer when it reaches an accepting state.  This module converts the
path-expression AST of the query frontend into a non-deterministic finite
automaton over labels (inverse labels are kept as ``-label`` symbols and
matched against reversed edges by the evaluator).

The construction is the classic two-step one: a Thompson automaton with
epsilon transitions, followed by epsilon elimination so that the evaluator
only ever deals with label-consuming transitions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ...errors import TranslationError
from ...query.ast import Alternation, Concat, Label, PathExpr, Plus


@dataclass
class Automaton:
    """A non-deterministic finite automaton over edge-label symbols."""

    start: int
    accepting: frozenset[int]
    #: transitions[state] is a list of (symbol, next_state); symbols are
    #: label names, prefixed with ``-`` for inverse navigation.
    transitions: dict[int, list[tuple[str, int]]] = field(default_factory=dict)

    def states(self) -> frozenset[int]:
        found = {self.start} | set(self.accepting)
        for state, edges in self.transitions.items():
            found.add(state)
            found.update(target for _, target in edges)
        return frozenset(found)

    def symbols(self) -> frozenset[str]:
        return frozenset(symbol for edges in self.transitions.values()
                         for symbol, _ in edges)

    def step(self, state: int, symbol: str) -> frozenset[int]:
        """States reachable from ``state`` by consuming ``symbol``."""
        return frozenset(target for sym, target in self.transitions.get(state, ())
                         if sym == symbol)

    def outgoing(self, state: int) -> list[tuple[str, int]]:
        return self.transitions.get(state, [])

    def is_accepting(self, state: int) -> bool:
        return state in self.accepting

    def accepts(self, word: list[str]) -> bool:
        """Check whether a sequence of label symbols is accepted.

        Used by tests and by the centralized reference implementation; the
        Pregel evaluator never materialises words, it propagates states.
        """
        current = {self.start}
        for symbol in word:
            current = {target for state in current
                       for target in self.step(state, symbol)}
            if not current:
                return False
        return any(self.is_accepting(state) for state in current)


class _ThompsonFragment:
    """A fragment with one start and one accept state (Thompson construction)."""

    __slots__ = ("start", "accept")

    def __init__(self, start: int, accept: int):
        self.start = start
        self.accept = accept


_EPSILON = None


class _Builder:
    def __init__(self) -> None:
        self._ids = itertools.count()
        #: transitions with epsilon edges: state -> list of (symbol|None, target)
        self._edges: dict[int, list[tuple[str | None, int]]] = {}

    # -- Thompson construction ----------------------------------------------------

    def build(self, path: PathExpr) -> Automaton:
        fragment = self._fragment(path)
        return self._eliminate_epsilon(fragment)

    def _new_state(self) -> int:
        return next(self._ids)

    def _add_edge(self, source: int, symbol: str | None, target: int) -> None:
        self._edges.setdefault(source, []).append((symbol, target))

    def _fragment(self, path: PathExpr) -> _ThompsonFragment:
        if isinstance(path, Label):
            symbol = f"-{path.name}" if path.inverse else path.name
            start, accept = self._new_state(), self._new_state()
            self._add_edge(start, symbol, accept)
            return _ThompsonFragment(start, accept)
        if isinstance(path, Concat):
            fragments = [self._fragment(part) for part in path.parts]
            for previous, following in zip(fragments, fragments[1:]):
                self._add_edge(previous.accept, _EPSILON, following.start)
            return _ThompsonFragment(fragments[0].start, fragments[-1].accept)
        if isinstance(path, Alternation):
            start, accept = self._new_state(), self._new_state()
            for option in path.options:
                fragment = self._fragment(option)
                self._add_edge(start, _EPSILON, fragment.start)
                self._add_edge(fragment.accept, _EPSILON, accept)
            return _ThompsonFragment(start, accept)
        if isinstance(path, Plus):
            fragment = self._fragment(path.inner)
            # One or more repetitions: loop back from the accept state.
            self._add_edge(fragment.accept, _EPSILON, fragment.start)
            return fragment
        raise TranslationError(f"cannot build an automaton for {path!r}")

    # -- Epsilon elimination --------------------------------------------------------

    def _eliminate_epsilon(self, fragment: _ThompsonFragment) -> Automaton:
        closure = {state: self._epsilon_closure(state)
                   for state in self._all_states(fragment)}
        transitions: dict[int, list[tuple[str, int]]] = {}
        for state, reachable in closure.items():
            seen: set[tuple[str, int]] = set()
            for intermediate in reachable:
                for symbol, target in self._edges.get(intermediate, ()):
                    if symbol is _EPSILON:
                        continue
                    edge = (symbol, target)
                    if edge not in seen:
                        seen.add(edge)
                        transitions.setdefault(state, []).append(edge)
        accepting = frozenset(state for state, reachable in closure.items()
                              if fragment.accept in reachable)
        return Automaton(start=fragment.start, accepting=accepting,
                         transitions=transitions)

    def _epsilon_closure(self, state: int) -> frozenset[int]:
        reachable = {state}
        frontier = [state]
        while frontier:
            current = frontier.pop()
            for symbol, target in self._edges.get(current, ()):
                if symbol is _EPSILON and target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        return frozenset(reachable)

    def _all_states(self, fragment: _ThompsonFragment) -> frozenset[int]:
        found = {fragment.start, fragment.accept}
        for state, edges in self._edges.items():
            found.add(state)
            found.update(target for _, target in edges)
        return frozenset(found)


def path_to_automaton(path: PathExpr) -> Automaton:
    """Build an NFA recognising the regular path expression ``path``."""
    return _Builder().build(path)
