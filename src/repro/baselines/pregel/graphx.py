"""GraphX-style evaluation of UCRPQs with the Pregel model.

Following the comparison methodology of the paper (Section V-C), a regular
path query is evaluated by traversing the graph and the query pattern
simultaneously: each message carries the pair *(origin node, automaton
state)*; a vertex receiving it records the pair, reports an answer when the
state is accepting, and forwards advanced states to the neighbours reached
by the matching edge labels.  A query whose subject is a constant starts
from that single node; otherwise every node is an origin — which is exactly
what makes the Pregel approach explode on unselective queries, since
filters occurring *after* the recursion cannot be pushed into the traversal.

Conjunctive queries are evaluated atom by atom, the per-atom answer sets
being joined on their shared variables afterwards (as a GraphX user would
do with RDD joins).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ...data.graph import LabeledGraph
from ...data.relation import Relation
from ...distributed.cluster import SparkCluster
from ...query.ast import (Atom, ConjunctiveQuery, Constant, UCRPQ, Variable)
from ...query.parser import parse_query
from .pregel import DEFAULT_MAX_SUPERSTEPS, PregelEngine, PregelStats
from .rpq_automaton import Automaton, path_to_automaton


@dataclass
class GraphXResult:
    """Result of one GraphX-style query evaluation."""

    relation: Relation
    supersteps: int
    messages_sent: int
    elapsed_seconds: float

    def __len__(self) -> int:
        return len(self.relation)


class GraphXRPQEngine:
    """The GraphX/Pregel baseline bound to one graph and simulated cluster."""

    def __init__(self, graph: LabeledGraph, num_workers: int = 4,
                 max_supersteps: int = DEFAULT_MAX_SUPERSTEPS,
                 max_messages: int | None = None):
        self.graph = graph
        self.num_workers = num_workers
        self.max_supersteps = max_supersteps
        self.max_messages = max_messages
        self.cluster = SparkCluster(num_workers=num_workers)
        self._stats = PregelStats()

    # -- Public API -----------------------------------------------------------

    def run_query(self, query: str | UCRPQ) -> GraphXResult:
        """Evaluate one UCRPQ with Pregel-style automaton propagation."""
        started = time.perf_counter()
        parsed = parse_query(query) if isinstance(query, str) else query
        self.cluster.reset_metrics()
        self._stats = PregelStats()
        columns = tuple(sorted(variable.name for variable in parsed.head))
        result: Relation | None = None
        for rule in parsed.rules:
            rule_relation = self._evaluate_rule(rule, columns)
            result = rule_relation if result is None else result.union(rule_relation)
        elapsed = time.perf_counter() - started
        return GraphXResult(
            relation=result if result is not None else Relation.empty(columns),
            supersteps=self._stats.supersteps,
            messages_sent=self._stats.messages_sent,
            elapsed_seconds=elapsed,
        )

    # -- Conjunctive rules ---------------------------------------------------------

    def _evaluate_rule(self, rule: ConjunctiveQuery,
                       columns: tuple[str, ...]) -> Relation:
        joined: Relation | None = None
        for atom in rule.atoms:
            atom_relation = self._evaluate_atom(atom)
            joined = atom_relation if joined is None else joined.natural_join(
                atom_relation)
        assert joined is not None  # ConjunctiveQuery guarantees >= 1 atom
        to_drop = [column for column in joined.columns if column not in columns]
        if to_drop:
            joined = joined.antiproject(to_drop)
        return joined

    # -- Single-atom evaluation ------------------------------------------------------

    def _evaluate_atom(self, atom: Atom) -> Relation:
        automaton = path_to_automaton(atom.path)
        pairs = self._propagate(automaton, atom)
        if isinstance(atom.obj, Constant):
            pairs = {(origin, node) for origin, node in pairs
                     if node == atom.obj.value}
        if isinstance(atom.subject, Constant):
            pairs = {(origin, node) for origin, node in pairs
                     if origin == atom.subject.value}
        return self._pairs_to_relation(pairs, atom)

    def _propagate(self, automaton: Automaton, atom: Atom) -> set[tuple]:
        """Run the Pregel propagation and return (origin, reached) answers."""
        if isinstance(atom.subject, Constant):
            origins = {atom.subject.value} & set(self.graph.nodes)
        else:
            origins = set(self.graph.nodes)
        answers: set[tuple] = set()
        engine = PregelEngine(cluster=self.cluster,
                              max_supersteps=self.max_supersteps,
                              max_messages=self.max_messages)
        vertices = {node: frozenset() for node in self.graph.nodes}
        initial = {node: [(node, automaton.start)] for node in origins}

        def vertex_program(vertex, seen, messages):
            new_pairs = {pair for pair in messages if pair not in seen}
            outgoing: dict[object, list] = {}
            for origin, state in new_pairs:
                if automaton.is_accepting(state) and state != automaton.start:
                    answers.add((origin, vertex))
                for symbol, next_state in automaton.outgoing(state):
                    for neighbour in self.graph.successors(vertex, symbol):
                        outgoing.setdefault(neighbour, []).append(
                            (origin, next_state))
            return seen | new_pairs, outgoing

        engine.run(vertices, initial, vertex_program)
        self._stats.supersteps += engine.stats.supersteps
        self._stats.messages_sent += engine.stats.messages_sent
        return answers

    # -- Shaping -----------------------------------------------------------------------

    @staticmethod
    def _pairs_to_relation(pairs: set[tuple], atom: Atom) -> Relation:
        subject, obj = atom.subject, atom.obj
        if isinstance(subject, Variable) and isinstance(obj, Variable):
            if subject.name == obj.name:
                values = {origin for origin, node in pairs if origin == node}
                return _single_column(subject.name, values)
            columns = tuple(sorted((subject.name, obj.name)))
            if columns == (subject.name, obj.name):
                rows = set(pairs)
            else:
                rows = {(node, origin) for origin, node in pairs}
            return Relation(columns, rows)
        if isinstance(subject, Variable):
            return _single_column(subject.name, {origin for origin, _ in pairs})
        if isinstance(obj, Variable):
            return _single_column(obj.name, {node for _, node in pairs})
        # Both endpoints constant: a boolean query, encoded as a relation
        # with zero columns containing one empty row when satisfied.
        return Relation((), {()} if pairs else set())

    def __repr__(self) -> str:
        return (f"GraphXRPQEngine(graph={self.graph.name!r}, "
                f"workers={self.num_workers})")


def _single_column(name: str, values: set) -> Relation:
    return Relation((name,), {(value,) for value in values})
