"""GraphX/Pregel baseline: BSP engine, RPQ automata, query evaluation."""

from .graphx import GraphXResult, GraphXRPQEngine
from .pregel import DEFAULT_MAX_SUPERSTEPS, PregelEngine, PregelStats
from .rpq_automaton import Automaton, path_to_automaton

__all__ = [
    "Automaton",
    "DEFAULT_MAX_SUPERSTEPS",
    "GraphXResult",
    "GraphXRPQEngine",
    "PregelEngine",
    "PregelStats",
    "path_to_automaton",
]
