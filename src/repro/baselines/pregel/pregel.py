"""A Pregel (Bulk Synchronous Parallel) engine on the simulated cluster.

GraphX exposes the Pregel model: a computation is a sequence of
*supersteps*; in each superstep every vertex that received messages
processes them, updates its state and sends new messages to its neighbours;
the computation stops when no message is in flight.  Messages sent to a
vertex hosted on another worker cross the network — the engine records them
as shuffled tuples, which is what makes per-superstep communication visible
in the benchmark metrics.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Mapping
from dataclasses import dataclass, field

from ...errors import PregelError
from ...distributed.cluster import SparkCluster

Message = Hashable
VertexState = object
#: vertex program: (vertex, state, incoming messages) -> (new state, outgoing)
VertexProgram = Callable[[Hashable, VertexState, list[Message]],
                         tuple[VertexState, dict[Hashable, list[Message]]]]

#: Default bound on supersteps — reachability computations converge in at
#: most the graph diameter, so hitting this means divergence.
DEFAULT_MAX_SUPERSTEPS = 10_000


@dataclass
class PregelStats:
    """Counters describing one Pregel run."""

    supersteps: int = 0
    messages_sent: int = 0
    messages_crossing_workers: int = 0
    active_vertices_per_step: list[int] = field(default_factory=list)


class PregelEngine:
    """Superstep-synchronous message passing over partitioned vertices."""

    def __init__(self, cluster: SparkCluster | None = None,
                 num_workers: int = 4,
                 max_supersteps: int = DEFAULT_MAX_SUPERSTEPS,
                 max_messages: int | None = None):
        self.cluster = cluster if cluster is not None else SparkCluster(num_workers)
        self.max_supersteps = max_supersteps
        #: Optional total-message budget; exceeding it aborts the run, which
        #: the harness reports as a crash (the paper's GraphX failures).
        self.max_messages = max_messages
        self.stats = PregelStats()

    def run(self, vertices: Mapping[Hashable, VertexState],
            initial_messages: Mapping[Hashable, list[Message]],
            program: VertexProgram) -> dict[Hashable, VertexState]:
        """Run the computation until no message remains (or a bound trips)."""
        placement = {vertex: hash(vertex) % self.cluster.num_workers
                     for vertex in vertices}
        states: dict[Hashable, VertexState] = dict(vertices)
        inbox: dict[Hashable, list[Message]] = {
            vertex: list(messages)
            for vertex, messages in initial_messages.items() if messages
        }
        superstep = 0
        while inbox:
            superstep += 1
            if superstep > self.max_supersteps:
                raise PregelError(
                    f"computation did not converge within {self.max_supersteps} "
                    f"supersteps")
            self.stats.supersteps += 1
            self.cluster.metrics.global_iterations += 1
            self.cluster.record_tasks(self.cluster.num_workers)
            self.stats.active_vertices_per_step.append(len(inbox))
            outbox: dict[Hashable, list[Message]] = {}
            crossing = 0
            for vertex, messages in inbox.items():
                if vertex not in states:
                    # Messages to unknown vertices are dropped, as in GraphX.
                    continue
                new_state, outgoing = program(vertex, states[vertex], messages)
                states[vertex] = new_state
                for target, sent in outgoing.items():
                    if not sent:
                        continue
                    outbox.setdefault(target, []).extend(sent)
                    self.stats.messages_sent += len(sent)
                    if placement.get(target) != placement.get(vertex):
                        crossing += len(sent)
            if crossing:
                self.stats.messages_crossing_workers += crossing
                self.cluster.record_shuffle(crossing)
            if self.max_messages is not None and \
                    self.stats.messages_sent > self.max_messages:
                raise PregelError(
                    f"message budget exceeded ({self.stats.messages_sent} > "
                    f"{self.max_messages}): the computation would not fit in "
                    f"memory")
            inbox = outbox
        return states
