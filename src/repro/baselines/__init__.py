"""Baseline systems the paper compares against (BigDatalog, GraphX)."""

from .datalog.distributed import BigDatalogEngine
from .pregel.graphx import GraphXRPQEngine

__all__ = ["BigDatalogEngine", "GraphXRPQEngine"]
