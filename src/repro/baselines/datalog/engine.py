"""Semi-naive evaluation of positive Datalog programs.

This is the evaluation core of the BigDatalog baseline: a bottom-up,
set-oriented, semi-naive engine.  Facts are tuples stored per predicate;
rule bodies are evaluated left-to-right with hash indexes on the bound
argument positions.  Recursive predicates are evaluated with deltas (only
rules with at least one delta occurrence re-fire), exactly like the
differential evaluation of Algorithm 1 in the paper.

The indexes over the full (non-delta) fact sets are **incremental**: they
come from the shared storage layer (:class:`repro.data.storage.HashIndex`),
are built once per (predicate, bound positions) and are *extended* with the
new facts of each iteration instead of being rebuilt from scratch — the
Datalog mirror of the delta-aware relation storage.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from ...data import storage
from ...data.storage import HashIndex
from ...errors import DatalogError
from .ast import Atom, Const, Program, Rule, Var

FactSet = set[tuple]
Database = dict[str, FactSet]


@dataclass
class DatalogStats:
    """Counters describing one program evaluation."""

    iterations: int = 0
    facts_derived: int = 0
    rule_firings: int = 0
    index_builds: int = 0
    index_reuses: int = 0
    per_predicate_sizes: dict[str, int] = field(default_factory=dict)

    def record_sizes(self, facts: Mapping[str, FactSet]) -> None:
        self.per_predicate_sizes = {name: len(rows) for name, rows in facts.items()}


class SemiNaiveEngine:
    """Bottom-up semi-naive Datalog evaluation."""

    def __init__(self, max_facts: int | None = None):
        #: Optional budget on the total number of derived facts; exceeding it
        #: raises, which the benchmark harness reports as an out-of-memory
        #: failure (the red crosses of the paper's charts).
        self.max_facts = max_facts
        self.stats = DatalogStats()
        #: predicate -> bound positions -> incremental index over the
        #: predicate's full fact set.  Reset per evaluation; extended (not
        #: rebuilt) as new facts are derived.
        self._fact_indexes: dict[str, dict[tuple[int, ...], HashIndex]] = {}
        #: predicate -> arity its cached indexes were validated against;
        #: rows arriving later through the extend path are checked too.
        self._index_arity: dict[str, int] = {}

    # -- Public API -----------------------------------------------------------

    def evaluate(self, program: Program, edb: Mapping[str, Iterable[tuple]]) -> Database:
        """Evaluate ``program`` over the extensional database ``edb``.

        Returns the full database (EDB + derived IDB predicates).
        """
        for rule in program.rules:
            if rule.negative_body():
                raise DatalogError(
                    f"the semi-naive engine evaluates positive programs "
                    f"only; rule has a negated literal: {rule}")
        facts: Database = {name: set(map(tuple, rows)) for name, rows in edb.items()}
        self._fact_indexes = {}
        self._index_arity = {}
        idb = program.idb_predicates()
        for predicate in idb:
            facts.setdefault(predicate, set())
        # Facts written directly in the program.
        for rule in program.rules:
            if rule.is_fact:
                facts[rule.head.predicate].add(self._ground_fact(rule.head))
        deltas: Database = {predicate: set(facts[predicate]) for predicate in idb}
        # First round: fire every rule on the full database.
        for rule in program.rules:
            if rule.is_fact:
                continue
            produced = self._fire(rule, facts, None, None)
            new = produced - facts[rule.head.predicate]
            facts[rule.head.predicate] |= new
            self._extend_indexes(rule.head.predicate, new)
            deltas[rule.head.predicate] |= new
        self.stats.iterations += 1
        self._check_budget(facts)
        # Semi-naive loop.
        while any(deltas[predicate] for predicate in idb):
            self.stats.iterations += 1
            new_deltas: Database = {predicate: set() for predicate in idb}
            for rule in program.rules:
                if rule.is_fact:
                    continue
                recursive_atoms = [atom for atom in rule.body
                                   if atom.predicate in idb and deltas[atom.predicate]]
                if not recursive_atoms:
                    continue
                for pivot_index, atom in enumerate(rule.body):
                    if atom.predicate not in idb or not deltas[atom.predicate]:
                        continue
                    produced = self._fire(rule, facts, pivot_index,
                                           deltas[atom.predicate])
                    new = produced - facts[rule.head.predicate]
                    if new:
                        facts[rule.head.predicate] |= new
                        self._extend_indexes(rule.head.predicate, new)
                        new_deltas[rule.head.predicate] |= new
            deltas = new_deltas
            self._check_budget(facts)
        self.stats.record_sizes(facts)
        return facts

    # -- Rule firing -------------------------------------------------------------

    def _fire(self, rule: Rule, facts: Database, pivot_index: int | None,
              pivot_delta: FactSet | None) -> FactSet:
        """Evaluate one rule body and return the produced head facts.

        When ``pivot_index`` is given, that body atom reads from
        ``pivot_delta`` instead of the full predicate (semi-naive firing).
        """
        self.stats.rule_firings += 1
        bindings: list[dict[Var, object]] = [{}]
        for index, atom in enumerate(rule.body):
            if not bindings:
                return set()
            if index == pivot_index and pivot_delta is not None:
                # Delta sets are one-iteration transients: indexed ad hoc,
                # never cached.
                bindings = self._match_atom(atom, pivot_delta, bindings)
            else:
                bindings = self._match_atom(atom, facts.get(atom.predicate, set()),
                                            bindings, store_predicate=atom.predicate)
        produced: FactSet = set()
        for binding in bindings:
            produced.add(self._instantiate(rule.head, binding))
        self.stats.facts_derived += len(produced)
        return produced

    def _match_atom(self, atom: Atom, rows: FactSet,
                    bindings: list[dict[Var, object]],
                    store_predicate: str | None = None) -> list[dict[Var, object]]:
        """Extend every binding with the matches of one atom.

        The bound positions are the same for every binding (they depend on
        which variables previous atoms introduced), so the fact set is
        indexed on them once.  For persistent predicates
        (``store_predicate``) the index comes from the incremental
        per-predicate cache: built on the first firing that needs it,
        extended in O(|new facts|) as the evaluation derives more.
        """
        if not bindings:
            return []
        sample = bindings[0]
        bound_positions = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Const) or (isinstance(arg, Var) and arg in sample):
                bound_positions.append(position)
        index = self._index_for(atom, rows, tuple(bound_positions),
                                store_predicate)
        results: list[dict[Var, object]] = []
        for binding in bindings:
            key = tuple(
                atom.args[i].value if isinstance(atom.args[i], Const)
                else binding[atom.args[i]]
                for i in bound_positions
            )
            for row in index.probe(key):
                extended = self._extend(atom, row, binding)
                if extended is not None:
                    results.append(extended)
        return results

    # -- Incremental fact indexes ------------------------------------------------

    def _index_for(self, atom: Atom, rows: FactSet,
                   positions: tuple[int, ...],
                   store_predicate: str | None) -> HashIndex:
        """Index ``rows`` on ``positions``, caching persistent predicates."""
        if store_predicate is None or not storage.caching_enabled():
            self._check_arity(atom, rows)
            return HashIndex(rows, positions)
        per_predicate = self._fact_indexes.setdefault(store_predicate, {})
        index = per_predicate.get(positions)
        if index is None:
            self._check_arity(atom, rows)
            self._index_arity.setdefault(store_predicate, atom.arity)
            index = HashIndex(rows, positions)
            per_predicate[positions] = index
            self.stats.index_builds += 1
        else:
            self.stats.index_reuses += 1
        return index

    def _extend_indexes(self, predicate: str, new_rows: FactSet) -> None:
        """Delta-maintain every cached index of a predicate that just grew.

        Rows entering a cached index after its build are validated here, so
        an arity-inconsistent program fails with the same clear
        :class:`DatalogError` the per-match validation used to raise.
        """
        if not new_rows:
            return
        indexes = self._fact_indexes.get(predicate)
        if not indexes:
            return
        arity = self._index_arity.get(predicate)
        if arity is not None:
            for row in new_rows:
                if len(row) != arity:
                    raise DatalogError(
                        f"fact {row!r} does not match arity {arity} of "
                        f"predicate {predicate!r}")
        for index in indexes.values():
            index.extend(new_rows)

    @staticmethod
    def _check_arity(atom: Atom, rows: FactSet) -> None:
        for row in rows:
            if len(row) != atom.arity:
                raise DatalogError(
                    f"fact {row!r} does not match arity of {atom}")

    @staticmethod
    def _extend(atom: Atom, row: tuple,
                binding: dict[Var, object]) -> dict[Var, object] | None:
        extended = dict(binding)
        for arg, value in zip(atom.args, row):
            if isinstance(arg, Const):
                if arg.value != value:
                    return None
            else:
                if arg in extended and extended[arg] != value:
                    return None
                extended[arg] = value
        return extended

    @staticmethod
    def _instantiate(head: Atom, binding: dict[Var, object]) -> tuple:
        values = []
        for arg in head.args:
            if isinstance(arg, Const):
                values.append(arg.value)
            else:
                values.append(binding[arg])
        return tuple(values)

    @staticmethod
    def _ground_fact(head: Atom) -> tuple:
        values = []
        for arg in head.args:
            if not isinstance(arg, Const):
                raise DatalogError(f"fact {head} contains variables")
            values.append(arg.value)
        return tuple(values)

    def _check_budget(self, facts: Database) -> None:
        if self.max_facts is None:
            return
        total = sum(len(rows) for rows in facts.values())
        if total > self.max_facts:
            raise DatalogError(
                f"fact budget exceeded ({total} > {self.max_facts}): the "
                f"evaluation would not fit in memory"
            )
